//! Deterministic model of loss recovery in a chain (Section IV-A, Fig 1).
//!
//! With `C1 = D1 = 1` and `C2 = D2 = 0` the timers are deterministic:
//! a node at distance `i` hops below the congested link detects the loss at
//! some time `t + i` (relative to the first detector), sets its request
//! timer to `2·(dist to source)`, and is always suppressed by the request
//! from the node adjacent to the failure — *deterministic suppression*.
//!
//! Let the source be `s` hops above the congested link `(R1, L1)`, and let
//! `L1` (the node just below the failure) detect the loss at time 0. Then:
//!
//! - `L1` multicasts the *only* request at time `2·(s+1)`... in the paper's
//!   normalization ("node L1 first detects the loss at time t; node L1
//!   multicasts a request at time t + 2(s+1)" — with the source at distance
//!   `s+1` from `L1`);
//! - `R1` (just above the failure) receives it one hop later and answers at
//!   `t + 2(s+1) + 1 + 2·1` (its repair timer is `2·d(R1,L1) = 2`);
//! - a node `i` hops below the failure receives the repair at
//!   `t + 2(s+1) + 3 + i` while it detected the loss at `t + (i−1)`, so its
//!   recovery is faster, relative to its own RTT to the source, the farther
//!   down it sits.

/// Time (after `L1`'s detection) at which the single request is sent, for a
/// source `s_hops` above the congested link: `C1 · d(source, L1)` with
/// `d = s_hops + 1`.
pub fn request_time(c1: f64, s_hops: u32) -> f64 {
    c1 * (s_hops as f64 + 1.0)
}

/// Time at which the repair from `R1` is multicast: the request crosses the
/// failed link (1 hop), then `R1` waits `D1 · d(R1, L1) = D1 · 1`.
pub fn repair_time(c1: f64, d1: f64, s_hops: u32) -> f64 {
    request_time(c1, s_hops) + 1.0 + d1
}

/// Time at which the node `i` hops below the congested link receives the
/// repair (node 1 = `L1`).
pub fn repair_arrival(c1: f64, d1: f64, s_hops: u32, i: u32) -> f64 {
    repair_time(c1, d1, s_hops) + i as f64
}

/// Detection time of the node `i ≥ 1` hops below the congested link,
/// relative to `L1`'s detection: the follow-up packet reaches it `i − 1`
/// hops after reaching `L1`.
pub fn detection_time(i: u32) -> f64 {
    (i - 1) as f64
}

/// Loss-recovery delay of node `i` hops below the failure.
pub fn recovery_delay(c1: f64, d1: f64, s_hops: u32, i: u32) -> f64 {
    repair_arrival(c1, d1, s_hops, i) - detection_time(i)
}

/// The unicast comparison from Section IV-A: node `i` sends a unicast
/// request to the source the moment it detects the failure and the source
/// answers immediately; the delay is one RTT to the source.
pub fn unicast_recovery_delay(s_hops: u32, i: u32) -> f64 {
    2.0 * (s_hops as f64 + i as f64)
}

/// Recovery delay over the node's own RTT to the source — the figure-of-
/// merit the paper uses ("with multicast loss recovery algorithms the ratio
/// of delay to RTT can be less than one").
pub fn recovery_delay_over_rtt(c1: f64, d1: f64, s_hops: u32, i: u32) -> f64 {
    recovery_delay(c1, d1, s_hops, i) / (2.0 * (s_hops as f64 + i as f64))
}

/// Expected number of requests on a chain as a function of `c2` — for the
/// chain the deterministic component dominates; duplicates only arise when
/// randomization puts a farther node's timer before the suppression wave
/// arrives. With `c2 = 0` there is exactly one request (Section VI: "with a
/// chain topology, setting C2 to zero gives the optimal behavior both in
/// terms of delay and in the number of duplicates").
pub fn expected_requests_c2_zero() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timeline_source_adjacent() {
        // Source directly above the failure (s = 0): request at 2, repair
        // at 2+1+1 = 4 with C1 = D1 = 1... the paper's Section IV-A walks
        // the case with distances: request at C1·d, repair C1·d + 1 + D1.
        assert_eq!(request_time(1.0, 0), 1.0);
        assert_eq!(repair_time(1.0, 1.0, 0), 3.0);
        assert_eq!(repair_arrival(1.0, 1.0, 0, 1), 4.0);
    }

    #[test]
    fn farther_nodes_recover_at_smaller_rtt_multiples() {
        // The key qualitative claim: deep nodes beat their own unicast RTT.
        let c1 = 1.0;
        let d1 = 1.0;
        let s = 1;
        let near = recovery_delay_over_rtt(c1, d1, s, 1);
        let far = recovery_delay_over_rtt(c1, d1, s, 20);
        assert!(far < near);
        assert!(far < 1.0, "far node beats its unicast RTT: {far}");
    }

    #[test]
    fn multicast_beats_unicast_for_far_nodes() {
        // "the furthest node receives the repair sooner than it would if it
        // had to rely on its own unicast communication with the original
        // source."
        let s = 2;
        for i in [5u32, 10, 50] {
            let m = recovery_delay(1.0, 1.0, s, i);
            let u = unicast_recovery_delay(s, i);
            assert!(m < u, "i={i}: multicast {m} vs unicast {u}");
        }
    }

    #[test]
    fn detection_is_staggered_by_hops() {
        assert_eq!(detection_time(1), 0.0);
        assert_eq!(detection_time(4), 3.0);
    }

    #[test]
    fn single_request_with_deterministic_timers() {
        assert_eq!(expected_requests_c2_zero(), 1.0);
    }
}

//! Order statistics of uniform random variables — the probability theory
//! behind the star analysis (Section IV-B, footnote 2) and the timer
//! tradeoffs of Section VI.
//!
//! With `k` i.i.d. timers uniform on `[0, w]`:
//!
//! - the earliest fires at expected time `w / (k+1)`;
//! - given the earliest fires at `t`, the expected number of others inside
//!   the suppression-blind window `[t, t+c]` is `(k−1)·c/w` (for `c ≪ w`),
//!   which is exactly where `E[#requests] ≈ 1 + (G−2)·c/w` comes from.

/// Expected value of the minimum of `k` i.i.d. `U[0, w]` variables:
/// `w / (k + 1)`.
pub fn expected_min_uniform(k: usize, w: f64) -> f64 {
    if k == 0 {
        return f64::INFINITY;
    }
    w / (k as f64 + 1.0)
}

/// Expected value of the `i`-th order statistic (1-based) of `k` i.i.d.
/// `U[0, w]`: `w·i/(k+1)`.
pub fn expected_order_statistic(i: usize, k: usize, w: f64) -> f64 {
    assert!(i >= 1 && i <= k, "order statistic out of range");
    w * i as f64 / (k as f64 + 1.0)
}

/// Expected number of the remaining `k−1` timers landing within `c` after
/// the earliest one — the expected duplicate count under probabilistic
/// suppression with a reaction time of `c` (exact for the uniform model).
///
/// Exact form: each of the other k−1 timers is, conditionally, uniform on
/// `[t, w]`; integrating over the minimum's density gives
/// `(k−1)·(1 − ((w−c)/w)^k · (w/(w... ` — we use the paper's first-order
/// approximation `(k−1)·c/w`, capped at `k−1`.
pub fn expected_duplicates(k: usize, w: f64, c: f64) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    if w <= 0.0 || c >= w {
        return (k - 1) as f64;
    }
    ((k - 1) as f64 * c / w).min((k - 1) as f64)
}

/// Monte-Carlo check helper (used by tests, exposed for the experiment
/// harness's self-tests): simulate the duplicate count directly.
pub fn simulate_duplicates<R: rand::Rng>(k: usize, w: f64, c: f64, trials: usize, rng: &mut R) -> f64 {
    let mut total = 0usize;
    for _ in 0..trials {
        let mut draws: Vec<f64> = (0..k).map(|_| rng.random_range(0.0..w)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let first = draws[0];
        total += draws[1..].iter().filter(|&&d| d <= first + c).count();
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn min_of_uniforms() {
        assert_eq!(expected_min_uniform(1, 10.0), 5.0);
        assert_eq!(expected_min_uniform(9, 10.0), 1.0);
        assert_eq!(expected_min_uniform(0, 10.0), f64::INFINITY);
    }

    #[test]
    fn order_statistics_ladder() {
        // Three uniforms on [0, 4]: expected at 1, 2, 3.
        for i in 1..=3 {
            assert_eq!(expected_order_statistic(i, 3, 4.0), i as f64);
        }
    }

    #[test]
    fn duplicates_first_order_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(k, w, c) in &[(100usize, 200.0, 2.0), (50, 100.0, 2.0), (30, 300.0, 4.0)] {
            let analytic = expected_duplicates(k, w, c);
            let sim = simulate_duplicates(k, w, c, 20_000, &mut rng);
            assert!(
                (analytic - sim).abs() < 0.15 * analytic.max(0.5),
                "k={k} w={w} c={c}: analytic {analytic} vs sim {sim}"
            );
        }
    }

    #[test]
    fn duplicates_edge_cases() {
        assert_eq!(expected_duplicates(1, 10.0, 1.0), 0.0);
        assert_eq!(expected_duplicates(5, 0.0, 1.0), 4.0); // degenerate: all collide
        assert_eq!(expected_duplicates(5, 1.0, 2.0), 4.0); // window covers all
    }

    #[test]
    fn star_formula_is_this_formula() {
        // E[#requests] = 1 + dups with k = G−1 timers on width C2·d and
        // reaction time d (the star's member-to-member delay 2 → c = 2,
        // w = 2·C2).
        let g = 100usize;
        let c2 = 10.0;
        let dups = expected_duplicates(g - 1, 2.0 * c2, 2.0);
        let star = srm_analysis_star_expected(g, c2);
        assert!((1.0 + dups - star).abs() < 1e-9);
    }

    // Local copy to avoid a circular dev-dependency on ourselves.
    fn srm_analysis_star_expected(g: usize, c2: f64) -> f64 {
        crate::star::expected_requests(g, c2)
    }
}

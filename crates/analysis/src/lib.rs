//! # srm-analysis — closed-form models from the SRM paper
//!
//! Sections IV and VI of the paper analyze the request/repair algorithms on
//! three canonical topologies before turning to simulation. This crate
//! reproduces those models:
//!
//! - [`chain`]: deterministic suppression — timers as a pure function of
//!   distance give exactly one request and one repair (Fig 1, Section IV-A);
//! - [`star`]: probabilistic suppression — expected request counts and
//!   delays for simultaneous detectors (Fig 2, Section IV-B, and the
//!   analysis curve of Fig 5);
//! - [`tree`]: the level-suppression inequality `C1·i ≥ C2·dS` bounding
//!   which levels can emit duplicates (Section IV-C).
//!
//! The experiment harness overlays these curves on the simulation results,
//! as the paper does in Fig 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod dist;
pub mod star;
pub mod tree;

//! Closed-form model of loss recovery in a star (Section IV-B and the
//! analysis curves of Fig 5).
//!
//! A star of `G` session members hangs off a non-member hub; every link has
//! unit delay, so every member is distance 2 from every other. When a
//! packet from one member is dropped on its own access link, the other
//! `G − 1` members detect the loss simultaneously and rely purely on
//! *probabilistic* suppression: with `D1 = D2 = 0` (no distance diversity
//! to exploit), request timers are drawn uniformly from an interval of
//! width `2·C2` (footnote 2). If the first timer fires at `t`, the other
//! `G − 2` members are only suppressed if their timers fall after `t + 2`
//! (one hub round trip), so:
//!
//! - `E[#requests] ≈ 1 + (G − 2)·2 / (2·C2) = 1 + (G − 2)/C2`
//! - `E[delay until first request] = C1·d + 2·C2·d/G` with `d = 2`
//!   (minimum of `G − 1` uniforms on a width-`2·C2·…` interval).

/// Distance (in link delays) between any two members of the star.
pub const STAR_DIST: f64 = 2.0;

/// Expected number of requests for one loss in a `g`-member star with
/// request parameters `c1` (unused by the count) and `c2`.
///
/// For `c2 = 0` every non-source member requests: `g − 1`.
pub fn expected_requests(g: usize, c2: f64) -> f64 {
    let g = g as f64;
    if c2 <= 0.0 {
        return g - 1.0;
    }
    // 1 + expected number of the remaining G−2 timers landing within the
    // suppression-blind window of 2 time units after the first.
    (1.0 + (g - 2.0) / c2).min(g - 1.0)
}

/// Expected delay until the first request timer fires, in seconds
/// (`d = 2` link delays): `C1·d + width/G` where `width = C2·d`.
///
/// The minimum of `G−1` i.i.d. uniforms on `[0, w]` has mean `w / G`.
pub fn expected_first_request_delay(g: usize, c1: f64, c2: f64) -> f64 {
    let g = g as f64;
    c1 * STAR_DIST + (c2 * STAR_DIST) / g
}

/// The same delay expressed in units of a member's RTT to the source
/// (RTT = 2·d = 4), the y-axis normalization of Fig 5.
pub fn expected_request_delay_over_rtt(g: usize, c1: f64, c2: f64) -> f64 {
    expected_first_request_delay(g, c1, c2) / (2.0 * STAR_DIST)
}

/// One (delay/RTT, E[#requests]) point of Fig 5's analysis curve.
pub fn fig5_point(g: usize, c1: f64, c2: f64) -> (f64, f64) {
    (
        expected_request_delay_over_rtt(g, c1, c2),
        expected_requests(g, c2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2_zero_means_everyone_requests() {
        assert_eq!(expected_requests(100, 0.0), 99.0);
    }

    #[test]
    fn paper_examples() {
        // "If C2 is at most 1, then there will always be ≈ G−1 requests"
        assert!(expected_requests(100, 1.0) >= 99.0);
        // "if C2 is set to sqrt(G), then the expected number of requests is
        // roughly sqrt(G)": for G = 100, 1 + 98/10 = 10.8 ≈ 10.
        let e = expected_requests(100, 10.0);
        assert!((e - 10.8).abs() < 1e-9);
    }

    #[test]
    fn requests_decrease_with_c2() {
        let mut prev = f64::MAX;
        for c2 in [1.0, 2.0, 5.0, 10.0, 50.0, 100.0] {
            let e = expected_requests(100, c2);
            assert!(e <= prev);
            prev = e;
        }
        // Large C2 approaches a single request.
        assert!(expected_requests(100, 1000.0) < 1.1);
    }

    #[test]
    fn delay_grows_linearly_with_c2() {
        let d0 = expected_first_request_delay(100, 2.0, 0.0);
        assert_eq!(d0, 4.0); // C1·d
        let d100 = expected_first_request_delay(100, 2.0, 100.0);
        assert_eq!(d100, 4.0 + 200.0 / 100.0);
    }

    #[test]
    fn rtt_normalization() {
        // With C1 = 2 and C2 = 0 the normalized delay is exactly 1 — the
        // "minimum request delay of 1 comes from the fixed value of 2 for
        // request parameter C1" (Section VI).
        assert_eq!(expected_request_delay_over_rtt(100, 2.0, 0.0), 1.0);
        // Fig 5's quoted point: C2 = 100 → delay ≈ 1.5 RTT, requests ≈ 1.5ish.
        let (delay, reqs) = fig5_point(100, 2.0, 100.0);
        assert!((delay - 1.5).abs() < 1e-9);
        assert!(reqs < 2.1);
    }
}

//! The level-suppression inequality for trees (Section IV-C).
//!
//! Nodes below the congested link are classified by their hop distance from
//! the first detector: node `A` adjacent to the failure is *level 0*, a bad
//! node at distance `i` from `A` is *level i*. With the source at distance
//! `dS` above `A` (so a level-`i` node is at distance `dS + i` from the
//! source):
//!
//! - a level-`i` node receives A's request no later than
//!   `i + (C1 + C2)·dS` after A detects the loss (A's timer is at worst the
//!   top of its interval, plus `i` hops of propagation), and detects the
//!   loss itself at time `i`, arming a timer that fires no earlier than
//!   `i + C1·(dS + i)`;
//! - so the level-`i` timer is *always* suppressed when
//!   `i + C1·(dS + i) ≥ i + (C1 + C2)·dS`, i.e. **`C1·i ≥ C2·dS`**.
//!
//! "Thus, the smaller the ratio C2/C1, the fewer the number of levels that
//! could be involved in duplicate requests", and duplicates shrink when the
//! source (or first requestor) is close to the congested link.

/// The smallest level that is *guaranteed* suppressed by the level-0
/// request: levels `i ≥ ceil(C2·dS / C1)` can never issue a duplicate.
///
/// Returns `None` when `c1 = 0` (no deterministic suppression at any depth).
pub fn first_guaranteed_suppressed_level(c1: f64, c2: f64, ds: f64) -> Option<u32> {
    if c1 <= 0.0 {
        return None;
    }
    Some((c2 * ds / c1).ceil() as u32)
}

/// Whether a level-`i` node's request timer is guaranteed suppressed.
pub fn level_always_suppressed(c1: f64, c2: f64, ds: f64, i: u32) -> bool {
    c1 * i as f64 >= c2 * ds
}

/// Upper bound on the number of levels that can produce duplicate requests
/// for a tree of height `height` below the failure.
pub fn duplicate_exposed_levels(c1: f64, c2: f64, ds: f64, height: u32) -> u32 {
    match first_guaranteed_suppressed_level(c1, c2, ds) {
        None => height + 1,
        Some(l) => l.min(height + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inequality_matches_paper_form() {
        // C1·i ≥ C2·dS ⇔ suppressed.
        assert!(level_always_suppressed(2.0, 1.0, 4.0, 2));
        assert!(!level_always_suppressed(2.0, 1.0, 4.0, 1));
    }

    #[test]
    fn smaller_c2_over_c1_suppresses_more_levels() {
        let ds = 5.0;
        let tight = first_guaranteed_suppressed_level(2.0, 1.0, ds).unwrap();
        let loose = first_guaranteed_suppressed_level(1.0, 4.0, ds).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn close_failure_means_fewer_duplicate_levels() {
        // "the number of duplicate requests … is smaller when the source …
        // is close to the congested link."
        let near = duplicate_exposed_levels(2.0, 4.0, 1.0, 100);
        let far = duplicate_exposed_levels(2.0, 4.0, 10.0, 100);
        assert!(near < far);
    }

    #[test]
    fn zero_c1_never_guarantees_suppression() {
        assert_eq!(first_guaranteed_suppressed_level(0.0, 1.0, 3.0), None);
        assert_eq!(duplicate_exposed_levels(0.0, 1.0, 3.0, 7), 8);
    }

    #[test]
    fn level_zero_never_suppressed_when_c2_positive() {
        assert!(!level_always_suppressed(2.0, 0.5, 1.0, 0));
        // But with C2 = 0 even level 0 is "suppressed" in the bound —
        // i.e. deterministic timers allow exactly the one first request.
        assert!(level_always_suppressed(2.0, 0.0, 1.0, 0));
    }
}

//! The sender-based (TCP-style) reliable multicast baseline of Section
//! II-A — the design the paper rejects.
//!
//! "If a TCP-style, sender-based approach is applied to multicast
//! distribution, a number of problems occur. First, because data packets
//! trigger acknowledgments … from all the receivers, the sender is subject
//! to the well-known ACK implosion effect. Also, if the sender is
//! responsible for reliable delivery, it must continuously track the
//! changing set of active receivers and the reception state of each."
//!
//! This implementation makes those costs measurable: the sender holds
//! per-receiver state, every data packet draws one unicast ACK per
//! receiver, and retransmissions are unicast per unacknowledged receiver
//! after a timeout.

use crate::wire::{flow, BaselineMsg};
use netsim::{Application, Ctx, GroupId, NodeId, Packet, SendOptions, SimDuration};
use std::collections::{BTreeMap, BTreeSet};

/// One node of the ACK-based protocol: either the single sender or one of
/// the receivers.
pub enum AckApp {
    /// The data source.
    Sender(AckSender),
    /// A receiver.
    Receiver(AckReceiver),
}

/// Sender state: the per-receiver tracking SRM exists to avoid.
pub struct AckSender {
    group: GroupId,
    /// The receiver set the sender must know (itself a scaling liability —
    /// "the receiver set may be expensive or impossible to obtain").
    pub receivers: BTreeSet<NodeId>,
    /// Outstanding: seq → receivers that have not ACKed yet.
    pub outstanding: BTreeMap<u64, BTreeSet<NodeId>>,
    next_seq: u64,
    /// Fixed retransmit timeout.
    pub rto: SimDuration,
    /// ACKs received (the implosion counter).
    pub acks_received: u64,
    /// Unicast retransmissions performed.
    pub retx_sent: u64,
}

/// Receiver state: ACK everything, deliver once.
pub struct AckReceiver {
    sender: NodeId,
    /// Sequences received.
    pub received: BTreeSet<u64>,
    /// Duplicate data/retx arrivals.
    pub duplicates: u64,
}

impl AckSender {
    /// A sender multicasting to `group`, retransmitting after `rto`.
    pub fn new(group: GroupId, receivers: BTreeSet<NodeId>, rto: SimDuration) -> Self {
        AckSender {
            group,
            receivers,
            outstanding: BTreeMap::new(),
            next_seq: 0,
            rto,
            acks_received: 0,
            retx_sent: 0,
        }
    }

    /// Multicast the next data packet; starts per-packet ACK tracking.
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.insert(seq, self.receivers.clone());
        ctx.multicast_with(
            self.group,
            BaselineMsg::Data { seq }.encode(),
            SendOptions::for_flow(flow::DATA),
        );
        ctx.set_timer(self.rto, seq);
        seq
    }

    /// All packets fully acknowledged?
    pub fn all_acked(&self) -> bool {
        self.outstanding.values().all(|s| s.is_empty())
    }
}

impl AckReceiver {
    /// A receiver that ACKs to `sender`.
    pub fn new(sender: NodeId) -> Self {
        AckReceiver {
            sender,
            received: BTreeSet::new(),
            duplicates: 0,
        }
    }
}

impl Application for AckApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Some(msg) = BaselineMsg::decode(pkt.payload.clone()) else {
            return;
        };
        match self {
            AckApp::Sender(s) => {
                if let BaselineMsg::Ack { seq, from } = msg {
                    s.acks_received += 1;
                    if let Some(waiting) = s.outstanding.get_mut(&seq) {
                        waiting.remove(&from);
                    }
                }
            }
            AckApp::Receiver(r) => match msg {
                BaselineMsg::Data { seq } | BaselineMsg::Retx { seq } => {
                    if !r.received.insert(seq) {
                        r.duplicates += 1;
                    }
                    // Every arrival is acknowledged (TCP-style duplicate
                    // ACKs on duplicate data).
                    ctx.unicast(
                        r.sender,
                        BaselineMsg::Ack {
                            seq,
                            from: ctx.node,
                        }
                        .encode(),
                        SendOptions::for_flow(flow::ACK),
                    );
                }
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let AckApp::Sender(s) = self else {
            return;
        };
        let seq = token;
        let Some(waiting) = s.outstanding.get(&seq) else {
            return;
        };
        if waiting.is_empty() {
            return;
        }
        // Unicast a retransmission to every straggler, then re-arm.
        for &r in waiting.clone().iter() {
            s.retx_sent += 1;
            ctx.unicast(
                r,
                BaselineMsg::Retx { seq }.encode(),
                SendOptions::for_flow(flow::RETX),
            );
        }
        ctx.set_timer(s.rto, seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::generators::star;
    use netsim::loss::OneShotLinkDrop;
    use netsim::{SimTime, Simulator};

    const G: GroupId = GroupId(2);

    fn setup(leaves: usize) -> (Simulator<AckApp>, NodeId) {
        let mut sim = Simulator::new(star(leaves), 1);
        let sender = NodeId(1);
        let receivers: BTreeSet<NodeId> = (2..=leaves as u32).map(NodeId).collect();
        sim.install(
            sender,
            AckApp::Sender(AckSender::new(G, receivers, SimDuration::from_secs(20))),
        );
        sim.join(sender, G);
        for i in 2..=leaves as u32 {
            sim.install(NodeId(i), AckApp::Receiver(AckReceiver::new(sender)));
            sim.join(NodeId(i), G);
        }
        (sim, sender)
    }

    #[test]
    fn every_receiver_acks_every_packet() {
        let (mut sim, sender) = setup(10);
        sim.exec(sender, |a, ctx| {
            let AckApp::Sender(s) = a else { unreachable!() };
            s.send_data(ctx);
        });
        sim.run_until_idle(SimTime::from_secs(1000));
        let AckApp::Sender(s) = sim.app(sender).unwrap() else {
            unreachable!()
        };
        assert_eq!(s.acks_received, 9, "ACK implosion: one per receiver");
        assert!(s.all_acked());
        assert_eq!(s.retx_sent, 0);
    }

    #[test]
    fn lost_packet_is_retransmitted_per_receiver() {
        let (mut sim, sender) = setup(6);
        // Drop the data copy toward receiver 4.
        let l = sim.topology().link_between(NodeId(0), NodeId(4)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l, sender, flow::DATA)));
        sim.exec(sender, |a, ctx| {
            let AckApp::Sender(s) = a else { unreachable!() };
            s.send_data(ctx);
        });
        sim.run_until_idle(SimTime::from_secs(10_000));
        let AckApp::Sender(s) = sim.app(sender).unwrap() else {
            unreachable!()
        };
        assert!(s.all_acked());
        assert_eq!(s.retx_sent, 1, "exactly one unicast retransmission");
        let AckApp::Receiver(r) = sim.app(NodeId(4)).unwrap() else {
            unreachable!()
        };
        assert!(r.received.contains(&0));
    }
}

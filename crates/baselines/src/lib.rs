//! # srm-baselines — what SRM is measured against
//!
//! Section II-A of the paper motivates receiver-driven multicast repair by
//! walking through the failure modes of the obvious alternatives. This
//! crate implements those alternatives so the comparison can be *measured*
//! rather than asserted:
//!
//! - [`ack`]: the sender-based, TCP-style protocol — per-receiver state at
//!   the sender, one unicast ACK per receiver per packet (the "ACK
//!   implosion"), unicast retransmissions on timeout;
//! - [`nack`]: the receiver-based *unicast*-NACK protocol of the
//!   La Porta/Schwartz comparison in Section VI \[29\] — gap-triggered NACKs
//!   unicast to the source with no suppression, so a shared loss draws
//!   G−1 NACKs and G−1 unicast retransmissions.
//!
//! The `srm-experiments` harness (`baseline-compare`) runs these head to
//! head with SRM on the same topologies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ack;
pub mod nack;
pub mod wire;

pub use ack::{AckApp, AckReceiver, AckSender};
pub use nack::{NackApp, NackReceiver, NackSender};
pub use wire::BaselineMsg;

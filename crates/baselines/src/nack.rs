//! The receiver-based *unicast-NACK* baseline of Section VI's comparison
//! with La Porta & Schwartz \[29\]: receivers detect gaps and unicast NACKs
//! to the sender, which unicasts retransmissions back.
//!
//! Against this baseline the paper weighs SRM's *multicast* NACKs: "for
//! multicast groups that could have hundreds of members … multicasting
//! NACKs would be quite effective in reducing the unnecessary use of
//! bandwidth" — because one multicast NACK suppresses the other G−2.

use crate::wire::{flow, BaselineMsg};
use netsim::{Application, Ctx, GroupId, NodeId, Packet, SendOptions, SimDuration};
use std::collections::BTreeSet;

/// One node of the unicast-NACK protocol.
pub enum NackApp {
    /// The data source.
    Sender(NackSender),
    /// A receiver.
    Receiver(NackReceiver),
}

/// Sender: stateless beyond its own send history (receiver-reliable).
pub struct NackSender {
    group: GroupId,
    next_seq: u64,
    /// NACKs received (compare with SRM's suppressed request count).
    pub nacks_received: u64,
    /// Unicast retransmissions sent.
    pub retx_sent: u64,
}

/// Receiver: gap detection plus a NACK retransmit timer.
pub struct NackReceiver {
    sender: NodeId,
    /// Sequences received.
    pub received: BTreeSet<u64>,
    /// Highest sequence seen (gap detection).
    highest: Option<u64>,
    /// Sequences currently being chased.
    pub missing: BTreeSet<u64>,
    /// NACK retransmit timeout.
    pub rto: SimDuration,
    /// NACKs this receiver has sent.
    pub nacks_sent: u64,
}

impl NackSender {
    /// A sender multicasting to `group`.
    pub fn new(group: GroupId) -> Self {
        NackSender {
            group,
            next_seq: 0,
            nacks_received: 0,
            retx_sent: 0,
        }
    }

    /// Multicast the next data packet.
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.multicast_with(
            self.group,
            BaselineMsg::Data { seq }.encode(),
            SendOptions::for_flow(flow::DATA),
        );
        seq
    }
}

impl NackReceiver {
    /// A receiver that NACKs to `sender` with retransmit timeout `rto`.
    pub fn new(sender: NodeId, rto: SimDuration) -> Self {
        NackReceiver {
            sender,
            received: BTreeSet::new(),
            highest: None,
            missing: BTreeSet::new(),
            rto,
            nacks_sent: 0,
        }
    }

    /// All gaps closed?
    pub fn complete(&self) -> bool {
        self.missing.is_empty()
    }

    fn note_seq(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        self.received.insert(seq);
        self.missing.remove(&seq);
        let prev = self.highest.map_or(0, |h| h + 1);
        if self.highest.is_none_or(|h| seq > h) {
            self.highest = Some(seq);
            for gap in prev..seq {
                if !self.received.contains(&gap) && self.missing.insert(gap) {
                    self.send_nack(ctx, gap);
                }
            }
        }
    }

    fn send_nack(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        self.nacks_sent += 1;
        ctx.unicast(
            self.sender,
            BaselineMsg::Nack {
                seq,
                from: ctx.node,
            }
            .encode(),
            SendOptions::for_flow(flow::NACK),
        );
        ctx.set_timer(self.rto, seq);
    }
}

impl Application for NackApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let Some(msg) = BaselineMsg::decode(pkt.payload.clone()) else {
            return;
        };
        match self {
            NackApp::Sender(s) => {
                if let BaselineMsg::Nack { seq, from } = msg {
                    s.nacks_received += 1;
                    s.retx_sent += 1;
                    ctx.unicast(
                        from,
                        BaselineMsg::Retx { seq }.encode(),
                        SendOptions::for_flow(flow::RETX),
                    );
                }
            }
            NackApp::Receiver(r) => match msg {
                BaselineMsg::Data { seq } | BaselineMsg::Retx { seq } => r.note_seq(ctx, seq),
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let NackApp::Receiver(r) = self else {
            return;
        };
        let seq = token;
        if r.missing.contains(&seq) {
            r.send_nack(ctx, seq); // chase again
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::generators::star;
    use netsim::loss::OneShotLinkDrop;
    use netsim::{SimTime, Simulator};

    const G: GroupId = GroupId(3);

    fn setup(leaves: usize) -> (Simulator<NackApp>, NodeId) {
        let mut sim = Simulator::new(star(leaves), 2);
        let sender = NodeId(1);
        sim.install(sender, NackApp::Sender(NackSender::new(G)));
        sim.join(sender, G);
        for i in 2..=leaves as u32 {
            sim.install(
                NodeId(i),
                NackApp::Receiver(NackReceiver::new(sender, SimDuration::from_secs(30))),
            );
            sim.join(NodeId(i), G);
        }
        (sim, sender)
    }

    #[test]
    fn shared_loss_triggers_one_nack_per_receiver() {
        // Drop on the sender's access link: every receiver misses packet 0,
        // detects the gap from packet 1, and unicasts a NACK — G−1 NACKs
        // converge on the sender (no suppression in this baseline).
        let (mut sim, sender) = setup(8);
        let l = sim.topology().link_between(NodeId(0), sender).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l, sender, flow::DATA)));
        sim.exec(sender, |a, ctx| {
            let NackApp::Sender(s) = a else { unreachable!() };
            s.send_data(ctx);
        });
        sim.run_until(SimTime::from_secs(2));
        sim.exec(sender, |a, ctx| {
            let NackApp::Sender(s) = a else { unreachable!() };
            s.send_data(ctx);
        });
        sim.run_until_idle(SimTime::from_secs(10_000));
        let NackApp::Sender(s) = sim.app(sender).unwrap() else {
            unreachable!()
        };
        assert_eq!(s.nacks_received, 7);
        assert_eq!(s.retx_sent, 7, "one unicast retransmission per receiver");
        for i in 2..=8u32 {
            let NackApp::Receiver(r) = sim.app(NodeId(i)).unwrap() else {
                unreachable!()
            };
            assert!(r.complete(), "receiver {i}");
            assert_eq!(r.received.len(), 2);
        }
    }

    #[test]
    fn nack_retransmit_timer_survives_lost_nacks() {
        let (mut sim, sender) = setup(4);
        // Drop data toward receiver 3, and also its first NACK.
        let l3 = sim.topology().link_between(NodeId(0), NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(netsim::loss::ScriptedDrop::new(vec![
            (l3, 1), // the data copy
            (l3, 3), // its first NACK (data pkt2 is ordinal 2)
        ])));
        sim.exec(sender, |a, ctx| {
            let NackApp::Sender(s) = a else { unreachable!() };
            s.send_data(ctx);
        });
        sim.run_until(SimTime::from_secs(2));
        sim.exec(sender, |a, ctx| {
            let NackApp::Sender(s) = a else { unreachable!() };
            s.send_data(ctx);
        });
        sim.run_until_idle(SimTime::from_secs(100_000));
        let NackApp::Receiver(r) = sim.app(NodeId(3)).unwrap() else {
            unreachable!()
        };
        assert!(r.complete(), "recovered despite the lost NACK");
        assert!(r.nacks_sent >= 2);
    }
}

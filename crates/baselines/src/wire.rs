//! Wire format shared by the baseline protocols.
//!
//! Deliberately minimal: a tag, a sequence number, and the speaking node.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use netsim::NodeId;

/// Baseline protocol messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineMsg {
    /// Multicast data from the sender.
    Data {
        /// Sequence number.
        seq: u64,
    },
    /// Positive acknowledgment, unicast receiver → sender.
    Ack {
        /// Acknowledged sequence number.
        seq: u64,
        /// The acknowledging receiver.
        from: NodeId,
    },
    /// Negative acknowledgment, unicast receiver → sender.
    Nack {
        /// The missing sequence number.
        seq: u64,
        /// The complaining receiver.
        from: NodeId,
    },
    /// Retransmission, unicast sender → one receiver.
    Retx {
        /// Sequence number being retransmitted.
        seq: u64,
    },
}

const TAG_DATA: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_NACK: u8 = 3;
const TAG_RETX: u8 = 4;

impl BaselineMsg {
    /// Encode.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        match *self {
            BaselineMsg::Data { seq } => {
                b.put_u8(TAG_DATA);
                b.put_u64(seq);
            }
            BaselineMsg::Ack { seq, from } => {
                b.put_u8(TAG_ACK);
                b.put_u64(seq);
                b.put_u32(from.0);
            }
            BaselineMsg::Nack { seq, from } => {
                b.put_u8(TAG_NACK);
                b.put_u64(seq);
                b.put_u32(from.0);
            }
            BaselineMsg::Retx { seq } => {
                b.put_u8(TAG_RETX);
                b.put_u64(seq);
            }
        }
        b.freeze()
    }

    /// Decode; `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<BaselineMsg> {
        if buf.len() < 9 {
            return None;
        }
        let tag = buf.get_u8();
        let seq = buf.get_u64();
        Some(match tag {
            TAG_DATA => BaselineMsg::Data { seq },
            TAG_ACK => {
                if buf.len() < 4 {
                    return None;
                }
                BaselineMsg::Ack {
                    seq,
                    from: NodeId(buf.get_u32()),
                }
            }
            TAG_NACK => {
                if buf.len() < 4 {
                    return None;
                }
                BaselineMsg::Nack {
                    seq,
                    from: NodeId(buf.get_u32()),
                }
            }
            TAG_RETX => BaselineMsg::Retx { seq },
            _ => return None,
        })
    }
}

/// Flow labels for baseline traffic (distinct from SRM's).
pub mod flow {
    /// Multicast data.
    pub const DATA: u32 = 20;
    /// ACK control traffic.
    pub const ACK: u32 = 21;
    /// NACK control traffic.
    pub const NACK: u32 = 22;
    /// Unicast retransmissions.
    pub const RETX: u32 = 23;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for m in [
            BaselineMsg::Data { seq: 7 },
            BaselineMsg::Ack {
                seq: 9,
                from: NodeId(3),
            },
            BaselineMsg::Nack {
                seq: 11,
                from: NodeId(5),
            },
            BaselineMsg::Retx { seq: 13 },
        ] {
            assert_eq!(BaselineMsg::decode(m.encode()), Some(m));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(BaselineMsg::decode(Bytes::from_static(&[1, 2, 3])), None);
        assert_eq!(
            BaselineMsg::decode(Bytes::from_static(&[9, 0, 0, 0, 0, 0, 0, 0, 0])),
            None
        );
        // ACK missing its node id.
        assert_eq!(
            BaselineMsg::decode(Bytes::from_static(&[2, 0, 0, 0, 0, 0, 0, 0, 1])),
            None
        );
    }
}

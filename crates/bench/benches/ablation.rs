//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Wall time of a loss-recovery round is a direct proxy for the traffic it
//! generates (the simulator's cost is per event), so these expose how each
//! mechanism changes the protocol's work:
//!
//! - distance-scaled timers vs no scaling (`C1·d` vs fixed intervals);
//! - suppression randomization width (`C2 = 0` vs `√G` vs large);
//! - backoff ×2 vs ×3 (the Section VII-A retransmit race);
//! - adaptive vs fixed parameters;
//! - global vs TTL-scoped recovery;
//! - repair hold-down on vs off (hold_down = 0 disables it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm::config::FixedIntervals;
use srm::{RecoveryScope, SrmConfig, TimerParams};
use std::hint::black_box;

fn spec_with(cfg: SrmConfig) -> ScenarioSpec {
    ScenarioSpec {
        topo: TopoSpec::BoundedTree { n: 500, degree: 4 },
        group_size: Some(40),
        drop: DropSpec::RandomTreeLink,
        cfg,
        seed: 0xab1a,
        timer_seed: None,
    }
}

fn ablate_timer_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/timer_scaling");
    let mut scaled = spec_with(SrmConfig::fixed(40)).build();
    g.bench_function("distance_scaled", |b| {
        b.iter(|| black_box(run_round(&mut scaled, 100_000.0).requests))
    });
    let mut fixed = spec_with(SrmConfig {
        fixed_intervals: Some(FixedIntervals::wb159()),
        ..SrmConfig::default()
    })
    .build();
    g.bench_function("wb159_fixed_intervals", |b| {
        b.iter(|| black_box(run_round(&mut fixed, 100_000.0).requests))
    });
    g.finish();
}

fn ablate_c2(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/randomization_width");
    for c2 in [0.0, 6.32, 40.0] {
        let cfg = SrmConfig {
            timers: TimerParams {
                c1: 2.0,
                c2,
                d1: 2.0,
                d2: 6.32,
            },
            ..SrmConfig::default()
        };
        let mut s = spec_with(cfg).build();
        g.bench_with_input(BenchmarkId::from_parameter(format!("c2_{c2}")), &c2, |b, _| {
            b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
        });
    }
    g.finish();
}

fn ablate_backoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/backoff");
    for m in [2.0f64, 3.0] {
        let cfg = SrmConfig {
            backoff: m,
            ..SrmConfig::fixed(40)
        };
        let mut s = spec_with(cfg).build();
        g.bench_with_input(BenchmarkId::from_parameter(format!("x{m}")), &m, |b, _| {
            b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
        });
    }
    g.finish();
}

fn ablate_adaptive(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/adaptation");
    let mut fixed = spec_with(SrmConfig::fixed(40)).build();
    g.bench_function("fixed_params", |b| {
        b.iter(|| black_box(run_round(&mut fixed, 100_000.0).requests))
    });
    let mut adaptive = spec_with(SrmConfig::adaptive(40)).build();
    // Pre-converge so the bench measures steady state.
    for _ in 0..30 {
        run_round(&mut adaptive, 100_000.0);
    }
    g.bench_function("adaptive_steady_state", |b| {
        b.iter(|| black_box(run_round(&mut adaptive, 100_000.0).requests))
    });
    g.finish();
}

fn ablate_scope(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/recovery_scope");
    let mut global = spec_with(SrmConfig::fixed(40)).build();
    g.bench_function("global", |b| {
        b.iter(|| black_box(run_round(&mut global, 100_000.0).repairs))
    });
    let mut scoped = spec_with(SrmConfig {
        scope: RecoveryScope::Ttl(16),
        ..SrmConfig::fixed(40)
    })
    .build();
    g.bench_function("ttl_scoped_16", |b| {
        b.iter(|| black_box(run_round(&mut scoped, 100_000.0).repairs))
    });
    g.finish();
}

fn ablate_hold_down(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/repair_hold_down");
    for hd in [0.0f64, 3.0] {
        let cfg = SrmConfig {
            hold_down: hd,
            ..SrmConfig::fixed(40)
        };
        let mut s = spec_with(cfg).build();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("hold_down_{hd}")),
            &hd,
            |b, _| b.iter(|| black_box(run_round(&mut s, 100_000.0).repairs)),
        );
    }
    g.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(20);
    targets = ablate_timer_scaling,
    ablate_c2,
    ablate_backoff,
    ablate_adaptive,
    ablate_scope,
    ablate_hold_down
);
criterion_main!(ablation);

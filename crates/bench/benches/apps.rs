//! Application-layer benchmarks: wb's drawop codec and rasterizer, the
//! baseline protocols, and the scenario runner.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::SimTime;
use srm_sim::{run as run_scenario, Scenario};
use std::hint::black_box;
use wb::{render_page, Color, DrawOp, OpKind, PageCanvas, Point};

fn wb_codec(c: &mut Criterion) {
    let op = DrawOp {
        timestamp: SimTime::from_secs(9),
        kind: OpKind::Polyline {
            points: (0..50)
                .map(|i| Point {
                    x: i,
                    y: (i * 7) % 23,
                })
                .collect(),
            color: Color::BLUE,
        },
    };
    c.bench_function("apps/wb_drawop_encode_polyline50", |b| {
        b.iter(|| black_box(op.encode().len()))
    });
    let enc = op.encode();
    c.bench_function("apps/wb_drawop_decode_polyline50", |b| {
        b.iter(|| black_box(DrawOp::decode(enc.clone()).unwrap()))
    });
}

fn wb_raster(c: &mut Criterion) {
    // A busy page: 100 mixed drawops.
    let mut canvas = PageCanvas::default();
    for i in 0..100u64 {
        let kind = match i % 3 {
            0 => OpKind::Line {
                from: Point {
                    x: (i % 80) as i32,
                    y: 0,
                },
                to: Point {
                    x: 0,
                    y: (i % 24) as i32,
                },
                color: Color::BLUE,
            },
            1 => OpKind::Circle {
                center: Point {
                    x: (i % 80) as i32,
                    y: (i % 24) as i32,
                },
                radius: (i % 9) as u32,
                color: Color::RED,
            },
            _ => OpKind::Text {
                at: Point {
                    x: (i % 60) as i32,
                    y: (i % 24) as i32,
                },
                text: format!("op {i}"),
                color: Color::BLACK,
            },
        };
        canvas.apply(
            srm::AduName::new(
                srm::SourceId(1),
                srm::PageId::new(srm::SourceId(1), 0),
                srm::SeqNo(i),
            ),
            DrawOp {
                timestamp: SimTime::from_secs(i),
                kind,
            },
        );
    }
    c.bench_function("apps/wb_render_100_ops_80x24", |b| {
        b.iter(|| black_box(render_page(&canvas, 80, 24).ink()))
    });
}

fn baseline_rounds(c: &mut Criterion) {
    c.bench_function("apps/baseline_ack_round_star60", |b| {
        b.iter(|| black_box(srm_experiments::baseline_compare::ack_cost(60, 1).control_hops))
    });
    c.bench_function("apps/baseline_unicast_nack_round_star60", |b| {
        b.iter(|| black_box(srm_experiments::baseline_compare::nack_cost(60, 1).control_hops))
    });
}

fn scenario_runner(c: &mut Criterion) {
    let sc = Scenario::from_json(
        r#"{
            "topology": {"kind": "bounded_tree", "n": 200, "degree": 4},
            "seed": 5,
            "members": {"random": 20},
            "config": {"session_messages": false},
            "loss": {"kind": "bernoulli", "p": 0.01},
            "workload": {"adus": 10, "interval_secs": 5.0, "payload_bytes": 64},
            "settle_secs": 100000
        }"#,
    )
    .expect("valid scenario");
    c.bench_function("apps/srm_sim_scenario_200node_10adus", |b| {
        b.iter(|| black_box(run_scenario(&sc).unwrap().complete_receivers))
    });
}

criterion_group!(
    name = apps;
    config = Criterion::default().sample_size(20);
    targets = wb_codec, wb_raster, baseline_rounds, scenario_runner
);
criterion_main!(apps);

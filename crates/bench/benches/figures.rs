//! One benchmark per reproduced figure: each measures the cost of the
//! figure's unit of work (a loss-recovery round on that figure's scenario,
//! or the figure's analytic evaluation), at reduced scale so `cargo bench`
//! stays fast. The full-scale regeneration lives in the `srm-experiments`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm_experiments::{fig15, fig4, RunOpts};
use srm::{SrmConfig, TimerParams};
use std::hint::black_box;

fn fig3_round(c: &mut Criterion) {
    let spec = ScenarioSpec {
        topo: TopoSpec::RandomTree { n: 40 },
        group_size: None,
        drop: DropSpec::RandomTreeLink,
        cfg: SrmConfig::fixed(40),
        seed: 1,
        timer_seed: None,
    };
    let mut s = spec.build();
    c.bench_function("fig3/recovery_round_dense_random_tree_40", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
    });
}

fn fig4_round(c: &mut Criterion) {
    let mut s = fig4::spec(50, 1, SrmConfig::fixed(50)).build();
    c.bench_function("fig4/recovery_round_sparse_1000node_tree_g50", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).repairs))
    });
}

fn fig5_round(c: &mut Criterion) {
    let spec = ScenarioSpec {
        topo: TopoSpec::Star { leaves: 100 },
        group_size: None,
        drop: DropSpec::AdjacentToSource,
        cfg: SrmConfig {
            timers: TimerParams {
                c1: 2.0,
                c2: 10.0,
                d1: 1.0,
                d2: 1.0,
            },
            ..SrmConfig::default()
        },
        seed: 5,
        timer_seed: None,
    };
    let mut s = spec.build();
    c.bench_function("fig5/recovery_round_star_100_c2_10", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
    });
}

fn fig6_round(c: &mut Criterion) {
    let spec = ScenarioSpec {
        topo: TopoSpec::Chain { n: 100 },
        group_size: None,
        drop: DropSpec::HopsFromSource(5),
        cfg: SrmConfig {
            timers: TimerParams {
                c1: 2.0,
                c2: 2.0,
                d1: 1.0,
                d2: 1.0,
            },
            ..SrmConfig::default()
        },
        seed: 6,
        timer_seed: None,
    };
    let mut s = spec.build();
    c.bench_function("fig6/recovery_round_chain_100", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
    });
}

fn fig7_fig8_rounds(c: &mut Criterion) {
    // Dense tree (fig 7 regime).
    let spec = ScenarioSpec {
        topo: TopoSpec::RandomTree { n: 100 },
        group_size: None,
        drop: DropSpec::HopsFromSource(2),
        cfg: SrmConfig::fixed(100),
        seed: 7,
        timer_seed: None,
    };
    let mut s = spec.build();
    c.bench_function("fig7/recovery_round_dense_tree_100", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
    });
    // Sparse tree (fig 8 regime).
    let spec = ScenarioSpec {
        topo: TopoSpec::BoundedTree { n: 1000, degree: 4 },
        group_size: Some(100),
        drop: DropSpec::HopsFromSource(2),
        cfg: SrmConfig::fixed(100),
        seed: 8,
        timer_seed: None,
    };
    let mut s = spec.build();
    c.bench_function("fig8/recovery_round_sparse_tree_1000_g100", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
    });
}

fn fig12_13_rounds(c: &mut Criterion) {
    let mut fixed = fig4::spec(50, 3, SrmConfig::fixed(50)).build();
    c.bench_function("fig12/nonadaptive_round", |b| {
        b.iter(|| black_box(run_round(&mut fixed, 100_000.0).requests))
    });
    let mut adaptive = fig4::spec(50, 3, SrmConfig::adaptive(50)).build();
    c.bench_function("fig13/adaptive_round", |b| {
        b.iter(|| black_box(run_round(&mut adaptive, 100_000.0).requests))
    });
}

fn fig14_round(c: &mut Criterion) {
    let mut s = fig4::spec(100, 2, SrmConfig::adaptive(100)).build();
    c.bench_function("fig14/adaptive_round_g100", |b| {
        b.iter(|| black_box(run_round(&mut s, 100_000.0).requests))
    });
}

fn fig15_eval(c: &mut Criterion) {
    // The figure's unit of work is the exact TTL-reachability evaluation.
    let opts = RunOpts {
        quick: true,
        threads: 1,
    };
    c.bench_function("fig15/ttl_reach_evaluation_quick", |b| {
        b.iter(|| black_box(fig15::samples(&opts).len()))
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = fig3_round,
    fig4_round,
    fig5_round,
    fig6_round,
    fig7_fig8_rounds,
    fig12_13_rounds,
    fig14_round,
    fig15_eval
);
criterion_main!(figures);

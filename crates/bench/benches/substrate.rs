//! Microbenchmarks of the substrates: event queue, routing, topology
//! generation, wire codecs, and the rate limiter.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::event::{EventKind, EventQueue, TimerId};
use netsim::generators::{bounded_degree_tree, random_labeled_tree};
use netsim::routing::SpTree;
use netsim::{GroupId, NodeId, SendOptions, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::config::RateLimit;
use srm::rate::TokenBucket;
use srm::wire::{Body, DataBody, Header, Message, RequestBody};
use srm::{AduName, PageId, SeqNo, SourceId};
use std::hint::black_box;

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("substrate/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(
                    SimTime::from_secs((i * 7919) % 10_000),
                    EventKind::Timer {
                        node: NodeId(0),
                        id: TimerId(i),
                        token: i,
                    },
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn spt_computation(c: &mut Criterion) {
    let topo = bounded_degree_tree(1000, 4);
    c.bench_function("substrate/spt_compute_1000node_tree", |b| {
        b.iter(|| black_box(SpTree::compute(&topo, NodeId(500)).distance(NodeId(999))))
    });
}

fn prufer_generation(c: &mut Criterion) {
    c.bench_function("substrate/random_labeled_tree_1000", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(random_labeled_tree(1000, &mut rng).num_links()))
    });
}

fn multicast_flood(c: &mut Criterion) {
    // One packet from the root of a 1000-node tree to 200 member leaves.
    struct Sink;
    impl netsim::Application for Sink {
        fn on_packet(&mut self, _: &mut netsim::Ctx<'_>, _: &netsim::Packet) {}
        fn on_timer(&mut self, _: &mut netsim::Ctx<'_>, _: u64) {}
    }
    let topo = bounded_degree_tree(1000, 4);
    let g = GroupId(1);
    let mut sim: Simulator<Sink> = Simulator::new(topo, 1);
    for i in (0..1000u32).step_by(5) {
        sim.install(NodeId(i), Sink);
        sim.join(NodeId(i), g);
    }
    c.bench_function("substrate/multicast_flood_1000node_200members", |b| {
        b.iter(|| {
            sim.send_from(NodeId(0), g, Bytes::from_static(b"x"), SendOptions::default());
            sim.run_until_idle(SimTime::MAX);
            black_box(sim.stats.events)
        })
    });
}

fn wire_codec(c: &mut Criterion) {
    let name = AduName::new(SourceId(7), PageId::new(SourceId(7), 3), SeqNo(99));
    let data = Message {
        header: Header {
            sender: SourceId(7),
            timestamp: SimTime::from_secs(100),
        },
        body: Body::Data(DataBody {
            name,
            is_repair: false,
            answering: None,
            dist_to_requestor: 0.0,
            payload: Bytes::from(vec![0u8; 512]),
        }),
    };
    c.bench_function("substrate/wire_encode_data_512B", |b| {
        b.iter(|| black_box(data.encode().len()))
    });
    let enc = data.encode();
    c.bench_function("substrate/wire_decode_data_512B", |b| {
        b.iter(|| black_box(Message::decode(enc.clone()).unwrap()))
    });
    let req = Message {
        header: Header {
            sender: SourceId(7),
            timestamp: SimTime::from_secs(100),
        },
        body: Body::Request(RequestBody {
            name,
            dist_to_source: 4.0,
        }),
    };
    c.bench_function("substrate/wire_roundtrip_request", |b| {
        b.iter(|| black_box(Message::decode(req.encode()).unwrap()))
    });
}

fn token_bucket(c: &mut Criterion) {
    c.bench_function("substrate/token_bucket_100k_ops", |b| {
        b.iter(|| {
            let mut tb = TokenBucket::new(RateLimit {
                bytes_per_sec: 1e6,
                burst_bytes: 1e4,
            });
            let mut sent = 0u64;
            for i in 0..100_000u64 {
                if tb.try_consume(SimTime::from_secs_f64(i as f64 * 1e-4), 100.0) {
                    sent += 1;
                }
            }
            black_box(sent)
        })
    });
}

criterion_group!(
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = event_queue_throughput,
    spt_computation,
    prufer_generation,
    multicast_flood,
    wire_codec,
    token_bucket
);
criterion_main!(substrate);

//! The `live` macro-benchmark: wall-clock measurement of the *transport*
//! hot path — real UDP datagrams through the reactor — distilled into
//! `BENCH_9.json`.
//!
//! Where `scale` times the simulator's event queue, `live` times the
//! wall-clock datapath the simulator never touches: socket syscalls,
//! receive-thread → reactor handoff, envelope decode, and the agent's
//! packet handler, end to end over a loopback mesh ([`Harness`]).
//!
//! Three benchmarks bracket that datapath:
//!
//! - `flood_pair`: a 2-node mesh; member 1 floods ADUs as fast as the
//!   pipeline accepts them, and the run ends when member 2 has delivered
//!   them all. Packets/sec here is end-to-end delivered throughput of one
//!   socket → reactor → agent pipeline.
//! - `flood_mesh4`: a 4-node mesh; the same flood through a fan-out of 3,
//!   so the send path replicates every frame per peer (the mesh stand-in
//!   for group delivery) and three receive pipelines run concurrently.
//! - `churn_repair`: a 2-node mesh with scripted chaos loss on the
//!   sender; the run ends when SRM's request/repair machinery has
//!   recovered every gap. Packets/sec here includes the recovery traffic
//!   — the number the paper's receiver-driven design actually lives on.
//! - `hub_fanout` / `fanout_pairs8`: the multi-session hub against its
//!   own null hypothesis. `hub_fanout` runs one [`Hub`] hosting 8 groups
//!   (shared demux socket, 4 shard reactors), each publishing to its own
//!   receiver node; `fanout_pairs8` runs the same 8 sessions as 8
//!   independent single-session pair runtimes. The pair of numbers pins
//!   the consolidation tax: the hub's aggregate delivered throughput must
//!   stay within 2x of the fleet-of-processes baseline (`run` warns when
//!   it does not).
//!
//! Each bench also reports receive-stage latency quantiles (recv-thread
//! capture → reactor dequeue, and agent handling) from the live
//! [`obs::MetricsRegistry`] histograms.
//!
//! Subcommands (mirroring `scale`):
//!
//! ```text
//! live run      [--quick] [--best N] [--out FILE] [--merge-baseline FILE] [--label S] [--portable]
//! live check    --against FILE [--tolerance R] [--quick]
//! live validate FILE
//! ```
//!
//! `run` measures and writes a JSON report (schema `srm-livebench/1`).
//! `--merge-baseline` carries the `baseline_pre_pr` section of an existing
//! report forward so `BENCH_9.json` keeps its before/after pairing.
//! `check` re-measures (best of five, throughput is right-censored by
//! scheduler noise, so the *maximum* over repetitions is the robust
//! estimator) and fails with exit 1 if any benchmark's packets/sec fell
//! below `pinned / tolerance` — the CI regression gate. `validate` is the
//! structural schema check with no measuring.

use bytes::Bytes;
use netsim::{GroupId, SimDuration};
use srm::{PageId, SourceId, SrmConfig};
use srm_sim::json::Json;
use srm_transport::{
    parse_spec, BatchOptions, GroupSpec, Harness, Hub, HubOptions, Mode, Node, NodeOptions,
};
use std::time::{Duration, Instant};

/// One measured benchmark.
struct BenchResult {
    name: &'static str,
    /// ADUs delivered across all receivers (the packet count `pps` rates).
    packets: u64,
    /// Wall-clock seconds from first send to last delivery.
    secs: f64,
    /// Delivered packets per second, end to end.
    pps: f64,
    /// Receive-stage quantiles (µs) from the first receiver's registry.
    queue_p50_us: f64,
    queue_p99_us: f64,
    handle_p50_us: f64,
    handle_p99_us: f64,
}

/// Seed every pairwise distance estimate to `d` so churn-repair timers are
/// short and the flood benches never wait on timer estimation.
fn seed_distances(n: usize, opts: &mut NodeOptions, d: SimDuration) {
    for peer in 1..=n as u64 {
        if SourceId(peer) != opts.id {
            opts.initial_distances.push((SourceId(peer), d));
        }
    }
}

/// ADUs sent per exec round-trip: large enough to amortize the channel
/// hop, small enough to keep the reactor responsive to its own timers.
const SEND_CHUNK: usize = 256;

/// Flood benches measure the datapath, not the shed policy: give the
/// inbound channel and receive pool room for the whole burst.
fn tune_batch(b: &mut BatchOptions, portable: bool) {
    b.force_portable = portable;
    b.inbound_capacity = 65_536;
    b.pool_slabs = 512;
    b.recv_batch = 256;
    b.send_batch = 256;
    b.inbound_drain = 1024;
}

/// Drive one flood-or-churn session: `n` nodes, member 1 publishes `adus`
/// ADUs of `payload_len` bytes flat out, and the clock stops when every
/// other member has delivered all of them (or `deadline` passes — the
/// measurement then rates what actually arrived, and says so).
fn run_session(
    name: &'static str,
    n: usize,
    adus: usize,
    payload_len: usize,
    chaos: Option<&str>,
    portable: bool,
    deadline: Duration,
) -> BenchResult {
    let cfg = SrmConfig::fixed(n);
    let mut regs: Vec<obs::MetricsRegistry> = Vec::new();
    for _ in 0..n {
        regs.push(obs::MetricsRegistry::new());
    }
    let regs_for_nodes = regs.clone();
    let h = Harness::loopback(n, GroupId(1), &cfg, |i, addrs, o| {
        o.metrics = Some(regs_for_nodes[i].clone());
        tune_batch(&mut o.batch, portable);
        seed_distances(n, o, SimDuration::from_millis(10));
        if i == 0 {
            if let Some(spec) = chaos {
                o.chaos = Some(parse_spec(spec, addrs).expect("valid chaos spec"));
            }
        }
    })
    .expect("bind loopback mesh");

    let page = PageId::new(SourceId(1), 0);
    let payload = Bytes::from(vec![0x5Au8; payload_len]);
    let start = Instant::now();
    let mut queued = 0usize;
    while queued < adus {
        let burst = SEND_CHUNK.min(adus - queued);
        let p = payload.clone();
        h.nodes[0].exec(move |a, d| {
            for _ in 0..burst {
                a.send_data(d, page, p.clone());
            }
        });
        queued += burst;
    }

    // Wait for every receiver to deliver the full set.
    let want = adus * (n - 1);
    let stop_at = start + deadline;
    let mut delivered = 0usize;
    while delivered < want && Instant::now() < stop_at {
        for node in &h.nodes[1..] {
            delivered += node.take_delivered().len();
        }
        if delivered < want {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    for node in &h.nodes[1..] {
        delivered += node.take_delivered().len();
    }
    if delivered < want {
        eprintln!(
            "live: WARNING {name}: only {delivered}/{want} ADUs delivered within {deadline:?}; \
             rating what arrived"
        );
    }

    let q = |reg: &obs::MetricsRegistry, hist: &str, quant: f64| -> f64 {
        reg.histogram(hist)
            .snapshot()
            .quantile(quant)
            .map(|s| s * 1e6)
            .unwrap_or(0.0)
    };
    if std::env::var_os("LIVE_DEBUG").is_some() {
        let tx_reg = &regs[0];
        eprintln!(
            "live: DEBUG {name}: send p50/p99 {:.1}/{:.1}us, send-batch p50 {:.0}, recv-batch p50 {:.0}, drain p50 {:.0}",
            q(tx_reg, "stage.send_s", 0.50),
            q(tx_reg, "stage.send_s", 0.99),
            tx_reg.histogram("batch.send_frames").snapshot().quantile(0.5).unwrap_or(0.0),
            regs[1].histogram("batch.recv_frames").snapshot().quantile(0.5).unwrap_or(0.0),
            regs[1].histogram("batch.inbound_drain").snapshot().quantile(0.5).unwrap_or(0.0),
        );
        eprintln!(
            "live: DEBUG {name}: recv-batch p90/p99 {:.0}/{:.0}, drain p90/p99 {:.0}/{:.0}",
            regs[1].histogram("batch.recv_frames").snapshot().quantile(0.9).unwrap_or(0.0),
            regs[1].histogram("batch.recv_frames").snapshot().quantile(0.99).unwrap_or(0.0),
            regs[1].histogram("batch.inbound_drain").snapshot().quantile(0.9).unwrap_or(0.0),
            regs[1].histogram("batch.inbound_drain").snapshot().quantile(0.99).unwrap_or(0.0),
        );
    }
    let rx_reg = &regs[1];
    let result = BenchResult {
        name,
        packets: delivered as u64,
        secs,
        pps: delivered as f64 / secs,
        queue_p50_us: q(rx_reg, "stage.queue_s", 0.50),
        queue_p99_us: q(rx_reg, "stage.queue_s", 0.99),
        handle_p50_us: q(rx_reg, "stage.handle_s", 0.50),
        handle_p99_us: q(rx_reg, "stage.handle_s", 0.99),
    };
    drop(h.shutdown());
    result
}

fn flood_pair(quick: bool, portable: bool) -> BenchResult {
    let adus = if quick { 20_000 } else { 100_000 };
    run_session("flood_pair", 2, adus, 64, None, portable, Duration::from_secs(120))
}

fn flood_mesh4(quick: bool, portable: bool) -> BenchResult {
    let adus = if quick { 6_000 } else { 30_000 };
    run_session("flood_mesh4", 4, adus, 64, None, portable, Duration::from_secs(120))
}

fn churn_repair(quick: bool, portable: bool) -> BenchResult {
    let adus = if quick { 200 } else { 600 };
    run_session(
        "churn_repair",
        2,
        adus,
        64,
        Some("loss=0.08"),
        portable,
        Duration::from_secs(120),
    )
}

/// Groups hosted (hub) / pair sessions run (baseline) by the fanout pair.
const FAN_GROUPS: u32 = 8;

fn fan_adus(quick: bool) -> u32 {
    if quick {
        1_500
    } else {
        6_000
    }
}

/// One hub, `FAN_GROUPS` groups, one receiver node per group: aggregate
/// delivered throughput of the consolidated multi-session host. Publishing
/// runs from one thread per group so every shard reactor is kept busy, the
/// way a loaded hub would be.
fn hub_fanout(quick: bool, portable: bool) -> BenchResult {
    let adus = fan_adus(quick);
    let mut hub_opts = HubOptions {
        shards: 4,
        ..HubOptions::default()
    };
    tune_batch(&mut hub_opts.batch, portable);
    let hub = Hub::spawn("127.0.0.1:0".parse().unwrap(), hub_opts).expect("bind hub");

    let mut regs = Vec::new();
    let mut receivers = Vec::new();
    for g in 1..=FAN_GROUPS {
        let reg = obs::MetricsRegistry::new();
        let mut o = NodeOptions::new(SourceId(2), GroupId(g), SrmConfig::fixed(2));
        o.metrics = Some(reg.clone());
        tune_batch(&mut o.batch, portable);
        o.initial_distances
            .push((SourceId(1), SimDuration::from_millis(10)));
        let node = Node::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Mode::Mesh {
                peers: vec![hub.local_addr()],
            },
            o,
        )
        .expect("bind fanout receiver");
        hub.create(
            GroupSpec {
                group: g,
                peers: vec![node.local_addr()],
                id: 1,
                members: 2,
                rate: None,
                burst: None,
                dist_ms: Some(10),
            },
            false,
        )
        .expect("create fanout group");
        regs.push(reg);
        receivers.push(node);
    }

    // 61-byte payloads ("xx…x #N"), matching the 64-byte flood floor.
    let text = "x".repeat(57);
    let start = Instant::now();
    let senders: Vec<_> = (1..=FAN_GROUPS)
        .map(|g| {
            let hub = hub.clone();
            let text = text.clone();
            std::thread::spawn(move || hub.send(g, &text, adus).expect("hub publishes"))
        })
        .collect();
    for s in senders {
        s.join().expect("fanout sender thread");
    }

    let want = (FAN_GROUPS * adus) as usize;
    let stop_at = start + Duration::from_secs(120);
    let mut delivered = 0usize;
    while delivered < want && Instant::now() < stop_at {
        for node in &receivers {
            delivered += node.take_delivered().len();
        }
        if delivered < want {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    if delivered < want {
        eprintln!(
            "live: WARNING hub_fanout: only {delivered}/{want} ADUs delivered within 120s; \
             rating what arrived"
        );
    }

    let st = hub.stats();
    assert_eq!(
        st.frames_attempted,
        st.frames_sent + st.send_errors,
        "hub frame accounting broke under load"
    );
    let q = |hist: &str, quant: f64| -> f64 {
        regs[0]
            .histogram(hist)
            .snapshot()
            .quantile(quant)
            .map(|s| s * 1e6)
            .unwrap_or(0.0)
    };
    let result = BenchResult {
        name: "hub_fanout",
        packets: delivered as u64,
        secs,
        pps: delivered as f64 / secs,
        queue_p50_us: q("stage.queue_s", 0.50),
        queue_p99_us: q("stage.queue_s", 0.99),
        handle_p50_us: q("stage.handle_s", 0.50),
        handle_p99_us: q("stage.handle_s", 0.99),
    };
    for node in receivers {
        drop(node.shutdown());
    }
    hub.shutdown();
    result
}

/// The fleet-of-processes null hypothesis for `hub_fanout`: the same
/// `FAN_GROUPS` sessions as independent single-session pair runtimes, run
/// concurrently, rated as one aggregate.
fn fanout_pairs8(quick: bool, portable: bool) -> BenchResult {
    let adus = fan_adus(quick) as usize;
    let regs: Vec<obs::MetricsRegistry> = (0..FAN_GROUPS)
        .map(|_| obs::MetricsRegistry::new())
        .collect();
    // Bind every pair before the clock starts — the hub bench creates its
    // groups outside the timed window too, so this stays apples-to-apples.
    let harnesses: Vec<Harness> = (1..=FAN_GROUPS)
        .map(|g| {
            let reg = regs[(g - 1) as usize].clone();
            let cfg = SrmConfig::fixed(2);
            Harness::loopback(2, GroupId(g), &cfg, |i, _addrs, o| {
                tune_batch(&mut o.batch, portable);
                seed_distances(2, o, SimDuration::from_millis(10));
                if i == 1 {
                    o.metrics = Some(reg.clone());
                }
            })
            .expect("bind fanout pair")
        })
        .collect();
    let start = Instant::now();
    let workers: Vec<_> = harnesses
        .into_iter()
        .map(|h| {
            std::thread::spawn(move || {
                let page = PageId::new(SourceId(1), 0);
                let payload = Bytes::from(vec![0x5Au8; 64]);
                let mut queued = 0usize;
                while queued < adus {
                    let burst = SEND_CHUNK.min(adus - queued);
                    let p = payload.clone();
                    h.nodes[0].exec(move |a, d| {
                        for _ in 0..burst {
                            a.send_data(d, page, p.clone());
                        }
                    });
                    queued += burst;
                }
                let stop_at = Instant::now() + Duration::from_secs(120);
                let mut delivered = 0usize;
                while delivered < adus && Instant::now() < stop_at {
                    delivered += h.nodes[1].take_delivered().len();
                    if delivered < adus {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                drop(h.shutdown());
                delivered
            })
        })
        .collect();
    let delivered: usize = workers
        .into_iter()
        .map(|w| w.join().expect("fanout pair thread"))
        .sum();
    let secs = start.elapsed().as_secs_f64();
    let want = adus * FAN_GROUPS as usize;
    if delivered < want {
        eprintln!(
            "live: WARNING fanout_pairs8: only {delivered}/{want} ADUs delivered within 120s; \
             rating what arrived"
        );
    }
    let q = |hist: &str, quant: f64| -> f64 {
        regs[0]
            .histogram(hist)
            .snapshot()
            .quantile(quant)
            .map(|s| s * 1e6)
            .unwrap_or(0.0)
    };
    BenchResult {
        name: "fanout_pairs8",
        packets: delivered as u64,
        secs,
        pps: delivered as f64 / secs,
        queue_p50_us: q("stage.queue_s", 0.50),
        queue_p99_us: q("stage.queue_s", 0.99),
        handle_p50_us: q("stage.handle_s", 0.50),
        handle_p99_us: q("stage.handle_s", 0.99),
    }
}

/// Best-of-`reps` on *throughput*: load spikes only ever push pps down,
/// so the maximum over repetitions is the robust estimator (quantiles ride
/// along from the winning repetition).
fn measure_best(reps: usize, quick: bool, portable: bool) -> Vec<BenchResult> {
    let mut best = measure(quick, portable);
    for _ in 1..reps.max(1) {
        for (b, g) in best.iter_mut().zip(measure(quick, portable)) {
            if g.pps > b.pps {
                *b = g;
            }
        }
    }
    best
}

fn measure(quick: bool, portable: bool) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for (name, f) in [
        ("flood_pair", flood_pair as fn(bool, bool) -> BenchResult),
        ("flood_mesh4", flood_mesh4),
        ("churn_repair", churn_repair),
        ("hub_fanout", hub_fanout),
        ("fanout_pairs8", fanout_pairs8),
    ] {
        eprintln!(
            "live: running {name} ({}{})...",
            if quick { "quick" } else { "full" },
            if portable { ", portable backend" } else { "" }
        );
        let r = f(quick, portable);
        eprintln!(
            "live: {name}: {:.0} pkts/s ({} pkts in {:.3}s; queue p50/p99 {:.1}/{:.1}µs, \
             handle p50/p99 {:.1}/{:.1}µs)",
            r.pps, r.packets, r.secs, r.queue_p50_us, r.queue_p99_us, r.handle_p50_us, r.handle_p99_us
        );
        out.push(r);
    }
    // The fanout pair exists to be compared: report the consolidation tax
    // whenever both sides were measured, and warn past the 2x acceptance
    // line (hub aggregate must stay >= 0.5x of the independent fleet).
    let find = |name: &str| out.iter().find(|b| b.name == name).map(|b| b.pps);
    if let (Some(hub), Some(pairs)) = (find("hub_fanout"), find("fanout_pairs8")) {
        let ratio = pairs / hub.max(f64::EPSILON);
        eprintln!(
            "live: hub_fanout consolidation tax: {:.2}x slower than fanout_pairs8 \
             ({hub:.0} vs {pairs:.0} pkts/s){}",
            ratio,
            if ratio > 2.0 {
                " — EXCEEDS the 2x budget"
            } else {
                ""
            }
        );
    }
    out
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn benches_to_json(benches: &[BenchResult]) -> Json {
    Json::Arr(
        benches
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(b.name.into())),
                    ("packets".into(), Json::Num(b.packets as f64)),
                    ("secs".into(), Json::Num(round3(b.secs))),
                    ("pps".into(), Json::Num(round1(b.pps))),
                    ("queue_p50_us".into(), Json::Num(round1(b.queue_p50_us))),
                    ("queue_p99_us".into(), Json::Num(round1(b.queue_p99_us))),
                    ("handle_p50_us".into(), Json::Num(round1(b.handle_p50_us))),
                    ("handle_p99_us".into(), Json::Num(round1(b.handle_p99_us))),
                ])
            })
            .collect(),
    )
}

fn report(benches: &[BenchResult], quick: bool, label: &str, baseline: Option<Json>) -> Json {
    let mut fields = vec![
        ("schema".into(), Json::Str("srm-livebench/1".into())),
        ("label".into(), Json::Str(label.into())),
        ("quick".into(), Json::Bool(quick)),
        ("benches".into(), benches_to_json(benches)),
    ];
    if let Some(b) = baseline {
        fields.push(("baseline_pre_pr".into(), b));
    }
    Json::Obj(fields)
}

/// Pull a baseline section out of an existing report: prefer its explicit
/// `baseline_pre_pr`, else treat its own `benches` as the baseline (the
/// first report written before the optimisation is exactly that).
fn extract_baseline(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    if let Some(b) = doc.get("baseline_pre_pr") {
        return Some(b.clone());
    }
    doc.get("benches").cloned()
}

fn check(against: &str, tolerance: f64, quick: bool) -> i32 {
    let text = match std::fs::read_to_string(against) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("live check: cannot read {against}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("live check: {against} is not valid JSON: {e}");
            return 1;
        }
    };
    if doc.get("schema").and_then(Json::as_str) != Some("srm-livebench/1") {
        eprintln!("live check: {against} missing schema srm-livebench/1");
        return 1;
    }
    let Some(pinned) = doc.get("benches").and_then(Json::as_arr) else {
        eprintln!("live check: {against} has no benches array");
        return 1;
    };
    // Best-of-5 on *throughput*: load spikes only ever push pps down, so
    // the maximum over repetitions is the robust estimator — a regression
    // fires only if every repetition is slow.
    let fresh = measure_best(5, quick, false);
    let mut failed = false;
    for f in &fresh {
        let Some(pin) = pinned
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some(f.name))
        else {
            eprintln!("live check: {} not pinned in {against} (skipping)", f.name);
            continue;
        };
        let Some(pin_pps) = pin.get("pps").and_then(Json::as_f64) else {
            eprintln!("live check: pinned {} has no pps", f.name);
            failed = true;
            continue;
        };
        let ratio = pin_pps / f.pps;
        if ratio > tolerance {
            eprintln!(
                "live check: REGRESSION {}: {:.0} pkts/s vs pinned {:.0} ({:.2}x slower > {}x budget)",
                f.name, f.pps, pin_pps, ratio, tolerance
            );
            failed = true;
        } else {
            eprintln!(
                "live check: ok {}: {:.0} pkts/s vs pinned {:.0} ({:.2}x)",
                f.name, f.pps, pin_pps, ratio
            );
        }
    }
    if failed {
        1
    } else {
        eprintln!("live check: all benchmarks within {tolerance}x of {against}");
        0
    }
}

/// Structural validation of a report file: schema tag, non-empty benches,
/// and every entry carrying the fields `check` would need. No measuring.
fn validate(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("live validate: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("live validate: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    if doc.get("schema").and_then(Json::as_str) != Some("srm-livebench/1") {
        eprintln!("live validate: {path} missing schema srm-livebench/1");
        return 1;
    }
    let Some(benches) = doc.get("benches").and_then(Json::as_arr) else {
        eprintln!("live validate: {path} has no benches array");
        return 1;
    };
    if benches.is_empty() {
        eprintln!("live validate: {path} benches array is empty");
        return 1;
    }
    for b in benches {
        let name = b.get("name").and_then(Json::as_str);
        if name.is_none()
            || b.get("pps").and_then(Json::as_f64).is_none()
            || b.get("packets").and_then(Json::as_f64).is_none()
            || b.get("secs").and_then(Json::as_f64).is_none()
        {
            eprintln!(
                "live validate: {path}: bench entry {:?} missing name/packets/secs/pps",
                name.unwrap_or("<unnamed>")
            );
            return 1;
        }
    }
    eprintln!("live validate: {path} ok ({} benches)", benches.len());
    0
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  live run [--quick] [--best N] [--out FILE] [--merge-baseline FILE] [--label S] [--portable]\n  live check --against FILE [--tolerance R] [--quick]\n  live validate FILE"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
    };
    let mut quick = false;
    let mut portable = false;
    let mut out: Option<String> = None;
    let mut merge: Option<String> = None;
    let mut against: Option<String> = None;
    let mut label = String::from("working-tree");
    let mut tolerance = 1.25f64;
    let mut best = 1usize;
    let mut file: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--portable" => portable = true,
            "--best" => {
                i += 1;
                best = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--merge-baseline" => {
                i += 1;
                merge = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--against" => {
                i += 1;
                against = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--label" => {
                i += 1;
                label = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            a if !a.starts_with('-') && cmd == "validate" && file.is_none() => {
                file = Some(a.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    match cmd {
        "run" => {
            let baseline = merge.as_deref().and_then(extract_baseline);
            let benches = measure_best(best, quick, portable);
            let doc = report(&benches, quick, &label, baseline);
            let text = doc.pretty();
            match out {
                Some(path) => {
                    std::fs::write(&path, format!("{text}\n")).expect("write report");
                    eprintln!("live: wrote {path}");
                }
                None => println!("{text}"),
            }
        }
        "check" => {
            let Some(against) = against else { usage() };
            std::process::exit(check(&against, tolerance, quick));
        }
        "validate" => {
            let Some(file) = file else { usage() };
            std::process::exit(validate(&file));
        }
        _ => usage(),
    }
}

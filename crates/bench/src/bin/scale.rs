//! The `scale` macro-benchmark: wall-clock measurement of the simulator
//! hot path at paper scale, distilled into `BENCH_4.json`.
//!
//! Three benchmarks, chosen to bracket the discrete-event hot path:
//!
//! - `flood_1000`: raw zero-protocol fan-out — one 256-byte multicast from
//!   the root of a 1000-node degree-4 tree to 200 members, repeated. This
//!   isolates `Simulator::{process_hop, cross_link, deliver}` and the event
//!   queue with no SRM logic on top.
//! - `fig4_1000_g50`: the Fig-4 unit of work (1000-node degree-4 tree,
//!   group size 50, fixed timers) — one full loss-recovery round per
//!   iteration, exactly what the paper's §V sweeps execute 20×6 times.
//! - `stretch_5000_g100`: a 5000-node stretch case (degree 4, G = 100)
//!   showing the headroom above the paper's largest published topology.
//!
//! Subcommands:
//!
//! ```text
//! scale run        [--quick] [--out FILE] [--merge-baseline FILE] [--label S]
//! scale check      --against FILE [--tolerance R] [--quick]
//! scale durability [--tolerance R] [--quick]
//! scale validate FILE
//! ```
//!
//! `run` measures and writes a JSON report (schema documented in
//! EXPERIMENTS.md). `--merge-baseline` carries the `baseline_pre_pr`
//! section of an existing report forward, so the committed `BENCH_4.json`
//! keeps its before/after pairing across refreshes. `check` re-measures
//! (best of five repetitions, so only a regression every repetition
//! reproduces can fire) and fails with exit 1 if any benchmark regressed
//! more than `tolerance` (default 1.25×) against the report's `benches`
//! section — the CI regression gate. `durability` is the WAL-overhead
//! guard: it runs the Fig-4 round with a durable store attached to every
//! member (in-memory backend, so pure CPU overhead: framing, CRC,
//! indexing) against the plain in-memory round, and fails if the ratio
//! exceeds `tolerance`. `validate` is the structural schema check with no
//! measuring.

use bytes::Bytes;
use netsim::generators::bounded_degree_tree;
use netsim::{GroupId, NodeId, SendOptions, SimTime, Simulator};
use srm::SrmConfig;
use srm_experiments::round::run_round;
use srm_experiments::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm_experiments::fig4;
use srm_sim::json::Json;
use std::time::Instant;

/// One measured benchmark.
struct BenchResult {
    name: &'static str,
    iters: u64,
    mean_ms: f64,
    events_per_sec: f64,
}

/// A sink application: counts deliveries, does nothing else.
struct Sink;
impl netsim::Application for Sink {
    fn on_packet(&mut self, _: &mut netsim::Ctx<'_>, _: &netsim::Packet) {}
    fn on_timer(&mut self, _: &mut netsim::Ctx<'_>, _: u64) {}
}

/// Raw fan-out: `iters` multicasts of a 256-byte payload across a
/// 1000-node tree with 200 members, one event-queue drain per packet.
fn flood_1000(quick: bool) -> BenchResult {
    let iters: u64 = if quick { 40 } else { 400 };
    let topo = bounded_degree_tree(1000, 4);
    let g = GroupId(1);
    let mut sim: Simulator<Sink> = Simulator::new(topo, 1);
    for i in (0..1000u32).step_by(5) {
        sim.install(NodeId(i), Sink);
        sim.join(NodeId(i), g);
    }
    let payload = Bytes::from(vec![0xA5u8; 256]);
    // Warm the routing caches so the measurement is the forwarding path.
    sim.send_from(NodeId(0), g, payload.clone(), SendOptions::default());
    sim.run_until_idle(SimTime::MAX);
    let ev0 = sim.stats.events;
    let start = Instant::now();
    for _ in 0..iters {
        sim.send_from(NodeId(0), g, payload.clone(), SendOptions::default());
        sim.run_until_idle(SimTime::MAX);
    }
    let dt = start.elapsed().as_secs_f64();
    BenchResult {
        name: "flood_1000",
        iters,
        mean_ms: dt * 1e3 / iters as f64,
        events_per_sec: (sim.stats.events - ev0) as f64 / dt,
    }
}

/// One Fig-4 loss-recovery round per iteration (1000 nodes, G = 50).
fn fig4_round(quick: bool) -> BenchResult {
    let iters: u64 = if quick { 12 } else { 40 };
    let mut s = fig4::spec(50, 1, SrmConfig::fixed(50)).build();
    // Warm-up round outside the timed window.
    run_round(&mut s, 100_000.0);
    let ev0 = s.sim.stats.events;
    let start = Instant::now();
    for _ in 0..iters {
        let r = run_round(&mut s, 100_000.0);
        assert!(r.all_recovered, "fig4 bench round failed to recover");
    }
    let dt = start.elapsed().as_secs_f64();
    BenchResult {
        name: "fig4_1000_g50",
        iters,
        mean_ms: dt * 1e3 / iters as f64,
        events_per_sec: (s.sim.stats.events - ev0) as f64 / dt,
    }
}

/// The 5000-node stretch case: one recovery round per iteration.
fn stretch_5000(quick: bool) -> BenchResult {
    let iters: u64 = if quick { 6 } else { 30 };
    let spec = ScenarioSpec {
        topo: TopoSpec::BoundedTree { n: 5000, degree: 4 },
        group_size: Some(100),
        drop: DropSpec::RandomTreeLink,
        cfg: SrmConfig::fixed(100),
        seed: 0x5000_0001,
        timer_seed: None,
    };
    let mut s = spec.build();
    run_round(&mut s, 100_000.0);
    let ev0 = s.sim.stats.events;
    let start = Instant::now();
    for _ in 0..iters {
        let r = run_round(&mut s, 100_000.0);
        assert!(r.all_recovered, "5000-node bench round failed to recover");
    }
    let dt = start.elapsed().as_secs_f64();
    BenchResult {
        name: "stretch_5000_g100",
        iters,
        mean_ms: dt * 1e3 / iters as f64,
        events_per_sec: (s.sim.stats.events - ev0) as f64 / dt,
    }
}

fn measure(quick: bool) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for (name, f) in [
        ("flood_1000", flood_1000 as fn(bool) -> BenchResult),
        ("fig4_1000_g50", fig4_round),
        ("stretch_5000_g100", stretch_5000),
    ] {
        eprintln!("scale: running {name} ({})...", if quick { "quick" } else { "full" });
        let r = f(quick);
        eprintln!(
            "scale: {name}: {:.3} ms/iter over {} iters ({:.0} events/s)",
            r.mean_ms, r.iters, r.events_per_sec
        );
        out.push(r);
    }
    out
}

fn benches_to_json(benches: &[BenchResult]) -> Json {
    Json::Arr(
        benches
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(b.name.into())),
                    ("iters".into(), Json::Num(b.iters as f64)),
                    ("mean_ms".into(), Json::Num(round3(b.mean_ms))),
                    ("events_per_sec".into(), Json::Num(round3(b.events_per_sec))),
                ])
            })
            .collect(),
    )
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn report(benches: &[BenchResult], quick: bool, label: &str, baseline: Option<Json>) -> Json {
    let mut fields = vec![
        ("schema".into(), Json::Str("srm-bench/1".into())),
        ("label".into(), Json::Str(label.into())),
        ("quick".into(), Json::Bool(quick)),
        ("benches".into(), benches_to_json(benches)),
    ];
    if let Some(b) = baseline {
        fields.push(("baseline_pre_pr".into(), b));
    }
    Json::Obj(fields)
}

/// Pull a baseline section out of an existing report: prefer its explicit
/// `baseline_pre_pr`, else treat its own `benches` as the baseline (the
/// first report written before the optimisation is exactly that).
fn extract_baseline(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    if let Some(b) = doc.get("baseline_pre_pr") {
        return Some(b.clone());
    }
    doc.get("benches").cloned()
}

fn check(against: &str, tolerance: f64, quick: bool) -> i32 {
    let text = match std::fs::read_to_string(against) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scale check: cannot read {against}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scale check: {against} is not valid JSON: {e}");
            return 1;
        }
    };
    if doc.get("schema").and_then(Json::as_str) != Some("srm-bench/1") {
        eprintln!("scale check: {against} missing schema srm-bench/1");
        return 1;
    }
    let Some(pinned) = doc.get("benches").and_then(Json::as_arr) else {
        eprintln!("scale check: {against} has no benches array");
        return 1;
    };
    // Best-of-5: wall-clock means are right-skewed (scheduler noise,
    // page faults), so the minimum over repetitions is the robust
    // estimator — a regression only fires if every repetition is slow.
    let mut fresh = measure(quick);
    for _ in 0..4 {
        for (f, g) in fresh.iter_mut().zip(measure(quick)) {
            if g.mean_ms < f.mean_ms {
                *f = g;
            }
        }
    }
    let mut failed = false;
    for f in &fresh {
        let Some(pin) = pinned.iter().find(|p| {
            p.get("name").and_then(Json::as_str) == Some(f.name)
        }) else {
            eprintln!("scale check: {} not pinned in {against} (skipping)", f.name);
            continue;
        };
        let Some(pin_ms) = pin.get("mean_ms").and_then(Json::as_f64) else {
            eprintln!("scale check: pinned {} has no mean_ms", f.name);
            failed = true;
            continue;
        };
        let ratio = f.mean_ms / pin_ms;
        if ratio > tolerance {
            eprintln!(
                "scale check: REGRESSION {}: {:.3} ms/iter vs pinned {:.3} ({}x > {}x budget)",
                f.name,
                f.mean_ms,
                pin_ms,
                fmt2(ratio),
                tolerance
            );
            failed = true;
        } else {
            eprintln!(
                "scale check: ok {}: {:.3} ms/iter vs pinned {:.3} ({}x)",
                f.name,
                f.mean_ms,
                pin_ms,
                fmt2(ratio)
            );
        }
    }
    if failed {
        1
    } else {
        eprintln!("scale check: all benchmarks within {tolerance}x of {against}");
        0
    }
}

fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// One timed batch of Fig-4 recovery rounds, optionally with a durable
/// store (in-memory backend, default WAL tuning) attached to every member
/// so each delivered ADU takes the encode + CRC + index append path.
fn fig4_round_ms(durable: bool, iters: u64) -> f64 {
    let mut s = fig4::spec(50, 1, SrmConfig::fixed(50)).build();
    if durable {
        for m in s.members.clone() {
            s.sim.app_mut(m).expect("installed").attach_durable_store(
                Box::new(srm_store::DurableStore::new(
                    Box::new(srm_store::MemBackend::new()),
                    srm_store::StoreConfig::default(),
                )),
                None,
            );
        }
    }
    // Warm-up round outside the timed window.
    run_round(&mut s, 100_000.0);
    let start = Instant::now();
    for _ in 0..iters {
        let r = run_round(&mut s, 100_000.0);
        assert!(r.all_recovered, "fig4 durability round failed to recover");
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// The WAL-append overhead gate: durability-on Fig-4 rounds must stay
/// within `tolerance`× of durability-off. Interleaved best-of-3 per mode
/// (the same skew argument as `check`).
fn durability(tolerance: f64, quick: bool) -> i32 {
    let iters: u64 = if quick { 8 } else { 24 };
    let mut plain = f64::INFINITY;
    let mut durable = f64::INFINITY;
    for rep in 0..3 {
        eprintln!("scale durability: repetition {}/3...", rep + 1);
        plain = plain.min(fig4_round_ms(false, iters));
        durable = durable.min(fig4_round_ms(true, iters));
    }
    let ratio = durable / plain;
    if ratio > tolerance {
        eprintln!(
            "scale durability: REGRESSION fig4 round: {:.3} ms durable vs {:.3} ms plain ({}x > {}x budget)",
            durable, plain, fmt2(ratio), tolerance
        );
        1
    } else {
        eprintln!(
            "scale durability: ok — fig4 round {:.3} ms durable vs {:.3} ms plain ({}x ≤ {}x budget)",
            durable, plain, fmt2(ratio), tolerance
        );
        0
    }
}

/// Structural validation of a report file: schema tag, non-empty benches,
/// and every entry carrying the fields `check` would need. No measuring.
fn validate(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scale validate: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scale validate: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    if doc.get("schema").and_then(Json::as_str) != Some("srm-bench/1") {
        eprintln!("scale validate: {path} missing schema srm-bench/1");
        return 1;
    }
    let Some(benches) = doc.get("benches").and_then(Json::as_arr) else {
        eprintln!("scale validate: {path} has no benches array");
        return 1;
    };
    if benches.is_empty() {
        eprintln!("scale validate: {path} benches array is empty");
        return 1;
    }
    for b in benches {
        let name = b.get("name").and_then(Json::as_str);
        if name.is_none()
            || b.get("mean_ms").and_then(Json::as_f64).is_none()
            || b.get("iters").and_then(Json::as_f64).is_none()
            || b.get("events_per_sec").and_then(Json::as_f64).is_none()
        {
            eprintln!(
                "scale validate: {path}: bench entry {:?} missing name/iters/mean_ms/events_per_sec",
                name.unwrap_or("<unnamed>")
            );
            return 1;
        }
    }
    eprintln!("scale validate: {path} ok ({} benches)", benches.len());
    0
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  scale run [--quick] [--out FILE] [--merge-baseline FILE] [--label S]\n  scale check --against FILE [--tolerance R] [--quick]\n  scale durability [--tolerance R] [--quick]\n  scale validate FILE"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
    };
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut merge: Option<String> = None;
    let mut against: Option<String> = None;
    let mut label = String::from("working-tree");
    let mut tolerance = 1.25f64;
    let mut file: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--merge-baseline" => {
                i += 1;
                merge = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--against" => {
                i += 1;
                against = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--label" => {
                i += 1;
                label = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            a if !a.starts_with('-') && cmd == "validate" && file.is_none() => {
                file = Some(a.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    match cmd {
        "run" => {
            let baseline = merge.as_deref().and_then(extract_baseline);
            let benches = measure(quick);
            let doc = report(&benches, quick, &label, baseline);
            let text = doc.pretty();
            match out {
                Some(path) => {
                    std::fs::write(&path, format!("{text}\n")).expect("write report");
                    eprintln!("scale: wrote {path}");
                }
                None => println!("{text}"),
            }
        }
        "check" => {
            let Some(against) = against else { usage() };
            std::process::exit(check(&against, tolerance, quick));
        }
        "durability" => {
            std::process::exit(durability(tolerance, quick));
        }
        "validate" => {
            let Some(file) = file else { usage() };
            std::process::exit(validate(&file));
        }
        _ => usage(),
    }
}

//! # srm-bench
//!
//! Criterion benchmark harness for the SRM reproduction. The crate has no
//! library code of its own; see the `benches/` targets:
//!
//! - `figures`: one benchmark per reproduced paper figure (the unit of
//!   work of each evaluation scenario);
//! - `substrate`: microbenchmarks of the simulator and protocol substrates
//!   (event queue, routing, Prüfer generation, wire codecs, token bucket);
//! - `ablation`: the design-choice ablations DESIGN.md calls out (timer
//!   scaling, randomization width, backoff factor, adaptation, recovery
//!   scope, hold-down).

//! A small, dependency-free JSON tree: parser, pretty printer, and typed
//! accessors.
//!
//! Replaces `serde_json` for the scenario schema so the workspace builds
//! without registry access. Strictness matches what the schema needs:
//! full JSON syntax on input (objects, arrays, strings with escapes,
//! numbers, booleans, null), insertion-ordered objects, and `f64` numbers.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A syntax error with its byte offset.
#[derive(Clone, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// The object's entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_num(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) => {
                if v.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    e.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Integers print without a fraction; everything else uses shortest-`{}`.
fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the schema;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so it's valid).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let v = Json::parse(
            r#"{"a": [1, -2.5, 1e3], "b": "x\"\\\nA", "c": true, "d": null, "e": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"\\\nA"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "not json", "{", "[1,]", "{\"a\"}", "{\"a\":1,}", "1 2", "\"x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_roundtrips() {
        let src = r#"{"topology": {"kind": "chain", "n": 12}, "list": [1, 2], "f": 2.25, "s": "hi", "empty": [], "flag": false}"#;
        let v = Json::parse(src).unwrap();
        let again = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(-7.0).pretty(), "-7");
        assert_eq!(Json::Num(2.5).pretty(), "2.5");
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}

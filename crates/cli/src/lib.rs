//! # srm-sim — scenario-driven SRM simulation
//!
//! Describe a topology, session, loss process, and workload in a JSON file
//! (see `scenarios/` at the repository root) and run it:
//!
//! ```text
//! srm-sim scenarios/lossy_tree.json
//! srm-sim --json scenarios/fec_stream.json   # machine-readable report
//! srm-sim --trace out.jsonl scenarios/lossy_tree.json  # episode timeline
//! ```
//!
//! The schema lives in [`spec`], the executor and report in [`run()`](run());
//! `--trace` additionally records every member's recovery-episode events
//! (via [`run_with_trace`]) and writes them as JSONL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod run;
pub mod spec;

pub use run::{run, run_with_trace, Report, RunError};
pub use spec::Scenario;

//! CLI entry point for `srm-sim`.

use srm_sim::{run, run_with_trace, Scenario};

const USAGE: &str = "usage: srm-sim [--json] [--trace FILE] <scenario.json>...";

fn main() {
    let mut json_out = false;
    let mut trace_out: Option<String> = None;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_out = true,
            "--trace" => {
                trace_out = args.next();
                if trace_out.is_none() {
                    eprintln!("--trace requires a file argument");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            }
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return;
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    for f in files {
        let text = match std::fs::read_to_string(&f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{f}: {e}");
                std::process::exit(1);
            }
        };
        let scenario = match Scenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{f}: invalid scenario: {e}");
                std::process::exit(1);
            }
        };
        let report = if let Some(path) = &trace_out {
            match run_with_trace(&scenario) {
                Ok((report, timeline)) => {
                    if let Err(e) = std::fs::write(path, timeline.to_jsonl()) {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("trace: wrote {} events to {path}", timeline.len());
                    report
                }
                Err(e) => {
                    eprintln!("{f}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            match run(&scenario) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("{f}: {e}");
                    std::process::exit(1);
                }
            }
        };
        if json_out {
            println!("{}", report.to_json());
        } else {
            println!("== {f} ==");
            print!("{}", report.render());
        }
    }
}

//! CLI entry point for `srm-sim`.

use srm_sim::{run, Scenario};

fn main() {
    let mut json_out = false;
    let mut files = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json_out = true,
            "-h" | "--help" => {
                eprintln!("usage: srm-sim [--json] <scenario.json>...");
                return;
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: srm-sim [--json] <scenario.json>...");
        std::process::exit(2);
    }
    for f in files {
        let text = match std::fs::read_to_string(&f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{f}: {e}");
                std::process::exit(1);
            }
        };
        let scenario = match Scenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{f}: invalid scenario: {e}");
                std::process::exit(1);
            }
        };
        match run(&scenario) {
            Ok(report) => {
                if json_out {
                    println!("{}", report.to_json());
                } else {
                    println!("== {f} ==");
                    print!("{}", report.render());
                }
            }
            Err(e) => {
                eprintln!("{f}: {e}");
                std::process::exit(1);
            }
        }
    }
}

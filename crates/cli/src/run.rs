//! Scenario execution and reporting.

use crate::spec::{
    ConfigSpec, LossSpec, MembersSpec, Scenario, ScopeSpec, TimerPreset, TimersSpec, TopologySpec,
};
use bytes::Bytes;
use netsim::effects::RandomEffects;
use netsim::generators;
use netsim::loss::{BernoulliLoss, NoLoss, ScriptedDrop};
use netsim::routing::SpTree;
use netsim::{flow, GroupId, NodeId, SimDuration, Simulator, Topology};
use crate::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srm::config::RecoveryGroupConfig;
use srm::{
    FecConfig, HierarchyConfig, PageId, RateLimit, RecoveryScope, SourceId, SrmAgent, SrmConfig,
};

/// The session multicast group.
const GROUP: GroupId = GroupId(1);

/// Errors while preparing a scenario.
#[derive(Debug)]
pub enum RunError {
    /// A referenced node id does not exist in the topology.
    BadNode(u32),
    /// No members were selected.
    NoMembers,
    /// The scripted loss references a non-adjacent node pair.
    NoSuchLink(u32, u32),
    /// The session never settled within the allotted time.
    DidNotSettle,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::BadNode(n) => write!(f, "node {n} does not exist"),
            RunError::NoMembers => write!(f, "scenario selects no members"),
            RunError::NoSuchLink(a, b) => write!(f, "no link between {a} and {b}"),
            RunError::DidNotSettle => write!(f, "session did not quiesce in settle_secs"),
        }
    }
}

impl std::error::Error for RunError {}

/// Per-member outcome.
#[derive(Clone, Debug)]
pub struct MemberReport {
    /// Node id.
    pub node: u32,
    /// ADUs held at the end.
    pub adus_held: usize,
    /// Requests this member multicast.
    pub requests_sent: u64,
    /// Repairs this member multicast.
    pub repairs_sent: u64,
    /// ADUs reconstructed locally from FEC parity.
    pub fec_recoveries: u64,
    /// Whether every detected loss was recovered.
    pub all_recovered: bool,
}

/// Whole-run outcome.
#[derive(Clone, Debug)]
pub struct Report {
    /// Member count.
    pub members: usize,
    /// The data source node.
    pub source: u32,
    /// ADUs the workload originated.
    pub adus_sent: u32,
    /// Receivers holding the complete stream at the end.
    pub complete_receivers: usize,
    /// Totals: requests / repairs / session messages multicast.
    pub total_requests: u64,
    /// Total repairs.
    pub total_repairs: u64,
    /// Total session messages.
    pub total_sessions: u64,
    /// Link crossings by traffic class (data, request, repair, session).
    pub hops: HopsReport,
    /// Per-member details.
    pub per_member: Vec<MemberReport>,
    /// Final simulated time in seconds.
    pub sim_seconds: f64,
    /// Events processed.
    pub events: u64,
}

/// Link-crossing totals by traffic class.
#[derive(Clone, Debug)]
pub struct HopsReport {
    /// Original data.
    pub data: u64,
    /// Requests.
    pub requests: u64,
    /// Repairs.
    pub repairs: u64,
    /// Session messages.
    pub sessions: u64,
    /// FEC parity.
    pub parity: u64,
}

fn build_topology(spec: &TopologySpec, rng: &mut StdRng) -> Topology {
    match *spec {
        TopologySpec::Chain { n } => generators::chain(n),
        TopologySpec::Star { leaves } => generators::star(leaves),
        TopologySpec::BoundedTree { n, degree } => generators::bounded_degree_tree(n, degree),
        TopologySpec::RandomTree { n } => generators::random_labeled_tree(n, rng),
        TopologySpec::RandomGraph { n, m } => generators::random_connected_graph(n, m, rng),
    }
}

fn build_config(spec: &ConfigSpec, g: usize) -> SrmConfig {
    let mut cfg = match spec.timers {
        TimersSpec::Preset(TimerPreset::Fixed) => SrmConfig::fixed(g),
        TimersSpec::Preset(TimerPreset::Adaptive) => SrmConfig::adaptive(g),
        TimersSpec::Preset(TimerPreset::Wb159) => SrmConfig {
            fixed_intervals: Some(srm::config::FixedIntervals::wb159()),
            ..SrmConfig::default()
        },
        TimersSpec::Explicit { c1, c2, d1, d2 } => SrmConfig {
            timers: srm::TimerParams { c1, c2, d1, d2 },
            ..SrmConfig::default()
        },
    };
    cfg.scope = match spec.scope {
        ScopeSpec::Global => RecoveryScope::Global,
        ScopeSpec::Ttl { ttl } => RecoveryScope::Ttl(ttl),
        ScopeSpec::Admin => RecoveryScope::Admin,
    };
    if spec.fec_k > 0 {
        cfg.fec = Some(FecConfig { k: spec.fec_k });
    }
    if spec.recovery_group_ttl > 0 {
        cfg.recovery_groups = Some(RecoveryGroupConfig {
            invite_ttl: spec.recovery_group_ttl,
            min_losses: 2,
        });
    }
    if spec.hierarchy_ttl > 0 {
        cfg.session_hierarchy = Some(HierarchyConfig {
            local_ttl: spec.hierarchy_ttl,
            ..HierarchyConfig::default()
        });
    }
    if spec.rate_limit_bps > 0.0 {
        cfg.rate_limit = Some(RateLimit {
            bytes_per_sec: spec.rate_limit_bps,
            burst_bytes: spec.rate_limit_bps, // one second of burst
        });
    }
    cfg
}

/// Execute a scenario and produce its [`Report`].
pub fn run(scenario: &Scenario) -> Result<Report, RunError> {
    run_inner(scenario, false).map(|(r, _)| r)
}

/// Execute a scenario with recovery-episode tracing enabled, producing both
/// the [`Report`] and the merged per-member event [`obs::Timeline`].
/// Tracing only records — it never perturbs timers or RNG draws — so the
/// report is identical to an untraced [`run`].
pub fn run_with_trace(scenario: &Scenario) -> Result<(Report, obs::Timeline), RunError> {
    run_inner(scenario, true).map(|(r, tl)| (r, tl.expect("traced run yields a timeline")))
}

fn run_inner(
    scenario: &Scenario,
    traced: bool,
) -> Result<(Report, Option<obs::Timeline>), RunError> {
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let topo = build_topology(&scenario.topology, &mut rng);
    let n = topo.num_nodes() as u32;

    // Membership.
    let members: Vec<NodeId> = match &scenario.members {
        MembersSpec::List(ids) => {
            for &id in ids {
                if id >= n {
                    return Err(RunError::BadNode(id));
                }
            }
            let mut v: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        MembersSpec::Random { random } => generators::random_members(&topo, *random, &mut rng),
        MembersSpec::All(_) => match scenario.topology {
            TopologySpec::Star { leaves } => (1..=leaves as u32).map(NodeId).collect(),
            _ => topo.nodes().collect(),
        },
    };
    if members.is_empty() {
        return Err(RunError::NoMembers);
    }
    let source = match scenario.source {
        Some(s) => {
            if s >= n {
                return Err(RunError::BadNode(s));
            }
            NodeId(s)
        }
        None => members[0],
    };

    // Loss model (resolve node pairs to links first).
    let loss: Box<dyn netsim::loss::LossModel> = match &scenario.loss {
        LossSpec::None => Box::new(NoLoss),
        LossSpec::Bernoulli { p } => Box::new(BernoulliLoss::everywhere(*p, scenario.seed ^ 0x10)),
        LossSpec::Scripted { a, b, ordinals } => {
            let link = topo
                .link_between(NodeId(*a), NodeId(*b))
                .ok_or(RunError::NoSuchLink(*a, *b))?;
            Box::new(ScriptedDrop::new(
                ordinals.iter().map(|&o| (link, o)).collect(),
            ))
        }
    };

    // Agents, with pre-warmed distances.
    let cfg = build_config(&scenario.config, members.len());
    let mut sim = Simulator::new(topo, scenario.seed ^ 0x5eed);
    let page = PageId::new(SourceId(source.0 as u64), 0);
    let trees: Vec<(NodeId, SpTree)> = members
        .iter()
        .map(|&m| (m, SpTree::compute(sim.topology(), m)))
        .collect();
    for &m in &members {
        let mut a = SrmAgent::new(SourceId(m.0 as u64), GROUP, cfg.clone());
        a.session_enabled = scenario.config.session_messages;
        a.set_current_page(page);
        for (o, t) in &trees {
            if *o != m {
                a.distances_mut()
                    .set_distance(SourceId(o.0 as u64), t.distance(m));
            }
        }
        sim.install(m, a);
        sim.join(m, GROUP);
    }
    sim.set_loss_model(loss);
    if traced {
        srm::enable_tracing(&mut sim);
    }
    if scenario.effects.duplication > 0.0 || scenario.effects.jitter_secs > 0.0 {
        sim.set_channel_effects(Box::new(RandomEffects::new(
            scenario.effects.duplication,
            SimDuration::from_secs_f64(scenario.effects.jitter_secs),
            scenario.seed ^ 0x20,
        )));
    }

    // Workload.
    let w = &scenario.workload;
    for k in 0..w.adus {
        sim.exec(source, |a, ctx| {
            a.send_data(ctx, page, Bytes::from(vec![(k % 251) as u8; w.payload_bytes]));
        });
        sim.run_until(sim.now() + SimDuration::from_secs_f64(w.interval_secs));
    }
    // Settle.
    let deadline = sim.now() + SimDuration::from_secs_f64(scenario.settle_secs);
    if scenario.config.session_messages {
        sim.run_until(deadline);
    } else if !sim.run_until_idle(deadline) {
        return Err(RunError::DidNotSettle);
    }

    // Report.
    let mut per_member = Vec::new();
    let mut complete = 0;
    let (mut tr, mut tp, mut ts) = (0u64, 0u64, 0u64);
    for &m in &members {
        let a = sim.app(m).unwrap();
        let held = a.store().len();
        if m != source && held as u32 >= w.adus {
            complete += 1;
        }
        tr += a.metrics.requests_sent;
        tp += a.metrics.repairs_sent;
        ts += a.metrics.session_sent;
        per_member.push(MemberReport {
            node: m.0,
            adus_held: held,
            requests_sent: a.metrics.requests_sent,
            repairs_sent: a.metrics.repairs_sent,
            fec_recoveries: a.fec_recoveries,
            all_recovered: a.metrics.all_recovered(),
        });
    }
    let timeline = traced.then(|| srm::harvest_timeline(&mut sim, Vec::new()));
    let report = Report {
        members: members.len(),
        source: source.0,
        adus_sent: w.adus,
        complete_receivers: complete,
        total_requests: tr,
        total_repairs: tp,
        total_sessions: ts,
        hops: HopsReport {
            data: sim.stats.hops_for(flow::DATA),
            requests: sim.stats.hops_for(flow::REQUEST),
            repairs: sim.stats.hops_for(flow::REPAIR),
            sessions: sim.stats.hops_for(flow::SESSION),
            parity: sim.stats.hops_for(flow::PARITY),
        },
        per_member,
        sim_seconds: sim.now().as_secs_f64(),
        events: sim.stats.events,
    };
    Ok((report, timeline))
}

impl Report {
    /// Render as a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        let _ = writeln!(
            s,
            "session: {} members, source n{}, {} ADUs sent",
            self.members, self.source, self.adus_sent
        );
        let _ = writeln!(
            s,
            "outcome: {}/{} receivers complete; {} requests, {} repairs, {} session msgs",
            self.complete_receivers,
            self.members - 1,
            self.total_requests,
            self.total_repairs,
            self.total_sessions
        );
        let _ = writeln!(
            s,
            "bandwidth (link crossings): data {} | requests {} | repairs {} | sessions {} | parity {}",
            self.hops.data, self.hops.requests, self.hops.repairs, self.hops.sessions, self.hops.parity
        );
        let _ = writeln!(
            s,
            "simulated {:.1}s, {} events",
            self.sim_seconds, self.events
        );
        s
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        let num = |n: f64| Json::Num(n);
        let per_member: Vec<Json> = self
            .per_member
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("node".to_string(), num(m.node as f64)),
                    ("adus_held".to_string(), num(m.adus_held as f64)),
                    ("requests_sent".to_string(), num(m.requests_sent as f64)),
                    ("repairs_sent".to_string(), num(m.repairs_sent as f64)),
                    ("fec_recoveries".to_string(), num(m.fec_recoveries as f64)),
                    ("all_recovered".to_string(), Json::Bool(m.all_recovered)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("members".to_string(), num(self.members as f64)),
            ("source".to_string(), num(self.source as f64)),
            ("adus_sent".to_string(), num(self.adus_sent as f64)),
            (
                "complete_receivers".to_string(),
                num(self.complete_receivers as f64),
            ),
            ("total_requests".to_string(), num(self.total_requests as f64)),
            ("total_repairs".to_string(), num(self.total_repairs as f64)),
            ("total_sessions".to_string(), num(self.total_sessions as f64)),
            (
                "hops".to_string(),
                Json::Obj(vec![
                    ("data".to_string(), num(self.hops.data as f64)),
                    ("requests".to_string(), num(self.hops.requests as f64)),
                    ("repairs".to_string(), num(self.hops.repairs as f64)),
                    ("sessions".to_string(), num(self.hops.sessions as f64)),
                    ("parity".to_string(), num(self.hops.parity as f64)),
                ]),
            ),
            ("per_member".to_string(), Json::Arr(per_member)),
            ("sim_seconds".to_string(), num(self.sim_seconds)),
            ("events".to_string(), num(self.events as f64)),
        ])
        .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn base() -> Scenario {
        Scenario::from_json(
            r#"{
                "topology": {"kind": "chain", "n": 8},
                "members": "all",
                "config": {"session_messages": false},
                "loss": {"kind": "scripted", "a": 3, "b": 4, "ordinals": [1]},
                "settle_secs": 100000
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn chain_scenario_runs_and_recovers() {
        let r = run(&base()).unwrap();
        assert_eq!(r.members, 8);
        assert_eq!(r.complete_receivers, 7);
        assert!(r.total_requests >= 1);
        assert!(r.total_repairs >= 1);
        assert!(r.per_member.iter().all(|m| m.all_recovered));
    }

    #[test]
    fn fec_scenario_avoids_requests() {
        let mut sc = base();
        sc.config.fec_k = 5;
        sc.workload = WorkloadSpec {
            adus: 5,
            interval_secs: 2.0,
            payload_bytes: 32,
        };
        // One loss inside the 5-ADU block; drop ordinal 2 (the 2nd data
        // crossing on that link).
        sc.loss = LossSpec::Scripted {
            a: 3,
            b: 4,
            ordinals: vec![2],
        };
        let r = run(&sc).unwrap();
        assert_eq!(r.complete_receivers, 7);
        assert_eq!(r.total_requests, 0, "parity reconstruction preempted recovery");
        assert!(r.per_member.iter().any(|m| m.fec_recoveries > 0));
    }

    #[test]
    fn bad_references_are_reported() {
        let mut sc = base();
        sc.source = Some(99);
        assert!(matches!(run(&sc), Err(RunError::BadNode(99))));
        let mut sc = base();
        sc.loss = LossSpec::Scripted {
            a: 0,
            b: 5,
            ordinals: vec![1],
        };
        assert!(matches!(run(&sc), Err(RunError::NoSuchLink(0, 5))));
        let mut sc = base();
        sc.members = MembersSpec::List(vec![]);
        assert!(matches!(run(&sc), Err(RunError::NoMembers)));
    }

    #[test]
    fn traced_run_matches_untraced_and_yields_events() {
        let plain = run(&base()).unwrap();
        let (traced, tl) = run_with_trace(&base()).unwrap();
        // Tracing is observation-only: the protocol outcome is unchanged.
        assert_eq!(plain.total_requests, traced.total_requests);
        assert_eq!(plain.total_repairs, traced.total_repairs);
        assert_eq!(plain.events, traced.events);
        assert_eq!(plain.sim_seconds, traced.sim_seconds);
        // The dropped ADU produced a recovery episode worth of events.
        assert!(!tl.is_empty());
        assert!(tl.to_jsonl().contains("\"ev\":\"request_sent\""));
        assert!(tl.chains().iter().any(|c| c.recovered_at.is_some()));
    }

    #[test]
    fn report_serializes() {
        let r = run(&base()).unwrap();
        let js = r.to_json();
        assert!(js.contains("complete_receivers"));
        assert!(r.render().contains("receivers complete"));
    }
}

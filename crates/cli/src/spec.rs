//! The JSON scenario schema for `srm-sim`.
//!
//! A scenario file describes a topology, a session membership, an SRM
//! configuration, a loss process, and a workload; [`crate::run()`](crate::run()) executes
//! it and reports traffic and recovery statistics.

use serde::{Deserialize, Serialize};

/// Topology description.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TopologySpec {
    /// A chain of `n` nodes.
    Chain {
        /// Node count.
        n: usize,
    },
    /// A star with `leaves` leaf nodes and a non-member hub (node 0).
    Star {
        /// Leaf count.
        leaves: usize,
    },
    /// A balanced bounded-degree tree.
    BoundedTree {
        /// Node count.
        n: usize,
        /// Interior degree.
        degree: usize,
    },
    /// A uniformly random labeled tree.
    RandomTree {
        /// Node count.
        n: usize,
    },
    /// A connected random graph.
    RandomGraph {
        /// Node count.
        n: usize,
        /// Edge count (≥ n−1).
        m: usize,
    },
}

/// Which nodes join the session.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", untagged)]
pub enum MembersSpec {
    /// Explicit node ids.
    List(Vec<u32>),
    /// `{"random": k}`: k members chosen uniformly.
    Random {
        /// Member count.
        random: usize,
    },
    /// The string "all": every node joins.
    All(AllTag),
}

/// The literal string "all".
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case")]
pub enum AllTag {
    /// Every node is a member.
    All,
}

/// Timer parameter selection.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case", untagged)]
pub enum TimersSpec {
    /// `"fixed"`: the paper's C1=D1=2, C2=D2=√G.
    Preset(TimerPreset),
    /// Explicit constants.
    Explicit {
        /// Request interval start multiplier.
        c1: f64,
        /// Request interval width multiplier.
        c2: f64,
        /// Repair interval start multiplier.
        d1: f64,
        /// Repair interval width multiplier.
        d2: f64,
    },
}

/// Named timer presets.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case")]
pub enum TimerPreset {
    /// C1=D1=2, C2=D2=√G (Section V).
    Fixed,
    /// The Section VII-A adaptive algorithm (backoff ×3).
    Adaptive,
    /// wb 1.59's fixed millisecond intervals.
    Wb159,
}

/// Recovery scope selection.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "snake_case")]
pub enum ScopeSpec {
    /// Global recovery (default).
    Global,
    /// TTL-scoped with two-step repairs.
    Ttl {
        /// Initial request TTL.
        ttl: u8,
    },
    /// Administratively scoped.
    Admin,
}

/// Protocol configuration.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(default)]
pub struct ConfigSpec {
    /// Timer selection.
    pub timers: TimersSpec,
    /// Recovery scope.
    pub scope: ScopeSpec,
    /// FEC block size (`0` = off).
    pub fec_k: u8,
    /// Enable Section VII-B2 recovery groups with this invite TTL
    /// (`0` = off).
    pub recovery_group_ttl: u8,
    /// Enable Section IX-A hierarchical session messages with this local
    /// TTL (`0` = off).
    pub hierarchy_ttl: u8,
    /// Periodic session messages on/off.
    pub session_messages: bool,
    /// Token-bucket send limit in bytes/second (`0` = unlimited).
    pub rate_limit_bps: f64,
}

impl Default for ConfigSpec {
    fn default() -> Self {
        ConfigSpec {
            timers: TimersSpec::Preset(TimerPreset::Fixed),
            scope: ScopeSpec::Global,
            fec_k: 0,
            recovery_group_ttl: 0,
            hierarchy_ttl: 0,
            session_messages: true,
            rate_limit_bps: 0.0,
        }
    }
}

/// Loss process.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum LossSpec {
    /// No loss.
    None,
    /// Independent Bernoulli loss on every link.
    Bernoulli {
        /// Drop probability.
        p: f64,
    },
    /// Drop the given (1-based) packet ordinals on the link between two
    /// nodes.
    Scripted {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// 1-based ordinals of crossings to drop.
        ordinals: Vec<u64>,
    },
}

/// Channel effects.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq, Default)]
#[serde(default)]
pub struct EffectsSpec {
    /// Per-hop duplication probability.
    pub duplication: f64,
    /// Maximum per-hop reordering jitter, seconds.
    pub jitter_secs: f64,
}

/// Data workload: the source streams ADUs.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(default)]
pub struct WorkloadSpec {
    /// Number of ADUs to originate.
    pub adus: u32,
    /// Seconds between ADUs.
    pub interval_secs: f64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            adus: 10,
            interval_secs: 5.0,
            payload_bytes: 64,
        }
    }
}

/// A complete scenario file.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Scenario {
    /// Topology to build.
    pub topology: TopologySpec,
    /// RNG seed (topology, membership, and protocol timers).
    #[serde(default)]
    pub seed: u64,
    /// Session membership.
    pub members: MembersSpec,
    /// Data source: a node id, or absent for the first member.
    #[serde(default)]
    pub source: Option<u32>,
    /// Protocol configuration.
    #[serde(default)]
    pub config: ConfigSpec,
    /// Loss process.
    #[serde(default = "default_loss")]
    pub loss: LossSpec,
    /// Channel effects.
    #[serde(default)]
    pub effects: EffectsSpec,
    /// Workload.
    #[serde(default)]
    pub workload: WorkloadSpec,
    /// Extra settle time after the workload, seconds.
    #[serde(default = "default_settle")]
    pub settle_secs: f64,
}

fn default_loss() -> LossSpec {
    LossSpec::None
}

fn default_settle() -> f64 {
    2000.0
}

impl Scenario {
    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Scenario, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_parses() {
        let s = r#"{
            "topology": {"kind": "chain", "n": 10},
            "members": "all"
        }"#;
        let sc = Scenario::from_json(s).unwrap();
        assert_eq!(sc.topology, TopologySpec::Chain { n: 10 });
        assert_eq!(sc.members, MembersSpec::All(AllTag::All));
        assert_eq!(sc.config.timers, TimersSpec::Preset(TimerPreset::Fixed));
        assert_eq!(sc.loss, LossSpec::None);
    }

    #[test]
    fn full_scenario_roundtrips() {
        let sc = Scenario {
            topology: TopologySpec::BoundedTree { n: 200, degree: 4 },
            seed: 7,
            members: MembersSpec::Random { random: 20 },
            source: Some(3),
            config: ConfigSpec {
                timers: TimersSpec::Explicit {
                    c1: 2.0,
                    c2: 5.0,
                    d1: 1.0,
                    d2: 5.0,
                },
                scope: ScopeSpec::Ttl { ttl: 8 },
                fec_k: 4,
                recovery_group_ttl: 3,
                hierarchy_ttl: 2,
                session_messages: true,
                rate_limit_bps: 8000.0,
            },
            loss: LossSpec::Bernoulli { p: 0.02 },
            effects: EffectsSpec {
                duplication: 0.01,
                jitter_secs: 0.2,
            },
            workload: WorkloadSpec {
                adus: 30,
                interval_secs: 2.0,
                payload_bytes: 128,
            },
            settle_secs: 500.0,
        };
        let parsed = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(parsed, sc);
    }

    #[test]
    fn member_list_and_preset_variants() {
        let s = r#"{
            "topology": {"kind": "star", "leaves": 5},
            "members": [1, 2, 3],
            "config": {"timers": "adaptive"}
        }"#;
        let sc = Scenario::from_json(s).unwrap();
        assert_eq!(sc.members, MembersSpec::List(vec![1, 2, 3]));
        assert_eq!(sc.config.timers, TimersSpec::Preset(TimerPreset::Adaptive));
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("not json").is_err());
    }
}

//! The JSON scenario schema for `srm-sim`.
//!
//! A scenario file describes a topology, a session membership, an SRM
//! configuration, a loss process, and a workload; [`crate::run()`](crate::run()) executes
//! it and reports traffic and recovery statistics.
//!
//! Parsing and serialization are hand-written over [`crate::json`] (the
//! workspace builds offline, without serde); the wire shapes match the
//! original serde derives: `{"kind": ...}`-tagged topology and loss,
//! untagged members/timers, defaultable config/effects/workload sections.

use crate::json::{Json, JsonError};
use std::fmt;

/// Topology description.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// A chain of `n` nodes.
    Chain {
        /// Node count.
        n: usize,
    },
    /// A star with `leaves` leaf nodes and a non-member hub (node 0).
    Star {
        /// Leaf count.
        leaves: usize,
    },
    /// A balanced bounded-degree tree.
    BoundedTree {
        /// Node count.
        n: usize,
        /// Interior degree.
        degree: usize,
    },
    /// A uniformly random labeled tree.
    RandomTree {
        /// Node count.
        n: usize,
    },
    /// A connected random graph.
    RandomGraph {
        /// Node count.
        n: usize,
        /// Edge count (≥ n−1).
        m: usize,
    },
}

/// Which nodes join the session.
#[derive(Clone, Debug, PartialEq)]
pub enum MembersSpec {
    /// Explicit node ids.
    List(Vec<u32>),
    /// `{"random": k}`: k members chosen uniformly.
    Random {
        /// Member count.
        random: usize,
    },
    /// The string "all": every node joins.
    All(AllTag),
}

/// The literal string "all".
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllTag {
    /// Every node is a member.
    All,
}

/// Timer parameter selection.
#[derive(Clone, Debug, PartialEq)]
pub enum TimersSpec {
    /// `"fixed"`: the paper's C1=D1=2, C2=D2=√G.
    Preset(TimerPreset),
    /// Explicit constants.
    Explicit {
        /// Request interval start multiplier.
        c1: f64,
        /// Request interval width multiplier.
        c2: f64,
        /// Repair interval start multiplier.
        d1: f64,
        /// Repair interval width multiplier.
        d2: f64,
    },
}

/// Named timer presets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimerPreset {
    /// C1=D1=2, C2=D2=√G (Section V).
    Fixed,
    /// The Section VII-A adaptive algorithm (backoff ×3).
    Adaptive,
    /// wb 1.59's fixed millisecond intervals.
    Wb159,
}

/// Recovery scope selection.
#[derive(Clone, Debug, PartialEq)]
pub enum ScopeSpec {
    /// Global recovery (default).
    Global,
    /// TTL-scoped with two-step repairs.
    Ttl {
        /// Initial request TTL.
        ttl: u8,
    },
    /// Administratively scoped.
    Admin,
}

/// Protocol configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigSpec {
    /// Timer selection.
    pub timers: TimersSpec,
    /// Recovery scope.
    pub scope: ScopeSpec,
    /// FEC block size (`0` = off).
    pub fec_k: u8,
    /// Enable Section VII-B2 recovery groups with this invite TTL
    /// (`0` = off).
    pub recovery_group_ttl: u8,
    /// Enable Section IX-A hierarchical session messages with this local
    /// TTL (`0` = off).
    pub hierarchy_ttl: u8,
    /// Periodic session messages on/off.
    pub session_messages: bool,
    /// Token-bucket send limit in bytes/second (`0` = unlimited).
    pub rate_limit_bps: f64,
}

impl Default for ConfigSpec {
    fn default() -> Self {
        ConfigSpec {
            timers: TimersSpec::Preset(TimerPreset::Fixed),
            scope: ScopeSpec::Global,
            fec_k: 0,
            recovery_group_ttl: 0,
            hierarchy_ttl: 0,
            session_messages: true,
            rate_limit_bps: 0.0,
        }
    }
}

/// Loss process.
#[derive(Clone, Debug, PartialEq)]
pub enum LossSpec {
    /// No loss.
    None,
    /// Independent Bernoulli loss on every link.
    Bernoulli {
        /// Drop probability.
        p: f64,
    },
    /// Drop the given (1-based) packet ordinals on the link between two
    /// nodes.
    Scripted {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// 1-based ordinals of crossings to drop.
        ordinals: Vec<u64>,
    },
}

/// Channel effects.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct EffectsSpec {
    /// Per-hop duplication probability.
    pub duplication: f64,
    /// Maximum per-hop reordering jitter, seconds.
    pub jitter_secs: f64,
}

/// Data workload: the source streams ADUs.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of ADUs to originate.
    pub adus: u32,
    /// Seconds between ADUs.
    pub interval_secs: f64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            adus: 10,
            interval_secs: 5.0,
            payload_bytes: 64,
        }
    }
}

/// A complete scenario file.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Topology to build.
    pub topology: TopologySpec,
    /// RNG seed (topology, membership, and protocol timers).
    pub seed: u64,
    /// Session membership.
    pub members: MembersSpec,
    /// Data source: a node id, or absent for the first member.
    pub source: Option<u32>,
    /// Protocol configuration.
    pub config: ConfigSpec,
    /// Loss process.
    pub loss: LossSpec,
    /// Channel effects.
    pub effects: EffectsSpec,
    /// Workload.
    pub workload: WorkloadSpec,
    /// Extra settle time after the workload, seconds.
    pub settle_secs: f64,
}

/// A scenario that failed to parse.
#[derive(Clone, Debug)]
pub enum SpecError {
    /// The input is not JSON at all.
    Syntax(JsonError),
    /// The JSON does not match the schema; the string names the field.
    Schema(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError::Schema(msg.into())
}

fn req_u64(v: &Json, field: &str) -> Result<u64, SpecError> {
    v.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("'{field}' must be a non-negative integer")))
}

fn req_f64(v: &Json, field: &str) -> Result<f64, SpecError> {
    v.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("'{field}' must be a number")))
}

impl TopologySpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("topology needs a string 'kind'"))?;
        Ok(match kind {
            "chain" => TopologySpec::Chain {
                n: req_u64(v, "n")? as usize,
            },
            "star" => TopologySpec::Star {
                leaves: req_u64(v, "leaves")? as usize,
            },
            "bounded_tree" => TopologySpec::BoundedTree {
                n: req_u64(v, "n")? as usize,
                degree: req_u64(v, "degree")? as usize,
            },
            "random_tree" => TopologySpec::RandomTree {
                n: req_u64(v, "n")? as usize,
            },
            "random_graph" => TopologySpec::RandomGraph {
                n: req_u64(v, "n")? as usize,
                m: req_u64(v, "m")? as usize,
            },
            other => return Err(bad(format!("unknown topology kind '{other}'"))),
        })
    }

    fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, u64)>, kind: &str| {
            let mut m = vec![("kind".to_string(), Json::Str(kind.to_string()))];
            m.extend(
                fields
                    .into_iter()
                    .map(|(k, n)| (k.to_string(), Json::Num(n as f64))),
            );
            Json::Obj(m)
        };
        match *self {
            TopologySpec::Chain { n } => obj(vec![("n", n as u64)], "chain"),
            TopologySpec::Star { leaves } => obj(vec![("leaves", leaves as u64)], "star"),
            TopologySpec::BoundedTree { n, degree } => obj(
                vec![("n", n as u64), ("degree", degree as u64)],
                "bounded_tree",
            ),
            TopologySpec::RandomTree { n } => obj(vec![("n", n as u64)], "random_tree"),
            TopologySpec::RandomGraph { n, m } => {
                obj(vec![("n", n as u64), ("m", m as u64)], "random_graph")
            }
        }
    }
}

impl MembersSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        match v {
            Json::Arr(items) => {
                let ids = items
                    .iter()
                    .map(|e| {
                        e.as_u64()
                            .filter(|&n| n <= u32::MAX as u64)
                            .map(|n| n as u32)
                            .ok_or_else(|| bad("member ids must be u32"))
                    })
                    .collect::<Result<Vec<u32>, _>>()?;
                Ok(MembersSpec::List(ids))
            }
            Json::Str(s) if s == "all" => Ok(MembersSpec::All(AllTag::All)),
            Json::Obj(_) => Ok(MembersSpec::Random {
                random: req_u64(v, "random")? as usize,
            }),
            _ => Err(bad("'members' must be a list, {\"random\": k}, or \"all\"")),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            MembersSpec::List(ids) => {
                Json::Arr(ids.iter().map(|&i| Json::Num(i as f64)).collect())
            }
            MembersSpec::Random { random } => {
                Json::Obj(vec![("random".to_string(), Json::Num(*random as f64))])
            }
            MembersSpec::All(_) => Json::Str("all".to_string()),
        }
    }
}

impl TimersSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        match v {
            Json::Str(s) => Ok(TimersSpec::Preset(match s.as_str() {
                "fixed" => TimerPreset::Fixed,
                "adaptive" => TimerPreset::Adaptive,
                "wb159" => TimerPreset::Wb159,
                other => return Err(bad(format!("unknown timer preset '{other}'"))),
            })),
            Json::Obj(_) => Ok(TimersSpec::Explicit {
                c1: req_f64(v, "c1")?,
                c2: req_f64(v, "c2")?,
                d1: req_f64(v, "d1")?,
                d2: req_f64(v, "d2")?,
            }),
            _ => Err(bad("'timers' must be a preset name or {c1,c2,d1,d2}")),
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            TimersSpec::Preset(p) => Json::Str(
                match p {
                    TimerPreset::Fixed => "fixed",
                    TimerPreset::Adaptive => "adaptive",
                    TimerPreset::Wb159 => "wb159",
                }
                .to_string(),
            ),
            TimersSpec::Explicit { c1, c2, d1, d2 } => Json::Obj(vec![
                ("c1".to_string(), Json::Num(c1)),
                ("c2".to_string(), Json::Num(c2)),
                ("d1".to_string(), Json::Num(d1)),
                ("d2".to_string(), Json::Num(d2)),
            ]),
        }
    }
}

impl ScopeSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        match v {
            Json::Str(s) if s == "global" => Ok(ScopeSpec::Global),
            Json::Str(s) if s == "admin" => Ok(ScopeSpec::Admin),
            Json::Obj(_) => {
                let inner = v
                    .get("ttl")
                    .ok_or_else(|| bad("scope object must be {\"ttl\": {\"ttl\": n}}"))?;
                let ttl = req_u64(inner, "ttl")?;
                if ttl > u8::MAX as u64 {
                    return Err(bad("scope ttl must fit in u8"));
                }
                Ok(ScopeSpec::Ttl { ttl: ttl as u8 })
            }
            _ => Err(bad("'scope' must be \"global\", \"admin\", or a ttl object")),
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            ScopeSpec::Global => Json::Str("global".to_string()),
            ScopeSpec::Admin => Json::Str("admin".to_string()),
            ScopeSpec::Ttl { ttl } => Json::Obj(vec![(
                "ttl".to_string(),
                Json::Obj(vec![("ttl".to_string(), Json::Num(ttl as f64))]),
            )]),
        }
    }
}

impl ConfigSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        if v.as_obj().is_none() {
            return Err(bad("'config' must be an object"));
        }
        let mut cfg = ConfigSpec::default();
        if let Some(t) = v.get("timers") {
            cfg.timers = TimersSpec::from_json(t)?;
        }
        if let Some(s) = v.get("scope") {
            cfg.scope = ScopeSpec::from_json(s)?;
        }
        if v.get("fec_k").is_some() {
            cfg.fec_k = req_u64(v, "fec_k")? as u8;
        }
        if v.get("recovery_group_ttl").is_some() {
            cfg.recovery_group_ttl = req_u64(v, "recovery_group_ttl")? as u8;
        }
        if v.get("hierarchy_ttl").is_some() {
            cfg.hierarchy_ttl = req_u64(v, "hierarchy_ttl")? as u8;
        }
        if let Some(b) = v.get("session_messages") {
            cfg.session_messages = b
                .as_bool()
                .ok_or_else(|| bad("'session_messages' must be a boolean"))?;
        }
        if v.get("rate_limit_bps").is_some() {
            cfg.rate_limit_bps = req_f64(v, "rate_limit_bps")?;
        }
        Ok(cfg)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("timers".to_string(), self.timers.to_json()),
            ("scope".to_string(), self.scope.to_json()),
            ("fec_k".to_string(), Json::Num(self.fec_k as f64)),
            (
                "recovery_group_ttl".to_string(),
                Json::Num(self.recovery_group_ttl as f64),
            ),
            (
                "hierarchy_ttl".to_string(),
                Json::Num(self.hierarchy_ttl as f64),
            ),
            (
                "session_messages".to_string(),
                Json::Bool(self.session_messages),
            ),
            ("rate_limit_bps".to_string(), Json::Num(self.rate_limit_bps)),
        ])
    }
}

impl LossSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("loss needs a string 'kind'"))?;
        Ok(match kind {
            "none" => LossSpec::None,
            "bernoulli" => LossSpec::Bernoulli {
                p: req_f64(v, "p")?,
            },
            "scripted" => LossSpec::Scripted {
                a: req_u64(v, "a")? as u32,
                b: req_u64(v, "b")? as u32,
                ordinals: v
                    .get("ordinals")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("'ordinals' must be an array"))?
                    .iter()
                    .map(|e| e.as_u64().ok_or_else(|| bad("ordinals must be integers")))
                    .collect::<Result<Vec<u64>, _>>()?,
            },
            other => return Err(bad(format!("unknown loss kind '{other}'"))),
        })
    }

    fn to_json(&self) -> Json {
        match self {
            LossSpec::None => {
                Json::Obj(vec![("kind".to_string(), Json::Str("none".to_string()))])
            }
            LossSpec::Bernoulli { p } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("bernoulli".to_string())),
                ("p".to_string(), Json::Num(*p)),
            ]),
            LossSpec::Scripted { a, b, ordinals } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("scripted".to_string())),
                ("a".to_string(), Json::Num(*a as f64)),
                ("b".to_string(), Json::Num(*b as f64)),
                (
                    "ordinals".to_string(),
                    Json::Arr(ordinals.iter().map(|&o| Json::Num(o as f64)).collect()),
                ),
            ]),
        }
    }
}

impl EffectsSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        if v.as_obj().is_none() {
            return Err(bad("'effects' must be an object"));
        }
        let mut e = EffectsSpec::default();
        if v.get("duplication").is_some() {
            e.duplication = req_f64(v, "duplication")?;
        }
        if v.get("jitter_secs").is_some() {
            e.jitter_secs = req_f64(v, "jitter_secs")?;
        }
        Ok(e)
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("duplication".to_string(), Json::Num(self.duplication)),
            ("jitter_secs".to_string(), Json::Num(self.jitter_secs)),
        ])
    }
}

impl WorkloadSpec {
    fn from_json(v: &Json) -> Result<Self, SpecError> {
        if v.as_obj().is_none() {
            return Err(bad("'workload' must be an object"));
        }
        let mut w = WorkloadSpec::default();
        if v.get("adus").is_some() {
            w.adus = req_u64(v, "adus")? as u32;
        }
        if v.get("interval_secs").is_some() {
            w.interval_secs = req_f64(v, "interval_secs")?;
        }
        if v.get("payload_bytes").is_some() {
            w.payload_bytes = req_u64(v, "payload_bytes")? as usize;
        }
        Ok(w)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("adus".to_string(), Json::Num(self.adus as f64)),
            ("interval_secs".to_string(), Json::Num(self.interval_secs)),
            (
                "payload_bytes".to_string(),
                Json::Num(self.payload_bytes as f64),
            ),
        ])
    }
}

impl Scenario {
    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Scenario, SpecError> {
        let v = Json::parse(s).map_err(SpecError::Syntax)?;
        if v.as_obj().is_none() {
            return Err(bad("scenario must be a JSON object"));
        }
        let topology = TopologySpec::from_json(
            v.get("topology")
                .ok_or_else(|| bad("missing required field 'topology'"))?,
        )?;
        let members = MembersSpec::from_json(
            v.get("members")
                .ok_or_else(|| bad("missing required field 'members'"))?,
        )?;
        let seed = match v.get("seed") {
            Some(s) => s
                .as_u64()
                .ok_or_else(|| bad("'seed' must be a non-negative integer"))?,
            None => 0,
        };
        let source = match v.get("source") {
            Some(Json::Null) | None => None,
            Some(s) => Some(
                s.as_u64()
                    .filter(|&n| n <= u32::MAX as u64)
                    .map(|n| n as u32)
                    .ok_or_else(|| bad("'source' must be a u32 node id"))?,
            ),
        };
        let config = match v.get("config") {
            Some(c) => ConfigSpec::from_json(c)?,
            None => ConfigSpec::default(),
        };
        let loss = match v.get("loss") {
            Some(l) => LossSpec::from_json(l)?,
            None => LossSpec::None,
        };
        let effects = match v.get("effects") {
            Some(e) => EffectsSpec::from_json(e)?,
            None => EffectsSpec::default(),
        };
        let workload = match v.get("workload") {
            Some(w) => WorkloadSpec::from_json(w)?,
            None => WorkloadSpec::default(),
        };
        let settle_secs = match v.get("settle_secs") {
            Some(s) => s
                .as_f64()
                .ok_or_else(|| bad("'settle_secs' must be a number"))?,
            None => 2000.0,
        };
        Ok(Scenario {
            topology,
            seed,
            members,
            source,
            config,
            loss,
            effects,
            workload,
            settle_secs,
        })
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut m = vec![
            ("topology".to_string(), self.topology.to_json()),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("members".to_string(), self.members.to_json()),
        ];
        if let Some(s) = self.source {
            m.push(("source".to_string(), Json::Num(s as f64)));
        }
        m.push(("config".to_string(), self.config.to_json()));
        m.push(("loss".to_string(), self.loss.to_json()));
        m.push(("effects".to_string(), self.effects.to_json()));
        m.push(("workload".to_string(), self.workload.to_json()));
        m.push(("settle_secs".to_string(), Json::Num(self.settle_secs)));
        Json::Obj(m).pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_parses() {
        let s = r#"{
            "topology": {"kind": "chain", "n": 10},
            "members": "all"
        }"#;
        let sc = Scenario::from_json(s).unwrap();
        assert_eq!(sc.topology, TopologySpec::Chain { n: 10 });
        assert_eq!(sc.members, MembersSpec::All(AllTag::All));
        assert_eq!(sc.config.timers, TimersSpec::Preset(TimerPreset::Fixed));
        assert_eq!(sc.loss, LossSpec::None);
    }

    #[test]
    fn full_scenario_roundtrips() {
        let sc = Scenario {
            topology: TopologySpec::BoundedTree { n: 200, degree: 4 },
            seed: 7,
            members: MembersSpec::Random { random: 20 },
            source: Some(3),
            config: ConfigSpec {
                timers: TimersSpec::Explicit {
                    c1: 2.0,
                    c2: 5.0,
                    d1: 1.0,
                    d2: 5.0,
                },
                scope: ScopeSpec::Ttl { ttl: 8 },
                fec_k: 4,
                recovery_group_ttl: 3,
                hierarchy_ttl: 2,
                session_messages: true,
                rate_limit_bps: 8000.0,
            },
            loss: LossSpec::Bernoulli { p: 0.02 },
            effects: EffectsSpec {
                duplication: 0.01,
                jitter_secs: 0.2,
            },
            workload: WorkloadSpec {
                adus: 30,
                interval_secs: 2.0,
                payload_bytes: 128,
            },
            settle_secs: 500.0,
        };
        let parsed = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(parsed, sc);
    }

    #[test]
    fn member_list_and_preset_variants() {
        let s = r#"{
            "topology": {"kind": "star", "leaves": 5},
            "members": [1, 2, 3],
            "config": {"timers": "adaptive"}
        }"#;
        let sc = Scenario::from_json(s).unwrap();
        assert_eq!(sc.members, MembersSpec::List(vec![1, 2, 3]));
        assert_eq!(sc.config.timers, TimersSpec::Preset(TimerPreset::Adaptive));
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("not json").is_err());
    }

    #[test]
    fn scope_and_source_variants_roundtrip() {
        for scope in [ScopeSpec::Global, ScopeSpec::Admin, ScopeSpec::Ttl { ttl: 9 }] {
            let mut sc = Scenario::from_json(
                r#"{"topology": {"kind": "chain", "n": 4}, "members": "all"}"#,
            )
            .unwrap();
            sc.config.scope = scope.clone();
            let parsed = Scenario::from_json(&sc.to_json()).unwrap();
            assert_eq!(parsed.config.scope, scope);
            assert_eq!(parsed.source, None);
        }
    }
}

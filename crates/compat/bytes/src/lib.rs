//! Vendored, dependency-free subset of the `bytes` crate API.
//!
//! Provides [`Bytes`] (a cheaply cloneable, sliceable, shared byte buffer),
//! [`BytesMut`] (a growable builder that freezes into [`Bytes`]), and the
//! [`Buf`]/[`BufMut`] cursor traits in the big-endian flavour the wire
//! codecs expect. Only the surface this workspace uses is implemented; the
//! semantics match upstream `bytes` for that surface.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable view into a shared, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// A buffer viewing a static slice (copied; this vendored version does
    /// not special-case `'static` storage).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// A buffer owning a copy of `s` (mirrors `bytes::Bytes::copy_from_slice`).
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        // Straight into the shared allocation — `Arc::<[u8]>::from(slice)`
        // copies once, unlike going through an intermediate `Vec`.
        Bytes {
            data: std::sync::Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of this buffer. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds: {lo}..{hi} of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {at} of {}", self.len());
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Shorten the view to at most `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.buf.clone()), f)
    }
}

/// Read cursor over a byte source. All multi-byte reads are big-endian.
///
/// Reads past the end panic, matching upstream `bytes`; callers bounds-check
/// with `remaining()`/`len()` first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Read a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write cursor. All multi-byte writes are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(0xAB);
        b.put_u32(0xDEADBEEF);
        b.put_u64(0x0123456789ABCDEF);
        b.put_i32(-7);
        b.put_f32(1.5);
        b.put_f64(-2.25);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0123456789ABCDEF);
        assert_eq!(r.get_i32(), -7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(&r[..], b"tail");
    }

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::new();
        b.put_u32(0x01020304);
        assert_eq!(&b.freeze()[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut whole = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = whole.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let head = whole.split_to(3);
        assert_eq!(&head[..], &[0, 1, 2]);
        assert_eq!(&whole[..], &[3, 4, 5, 6, 7]);
        let clone = whole.clone();
        assert_eq!(clone, whole);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.split_to(3);
    }

    #[test]
    fn equality_and_hash_follow_contents() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3, 4]).slice(1..4);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert_eq!(Bytes::from_static(b"xy"), Bytes::from(vec![b'x', b'y']));
    }
}

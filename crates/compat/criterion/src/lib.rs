//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The workspace builds offline, so the benchmark harness surface its
//! benches use is reimplemented here as a minimal wall-clock timer: each
//! `bench_function` runs a short warm-up, then `sample_size` timed
//! iterations, and prints the mean per-iteration time. No statistics beyond
//! the mean, no plots, no baselines — enough to compile every bench target
//! and give a usable relative signal when run by hand.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Further configuration hook; accepted and ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Time one closure-under-test.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Time one closure-under-test within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Time a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark's display identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, p: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{p}", function.into()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `sample_size` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // One untimed call warms caches and surfaces panics with a clean trace.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("{name}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("unit/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("unit/group");
        g.sample_size(3);
        g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(
        name = unit;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    );

    criterion_group!(simple, sample_bench);

    #[test]
    fn groups_run_without_panicking() {
        unit();
        simple();
    }
}

//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The workspace builds offline, so the property-testing surface its test
//! suites use is reimplemented here: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`, numeric-range / tuple / collection /
//! option / `Just` / `prop_oneof!` strategies, `any::<T>()` for primitives,
//! and `prop::sample::Index`.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs via `Debug`-free
//!   panic message (the case number and assertion text) and stops.
//! - **Deterministic generation.** Cases are derived from a fixed seed mixed
//!   with the case index, so test runs are bit-for-bit reproducible — the
//!   same property the simulator itself guarantees.
//! - Regex string strategies support only the character-class form
//!   `[chars]{lo,hi}` actually used by this workspace.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property bodies are wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the cases of one property. Created by the [`proptest!`] macro.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic generator for case `case` of test `test_name`.
    pub fn rng_for(&self, test_name: &str, case: u32) -> StdRng {
        // FNV-1a over the test name decorrelates different properties that
        // share strategy shapes; the case index advances the stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Minimal regex-subset string strategy: `"[chars]{lo,hi}"` draws a string
/// of `lo..=hi` characters uniformly from the class (with `a-z` ranges
/// expanded); any other pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        if let Some((alphabet, lo, hi)) = parse_class_repeat(self) {
            let len = rng.random_range(lo..=hi);
            (0..len)
                .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo = reps.0.trim().parse().ok()?;
    let hi = reps.1.trim().parse().ok()?;
    if alphabet.is_empty() || lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Weighted choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// A union of weighted strategies. Panics if `options` is empty.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.random_range(0..total.max(1));
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.options[0].1.generate(rng)
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as i64 as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        rng.random::<f64>() as f32
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut StdRng) -> Self {}
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// A strategy for `Vec<S::Value>` of a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy that is `None` one time in five and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0u32..5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Index sampling.

    use super::Arbitrary;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A position into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements. Panics on zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Index {
            Index(rng.random::<u64>())
        }
    }
}

pub mod prop {
    //! The `prop::` namespace re-exported by the prelude.

    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    //! The glob-importable prelude.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Define property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg);
            for case in 0..runner.cases() {
                let mut __rng = runner.rng_for(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Choose uniformly (or by `weight =>` prefixes) among strategies that share
/// a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($w as u32, $crate::Strategy::boxed($s))),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($s))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let runner = crate::TestRunner::new(ProptestConfig::with_cases(1));
        let mut rng = runner.rng_for("unit", 0);
        for _ in 0..1000 {
            let v = (0u64..10, -5i32..5).generate(&mut rng);
            assert!(v.0 < 10 && (-5..5).contains(&v.1));
            let s = (0u8..3).prop_map(|x| x * 2).generate(&mut rng);
            assert!(s <= 4 && s % 2 == 0);
            let vec = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&vec.len()));
            let exact = prop::collection::vec(Just(7u8), 3).generate(&mut rng);
            assert_eq!(exact, vec![7, 7, 7]);
            let idx = any::<prop::sample::Index>().generate(&mut rng);
            assert!(idx.index(13) < 13);
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_reaches_every_alternative() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let runner = crate::TestRunner::new(ProptestConfig::default());
        let mut rng = runner.rng_for("oneof", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let runner = crate::TestRunner::new(ProptestConfig::default());
        let strat = prop::collection::vec(0u64..1000, 1..20);
        let a = strat.generate(&mut runner.rng_for("det", 5));
        let b = strat.generate(&mut runner.rng_for("det", 5));
        let c = strat.generate(&mut runner.rng_for("det", 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..100, (a, b) in (any::<bool>(), 0u8..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a, a);
            prop_assert!(b < 4, "b was {}", b);
        }
    }
}

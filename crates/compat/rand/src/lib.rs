//! Vendored, dependency-free subset of the `rand` 0.9 API.
//!
//! The workspace builds in offline environments with no registry access, so
//! the handful of `rand` entry points the simulator actually uses are
//! reimplemented here on top of xoshiro256** (seeded via SplitMix64). The
//! generator is fully deterministic from `seed_from_u64`, which is the only
//! construction path the codebase uses — bit-for-bit reproducibility of
//! seeded simulation runs is the property that matters, not statistical
//! equivalence with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::random`].
pub trait FromRandom: Sized {
    /// Draw a uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 inclusive sample range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f32 inclusive sample range");
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is
/// ≤ span/2⁶⁴, irrelevant for simulation workloads).
fn uniform_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(span, rng) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(span, rng) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            // Keep the stream position independent of `p`'s value.
            let _ = self.next_u64();
            false
        } else if p >= 1.0 {
            let _ = self.next_u64();
            true
        } else {
            unit_f64(self.next_u64()) < p
        }
    }

    /// Uniform value of an inferred type.
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{uniform_below, Rng};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(i as u64 + 1, rng) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(self.len() as u64, rng) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f));
            let u = rng.random_range(3u32..9);
            assert!((3..9).contains(&u));
            let s = rng.random_range(0usize..1);
            assert_eq!(s, 0);
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");

        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::BTreeSet::new();
        let pool = [1u32, 2, 3];
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn uniform_range_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}

//! Adaptive adjustment of the request/repair timer parameters
//! (Section VII-A, Figs 9–11).
//!
//! Each member measures, over *request periods* and *repair periods*:
//!
//! - `ave_dup_req` / `ave_dup_rep`: exponential-weighted moving averages of
//!   the number of duplicate requests/repairs per period ("dup_req keeps
//!   count of the number of duplicate requests received during one request
//!   period … At the end of each request period, the member updates
//!   ave_dup_req … before resetting dup_req to zero");
//! - `ave_req_delay` / `ave_rep_delay`: EWMAs of the delay from timer set
//!   to the first request/repair (sent or heard), "as a multiple of the
//!   roundtrip time to the source of the missing data".
//!
//! A request period begins when the member first detects a loss and sets a
//! request timer, and ends when it detects a *subsequent* loss and begins a
//! new period. Repair periods are delimited analogously by repair-timer
//! sets for different data items.
//!
//! At each period boundary the parameters are nudged (the paper's
//! adjustment constants: ±0.1/−0.05 for C1, ±0.5/−0.1 for C2) toward the
//! targets `AveDups` and `AveDelay`, and clamped. Two further mechanisms
//! encourage *deterministic* suppression: members reduce C1 right after
//! sending a request, and members who sent a request reduce C2 when they
//! observe a duplicate request from a member reporting a distance more than
//! 1.5× their own ("further from the source").

use crate::config::{AdaptiveConfig, TimerParams};
use crate::name::AduName;

/// One side (request or repair) of the adaptive state.
#[derive(Clone, Debug)]
struct Side {
    /// EWMA of duplicates per period.
    ave_dup: f64,
    /// EWMA of (delay / RTT).
    ave_delay: f64,
    /// Duplicates observed in the current period.
    dup: u32,
    /// The data item delimiting the current period.
    current_item: Option<AduName>,
    /// Did we send (a request/repair) during the current period?
    sent_this_period: bool,
    /// Did we send during the previous period?
    sent_last_period: bool,
    /// Whether any period has been opened yet.
    opened: bool,
}

impl Side {
    fn new() -> Self {
        Side {
            ave_dup: 0.0,
            ave_delay: 0.0,
            dup: 0,
            current_item: None,
            sent_this_period: false,
            sent_last_period: false,
            opened: false,
        }
    }

    /// Fold the finished period's duplicate count into the average.
    fn close_period(&mut self, lambda: f64) {
        self.ave_dup = (1.0 - lambda) * self.ave_dup + lambda * self.dup as f64;
        self.dup = 0;
        self.sent_last_period = self.sent_this_period;
        self.sent_this_period = false;
    }

    fn note_delay(&mut self, delay_over_rtt: f64, lambda: f64) {
        self.ave_delay = (1.0 - lambda) * self.ave_delay + lambda * delay_over_rtt;
    }
}

/// Per-member adaptive timer state. Owns the live [`TimerParams`].
#[derive(Clone, Debug)]
pub struct AdaptiveTimers {
    /// Tuning constants and clamps.
    pub cfg: AdaptiveConfig,
    /// The live parameters used to draw timers.
    pub params: TimerParams,
    req: Side,
    rep: Side,
}

impl AdaptiveTimers {
    /// Start from `initial` parameters.
    pub fn new(cfg: AdaptiveConfig, initial: TimerParams) -> Self {
        AdaptiveTimers {
            cfg,
            params: initial,
            req: Side::new(),
            rep: Side::new(),
        }
    }

    // ---- request side ---------------------------------------------------

    /// A request timer was set for `item` after detecting its loss. If this
    /// starts a new request period, the previous one is closed and the
    /// request parameters adjusted (Fig 9: "the general adaptation performed
    /// by all members when they set a request timer").
    pub fn on_request_timer_set(&mut self, item: AduName) {
        if self.req.current_item == Some(item) {
            return; // same loss-recovery event (e.g. re-armed timer)
        }
        if self.req.opened {
            self.req.close_period(self.cfg.lambda);
            self.adjust_request_params();
        }
        self.req.opened = true;
        self.req.current_item = Some(item);
    }

    /// A duplicate request was observed for data we set a request timer for.
    pub fn on_duplicate_request(&mut self) {
        self.req.dup += 1;
    }

    /// We sent a request. Mechanism 1 of Section VII-A: "members … reduce
    /// C1 after they send a request", encouraging members near the failure
    /// to keep requesting early (deterministic suppression).
    pub fn on_request_sent(&mut self) {
        self.req.sent_this_period = true;
        self.params.c1 -= 0.05;
        self.clamp();
    }

    /// We had sent a request and then observed a duplicate request from a
    /// member whose reported distance to the source exceeds
    /// `farther_factor ×` ours. Mechanism 2: reduce C2.
    ///
    /// Returns true if the rule fired.
    pub fn on_far_duplicate_request(&mut self, their_dist: f64, our_dist: f64) -> bool {
        if self.req.sent_this_period && their_dist > self.cfg.farther_factor * our_dist {
            self.params.c2 -= 0.1;
            self.clamp();
            true
        } else {
            false
        }
    }

    /// Record the request delay (time from first timer set until a request
    /// was sent or heard), in units of the RTT to the source.
    pub fn on_request_delay(&mut self, delay_over_rtt: f64) {
        self.req.note_delay(delay_over_rtt, self.cfg.lambda);
    }

    fn adjust_request_params(&mut self) {
        let c = &self.cfg;
        if self.req.ave_dup >= c.ave_dups {
            // Too many duplicates: spread the timers out.
            self.params.c1 += 0.1;
            self.params.c2 += 0.5;
        } else {
            // Duplicates are under control; claw back delay.
            if self.req.ave_delay > c.ave_delay {
                self.params.c2 -= 0.1;
            }
            // "only decreases C1 for members who have sent requests, or
            // when the average number of duplicates is already small."
            if self.req.sent_last_period || self.req.ave_dup < 0.25 * c.ave_dups {
                self.params.c1 -= 0.05;
            }
        }
        self.clamp();
    }

    // ---- repair side ----------------------------------------------------

    /// A repair timer was set for `item`. Opens/closes repair periods and
    /// adjusts D1/D2 at boundaries, mirroring the request side.
    pub fn on_repair_timer_set(&mut self, item: AduName) {
        if self.rep.current_item == Some(item) {
            return;
        }
        if self.rep.opened {
            self.rep.close_period(self.cfg.lambda);
            self.adjust_repair_params();
        }
        self.rep.opened = true;
        self.rep.current_item = Some(item);
    }

    /// A duplicate repair was observed for data we set a repair timer for.
    pub fn on_duplicate_repair(&mut self) {
        self.rep.dup += 1;
    }

    /// We sent a repair (mirror of [`Self::on_request_sent`]).
    pub fn on_repair_sent(&mut self) {
        self.rep.sent_this_period = true;
        self.params.d1 -= 0.05;
        self.clamp();
    }

    /// Record the repair delay in units of the RTT to the requestor.
    pub fn on_repair_delay(&mut self, delay_over_rtt: f64) {
        self.rep.note_delay(delay_over_rtt, self.cfg.lambda);
    }

    fn adjust_repair_params(&mut self) {
        let c = &self.cfg;
        if self.rep.ave_dup >= c.ave_dups {
            self.params.d1 += 0.1;
            self.params.d2 += 0.5;
        } else {
            if self.rep.ave_delay > c.ave_delay {
                self.params.d2 -= 0.1;
            }
            if self.rep.sent_last_period || self.rep.ave_dup < 0.25 * c.ave_dups {
                self.params.d1 -= 0.05;
            }
        }
        self.clamp();
    }

    // ---- shared ----------------------------------------------------------

    fn clamp(&mut self) {
        let c = &self.cfg;
        self.params.c1 = self.params.c1.clamp(c.min_c1, c.max_c1);
        self.params.c2 = self.params.c2.clamp(c.min_c2, c.max_c2);
        self.params.d1 = self.params.d1.clamp(c.min_c1, c.max_c1);
        self.params.d2 = self.params.d2.clamp(c.min_c2, c.max_c2);
    }

    /// Current request-side duplicate average (for tests/metrics).
    pub fn ave_dup_req(&self) -> f64 {
        self.req.ave_dup
    }

    /// Current request-side delay average.
    pub fn ave_req_delay(&self) -> f64 {
        self.req.ave_delay
    }

    /// Current repair-side duplicate average.
    pub fn ave_dup_rep(&self) -> f64 {
        self.rep.ave_dup
    }

    /// Current repair-side delay average.
    pub fn ave_rep_delay(&self) -> f64 {
        self.rep.ave_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{PageId, SeqNo, SourceId};

    fn item(q: u64) -> AduName {
        AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(q))
    }

    fn fresh() -> AdaptiveTimers {
        AdaptiveTimers::new(
            AdaptiveConfig::default(),
            TimerParams {
                c1: 2.0,
                c2: 7.0,
                d1: 2.0,
                d2: 7.0,
            },
        )
    }

    #[test]
    fn duplicates_increase_interval() {
        let mut a = fresh();
        a.on_request_timer_set(item(0));
        for _ in 0..5 {
            a.on_duplicate_request();
        }
        // New period → adjustment happens with ave_dup = 0.25·5 = 1.25 ≥ 1.
        a.on_request_timer_set(item(1));
        assert!((a.params.c1 - 2.0).abs() < 1e-9, "clamped at max_c1");
        assert!((a.params.c2 - 7.5).abs() < 1e-9);
    }

    #[test]
    fn high_delay_decreases_c2_when_dups_low() {
        let mut a = fresh();
        a.on_request_timer_set(item(0));
        a.on_request_delay(5.0); // ave_delay = 1.25 > 1
        a.on_request_timer_set(item(1));
        assert!((a.params.c2 - 6.9).abs() < 1e-9);
    }

    #[test]
    fn c1_decreases_only_for_senders_or_low_dups() {
        // Sender path:
        let mut a = fresh();
        a.on_request_timer_set(item(0));
        a.on_request_sent(); // immediate −0.05
        assert!((a.params.c1 - 1.95).abs() < 1e-9);
        a.on_request_timer_set(item(1)); // sent_last_period = true → −0.05
        assert!((a.params.c1 - 1.90).abs() < 1e-9);

        // Low-dups path (never sent): ave_dup 0 < 0.25 → C1 decreases.
        let mut b = fresh();
        b.on_request_timer_set(item(0));
        b.on_request_timer_set(item(1));
        assert!((b.params.c1 - 1.95).abs() < 1e-9);

        // Moderate dups, no send: C1 untouched.
        let mut c = fresh();
        c.on_request_timer_set(item(0));
        c.on_duplicate_request();
        c.on_duplicate_request(); // ave_dup = 0.5, in [0.25, 1)
        c.on_request_timer_set(item(1));
        assert!((c.params.c1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn far_duplicate_rule_requires_recent_send_and_distance() {
        let mut a = fresh();
        a.on_request_timer_set(item(0));
        assert!(!a.on_far_duplicate_request(4.0, 1.0)); // didn't send
        a.on_request_sent();
        assert!(!a.on_far_duplicate_request(1.4, 1.0)); // not far enough
        assert!(a.on_far_duplicate_request(1.6, 1.0));
        assert!((a.params.c2 - 6.9).abs() < 1e-9);
    }

    #[test]
    fn same_item_does_not_open_new_period() {
        let mut a = fresh();
        a.on_request_timer_set(item(0));
        a.on_duplicate_request();
        a.on_request_timer_set(item(0)); // re-arm, same event
        assert_eq!(a.ave_dup_req(), 0.0); // period not closed yet
        a.on_request_timer_set(item(1));
        assert!((a.ave_dup_req() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn delay_ewma_update_math() {
        // ave' = (1−λ)·ave + λ·sample with λ = 0.25 (paper's weight).
        let mut a = fresh();
        assert_eq!(a.ave_req_delay(), 0.0);
        a.on_request_delay(5.0);
        assert!((a.ave_req_delay() - 1.25).abs() < 1e-12); // 0.75·0 + 0.25·5
        a.on_request_delay(3.0);
        assert!((a.ave_req_delay() - 1.6875).abs() < 1e-12); // 0.75·1.25 + 0.25·3
        a.on_request_delay(0.0);
        assert!((a.ave_req_delay() - 1.265625).abs() < 1e-12); // 0.75·1.6875
        // The repair side uses the same recurrence independently.
        a.on_repair_delay(4.0);
        assert!((a.ave_rep_delay() - 1.0).abs() < 1e-12);
        assert!((a.ave_req_delay() - 1.265625).abs() < 1e-12);
    }

    #[test]
    fn dup_ewma_chains_across_periods() {
        let mut a = fresh();
        // Period 0: 4 duplicates → on close, ave = 0.25·4 = 1.0.
        a.on_request_timer_set(item(0));
        for _ in 0..4 {
            a.on_duplicate_request();
        }
        a.on_request_timer_set(item(1));
        assert!((a.ave_dup_req() - 1.0).abs() < 1e-12);
        // Period 1: 2 duplicates → ave = 0.75·1.0 + 0.25·2 = 1.25.
        a.on_duplicate_request();
        a.on_duplicate_request();
        a.on_request_timer_set(item(2));
        assert!((a.ave_dup_req() - 1.25).abs() < 1e-12);
        // Period 2: quiet → ave decays: 0.75·1.25 = 0.9375, and the dup
        // counter was reset at the boundary (no carry-over).
        a.on_request_timer_set(item(3));
        assert!((a.ave_dup_req() - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn close_period_transfers_sent_flag_once() {
        let mut a = fresh();
        a.on_request_timer_set(item(0));
        a.on_request_sent(); // c1: 2.0 → 1.95
        // Boundary 1: sent_last_period = true → extra −0.05.
        a.on_request_timer_set(item(1));
        assert!((a.params.c1 - 1.90).abs() < 1e-9);
        // Boundary 2: we did not send in period 1, but ave_dup is 0 (< 0.25
        // of target) so the low-dups branch still applies −0.05.
        a.on_request_timer_set(item(2));
        assert!((a.params.c1 - 1.85).abs() < 1e-9);
    }

    #[test]
    fn params_stay_clamped_under_stress() {
        let mut a = fresh();
        for i in 0..200 {
            a.on_request_timer_set(item(i));
            for _ in 0..10 {
                a.on_duplicate_request();
            }
        }
        assert!(a.params.c1 <= a.cfg.max_c1 + 1e-9);
        assert!(a.params.c2 <= a.cfg.max_c2 + 1e-9);
        let mut b = fresh();
        for i in 0..200 {
            b.on_request_timer_set(item(i));
            b.on_request_sent();
            b.on_request_delay(10.0);
        }
        assert!(b.params.c1 >= b.cfg.min_c1 - 1e-9);
        assert!(b.params.c2 >= b.cfg.min_c2 - 1e-9);
    }

    #[test]
    fn repair_side_mirrors_request_side() {
        let mut a = fresh();
        a.on_repair_timer_set(item(0));
        for _ in 0..8 {
            a.on_duplicate_repair();
        }
        a.on_repair_timer_set(item(1));
        assert!((a.params.d2 - 7.5).abs() < 1e-9);
        assert!((a.ave_dup_rep() - 2.0).abs() < 1e-9);
        a.on_repair_sent();
        assert!((a.params.d1 - 1.95).abs() < 1e-9);
    }

    #[test]
    fn converges_to_low_duplicates_in_simple_model() {
        // A toy closed loop: duplicates per round ≈ max(0, 6 − C2), a crude
        // stand-in for a star where widening the interval suppresses dups.
        let mut a = AdaptiveTimers::new(
            AdaptiveConfig::default(),
            TimerParams {
                c1: 2.0,
                c2: 1.0,
                d1: 2.0,
                d2: 1.0,
            },
        );
        let mut last_dups = 0.0;
        for i in 0..200 {
            a.on_request_timer_set(item(i));
            let dups = (6.0 - a.params.c2).max(0.0);
            last_dups = dups;
            for _ in 0..dups.round() as u32 {
                a.on_duplicate_request();
            }
        }
        assert!(last_dups <= 2.0, "did not converge: {last_dups}");
        assert!(a.params.c2 > 3.0);
    }
}

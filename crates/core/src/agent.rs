//! The SRM agent: one session member's protocol engine.
//!
//! [`SrmAgent`] implements [`netsim::Application`] and wires together every
//! piece of the framework: the ADU store, session messages with NTP-style
//! distance estimation, gap- and session-based loss detection, the
//! request/repair timer machinery with suppression and exponential backoff,
//! the repair hold-down, optional adaptive timer adjustment, local recovery
//! scoping, and the prioritized, token-bucket-limited send path.
//!
//! The application above the agent (wb, or an experiment driver) calls
//! [`SrmAgent::send_data`] to originate ADUs and [`SrmAgent::take_delivered`]
//! to consume what arrived; everything else is autonomous.

use crate::adaptive::AdaptiveTimers;
use crate::clock::DistanceEstimator;
use crate::driver::Driver;
use crate::config::{RecoveryScope, SrmConfig, TimerParams};
use crate::fec::{reconstruct, Parity, ParityEncoder};
use crate::hierarchy::{HierarchyState, SessionScope};
use crate::local::{widened_ttl, LossFingerprint, NeighborhoodView};
use crate::metrics::{AgentMetrics, RecoveryRecord, RepairRecord};
use crate::name::{AduName, PageId, SeqNo, SourceId};
use crate::observe::adu_key;
use crate::rate::TokenBucket;
use crate::recovery::{RequestAction, RequestState, RepairState};
use crate::sendq::{PendingSend, SendClass, SendQueue};
use crate::session::SessionScheduler;
use crate::store::AduStore;
use crate::wire::{Body, DataBody, Header, Message, PageRequestBody, RequestBody, SessionBody};
use bytes::Bytes;
use netsim::{flow, Application, Ctx, GroupId, Packet, SendOptions, SimDuration, SimTime, TimerId};
use std::collections::BTreeMap;

/// An ADU handed up to the application layer.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The ADU's name.
    pub name: AduName,
    /// Its payload.
    pub payload: Bytes,
    /// True if it arrived as a repair rather than an original transmission.
    pub via_repair: bool,
}

/// What a fired timer token means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Purpose {
    Request(AduName),
    Repair(AduName),
    Session,
    PageReply(PageId),
    RateGate,
    /// Delayed recovery-group creation (suppressed by hearing an invite).
    RecoveryInviteTimer,
    /// Suppressible reply to a page-catalog request.
    CatalogReply,
}

#[derive(Clone, Copy, Debug)]
struct TimerHandle {
    id: TimerId,
    token: u64,
}

/// One member's SRM protocol engine.
pub struct SrmAgent {
    /// This member's persistent Source-ID.
    pub id: SourceId,
    group: GroupId,
    cfg: SrmConfig,
    store: AduStore,
    est: DistanceEstimator,
    adaptive: Option<AdaptiveTimers>,
    /// The page this member is currently viewing (reported in session
    /// messages; recovery for it gets top send priority).
    current_page: PageId,
    next_seq: BTreeMap<PageId, SeqNo>,
    requests: BTreeMap<AduName, RequestState>,
    repairs: BTreeMap<AduName, RepairState>,
    hold_down_until: BTreeMap<AduName, SimTime>,
    /// TTL used in our most recent request for each ADU (for the two-step
    /// repair re-multicast).
    request_ttls: BTreeMap<AduName, u8>,
    request_timers: BTreeMap<AduName, TimerHandle>,
    repair_timers: BTreeMap<AduName, TimerHandle>,
    page_reply_timers: BTreeMap<PageId, TimerHandle>,
    session_timer: Option<TimerHandle>,
    purposes: BTreeMap<u64, Purpose>,
    next_token: u64,
    scheduler: SessionScheduler,
    /// Whether periodic session messages run (experiments that measure a
    /// single clean recovery round turn them off and warm distances
    /// explicitly).
    pub session_enabled: bool,
    bucket: Option<TokenBucket>,
    sendq: SendQueue,
    rate_gate: Option<TimerHandle>,
    fingerprint: LossFingerprint,
    /// Peers' loss reports from session messages.
    pub neighborhood: NeighborhoodView,
    losses_detected: u64,
    unique_data_received: u64,
    delivered: Vec<Delivery>,
    /// Counters and per-episode logs.
    pub metrics: AgentMetrics,
    /// Recovery-episode event recorder (disabled by default; recording
    /// never touches the protocol's RNG or timers).
    pub obs: obs::Recorder,
    /// Transport-layer event log (chaos actions, supervision, liveness
    /// transitions).  Kept separate from the ADU-keyed recorder so
    /// golden-trace pins stay byte-identical; disabled by default.
    pub transport_obs: obs::TransportLog,
    /// Session-silence peer liveness tracker (§III-A heartbeat reading).
    /// Disabled by default; the wall-clock transport enables it.
    pub liveness: crate::liveness::PeerLiveness,
    /// Two-step local-recovery relays performed.
    pub two_step_relays: u64,
    /// The local-recovery group this member belongs to (Section VII-B2).
    recovery_group: Option<GroupId>,
    /// Pending (suppressible) group-creation timer.
    invite_timer: Option<TimerHandle>,
    /// True if this member created (rather than joined) its recovery group.
    pub created_recovery_group: bool,
    /// Repair replies go back on the group the request arrived on.
    repair_reply_groups: BTreeMap<AduName, GroupId>,
    /// Sender-side parity encoder (FEC extension).
    fec_enc: Option<ParityEncoder>,
    /// Received parities by (source, page, block_start).
    parities: BTreeMap<(SourceId, PageId, u64), Parity>,
    /// ADUs recovered locally from parity, without any request.
    pub fec_recoveries: u64,
    /// Session-message hierarchy state (Section IX-A), if enabled.
    hier: Option<HierarchyState>,
    /// Pending suppressible catalog reply.
    catalog_reply_timer: Option<TimerHandle>,
    /// Pages learned from catalogs that the application has not yet seen.
    discovered_pages: Vec<PageId>,
    /// True after a crash-restart until our pre-crash state is recovered:
    /// while set, the own-source guards are lifted so we can request our
    /// *own* past ADUs back from the group like any late joiner (§III-A —
    /// "recovery ... does not depend on the original source").
    rejoining: bool,
    /// Passive meter over data/repair bytes seen (sent + received), for
    /// §III-A's "measured adaptively" session bandwidth.
    data_meter: crate::bandwidth::RateMeter,
    /// Reused encode buffer: every outbound message is serialized here and
    /// then copied once into its on-wire [`Bytes`], so steady-state sending
    /// costs one allocation (the shared payload) instead of two.
    wire_scratch: Vec<u8>,
}

impl SrmAgent {
    /// Create an agent for member `id` in `group`.
    pub fn new(id: SourceId, group: GroupId, cfg: SrmConfig) -> Self {
        let adaptive = cfg.adaptive.map(|a| AdaptiveTimers::new(a, cfg.timers));
        let scheduler = SessionScheduler {
            bandwidth: cfg.session_bandwidth,
            fraction: cfg.session_fraction,
            msg_bytes: cfg.session_msg_bytes,
            min_interval: cfg.min_session_interval,
        };
        let mut store = AduStore::new();
        store.retention_per_stream = cfg.retention_per_stream;
        SrmAgent {
            id,
            group,
            est: DistanceEstimator::new(cfg.default_distance),
            adaptive,
            current_page: PageId::new(id, 0),
            next_seq: BTreeMap::new(),
            requests: BTreeMap::new(),
            repairs: BTreeMap::new(),
            hold_down_until: BTreeMap::new(),
            request_ttls: BTreeMap::new(),
            request_timers: BTreeMap::new(),
            repair_timers: BTreeMap::new(),
            page_reply_timers: BTreeMap::new(),
            session_timer: None,
            purposes: BTreeMap::new(),
            next_token: 0,
            scheduler,
            session_enabled: true,
            bucket: cfg.rate_limit.map(TokenBucket::new),
            sendq: SendQueue::new(),
            rate_gate: None,
            fingerprint: LossFingerprint::new(cfg.fingerprint_len),
            neighborhood: NeighborhoodView::default(),
            losses_detected: 0,
            unique_data_received: 0,
            delivered: Vec::new(),
            metrics: AgentMetrics::default(),
            obs: obs::Recorder::new(),
            transport_obs: obs::TransportLog::new(),
            liveness: crate::liveness::PeerLiveness::new(),
            two_step_relays: 0,
            recovery_group: None,
            invite_timer: None,
            created_recovery_group: false,
            repair_reply_groups: BTreeMap::new(),
            fec_enc: cfg.fec.map(|f| ParityEncoder::new(f.k)),
            parities: BTreeMap::new(),
            fec_recoveries: 0,
            hier: cfg.session_hierarchy.map(HierarchyState::new),
            catalog_reply_timer: None,
            discovered_pages: Vec::new(),
            rejoining: false,
            data_meter: crate::bandwidth::RateMeter::new(SimDuration::from_secs(30)),
            wire_scratch: Vec::new(),
            store,
            cfg,
        }
    }

    /// Current measured aggregate data bandwidth (bytes/second), trailing
    /// 30 s window over data and repairs this member sent or heard.
    pub fn measured_data_bandwidth(&mut self, now: SimTime) -> f64 {
        self.data_meter.rate(now)
    }

    /// Whether this member currently acts as a session-message
    /// representative (Section IX-A). `true` when the hierarchy is off —
    /// every member then reports globally.
    pub fn is_representative(&self) -> bool {
        self.hier.as_ref().is_none_or(|h| h.is_rep)
    }

    // ---- public API -------------------------------------------------------

    /// The live timer parameters (adaptive if enabled, else the fixed ones).
    pub fn params(&self) -> TimerParams {
        self.adaptive
            .as_ref()
            .map(|a| a.params)
            .unwrap_or(self.cfg.timers)
    }

    /// The configuration.
    pub fn config(&self) -> &SrmConfig {
        &self.cfg
    }

    /// The ADU store.
    pub fn store(&self) -> &AduStore {
        &self.store
    }

    /// The adaptive state, if adaptive timers are enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveTimers> {
        self.adaptive.as_ref()
    }

    /// The distance estimator.
    pub fn distances(&self) -> &DistanceEstimator {
        &self.est
    }

    /// Mutable distance estimator (experiment warm-up).
    pub fn distances_mut(&mut self) -> &mut DistanceEstimator {
        &mut self.est
    }

    /// Set the page this member is viewing.
    pub fn set_current_page(&mut self, page: PageId) {
        self.current_page = page;
    }

    /// The page this member is viewing.
    pub fn current_page(&self) -> PageId {
        self.current_page
    }

    /// Fraction of data for which a request timer was set (the loss rate
    /// advertised in session messages, Section VII-B).
    pub fn loss_rate(&self) -> f32 {
        let denom = self.losses_detected + self.unique_data_received;
        if denom == 0 {
            0.0
        } else {
            self.losses_detected as f32 / denom as f32
        }
    }

    /// The per-message byte size the session scheduler currently charges
    /// against the session-bandwidth budget: the configured nominal size
    /// until the first session message goes out, then the last emitted
    /// message's encoded on-wire length.
    pub fn session_msg_bytes(&self) -> f64 {
        self.scheduler.msg_bytes
    }

    /// Drain ADUs delivered to the application since the last call.
    pub fn take_delivered(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.delivered)
    }

    /// The session participants currently heard from ("Members can also
    /// use session messages in SRM to determine the current participants
    /// of the session", Section III-A): peers active within `window`.
    pub fn current_participants(&self, now: SimTime, window: SimDuration) -> Vec<SourceId> {
        self.est.active_peers(now, window)
    }

    /// Are any loss-recovery episodes still in flight?
    pub fn has_pending_recovery(&self) -> bool {
        !self.requests.is_empty()
    }

    /// Originate a new ADU on `page`. Returns its name.
    pub fn send_data(&mut self, ctx: &mut dyn Driver, page: PageId, payload: Bytes) -> AduName {
        let seq = self.next_seq.entry(page).or_insert(SeqNo::ZERO);
        let name = AduName::new(self.id, page, *seq);
        *seq = seq.next();
        self.store.insert(name, payload.clone());
        self.metrics.data_sent += 1;
        // FEC: note the ADU; a closing block yields a parity packet to send
        // right after the data.
        let parity = self
            .fec_enc
            .as_mut()
            .and_then(|enc| enc.push(self.id, page, name.seq, &payload));
        let body = Body::Data(DataBody {
            name,
            is_repair: false,
            answering: None,
            dist_to_requestor: 0.0,
            payload,
        });
        self.transmit(
            ctx,
            body,
            SendClass::NewData,
            SendOptions::for_flow(flow::DATA),
        );
        if let Some(parity) = parity {
            self.transmit(
                ctx,
                Body::Parity(parity),
                SendClass::NewData,
                SendOptions::for_flow(flow::PARITY),
            );
        }
        name
    }

    /// Multicast a page-state request (late joiner / browsing, §III-A).
    pub fn request_page_state(&mut self, ctx: &mut dyn Driver, page: PageId) {
        let body = Body::PageRequest(PageRequestBody { page });
        self.transmit(
            ctx,
            body,
            SendClass::CurrentPageRecovery,
            SendOptions::for_flow(flow::REQUEST),
        );
    }

    /// Ask the session which pages exist (§III-A: late joiners "issue page
    /// requests to learn the existence of previous pages"). Answers appear
    /// through [`SrmAgent::take_discovered_pages`].
    pub fn request_page_catalog(&mut self, ctx: &mut dyn Driver) {
        self.transmit(
            ctx,
            Body::PageCatalogRequest,
            SendClass::CurrentPageRecovery,
            SendOptions::for_flow(flow::REQUEST),
        );
    }

    /// Pages learned from catalog replies since the last call. The
    /// application decides what to do with them (ALF: e.g. wb fetches each
    /// page's state and recovers its history).
    pub fn take_discovered_pages(&mut self) -> Vec<PageId> {
        std::mem::take(&mut self.discovered_pages)
    }

    /// Send a session message immediately (also used by experiment warm-up).
    pub fn send_session_now(&mut self, ctx: &mut dyn Driver) {
        self.emit_session(ctx, self.current_page);
    }

    // ---- internals: timers -------------------------------------------------

    fn arm(&mut self, ctx: &mut dyn Driver, delay: SimDuration, purpose: Purpose) -> TimerHandle {
        let token = self.next_token;
        self.next_token += 1;
        self.purposes.insert(token, purpose);
        let id = ctx.set_timer(delay, token);
        TimerHandle { id, token }
    }

    fn disarm(&mut self, ctx: &mut dyn Driver, h: TimerHandle) {
        ctx.cancel_timer(h.id);
        self.purposes.remove(&h.token);
    }

    // ---- internals: transmission -------------------------------------------

    /// Encode and multicast a message immediately; returns the encoded
    /// on-wire byte length.
    fn send_now(&mut self, ctx: &mut dyn Driver, group: GroupId, body: Body, opts: SendOptions) -> u32 {
        let msg = Message {
            header: Header {
                sender: self.id,
                // The node's local clock, so clock skew/drift faults are
                // visible to peers' distance estimators just as NTP error
                // would be (identical to the driver's now when unfaulted).
                timestamp: ctx.local_now(),
            },
            body,
        };
        // Serialize into the agent's scratch buffer (retained across
        // sends), then copy once into the shared on-wire allocation.
        self.wire_scratch.clear();
        msg.encode_into(&mut self.wire_scratch);
        let payload = Bytes::copy_from_slice(&self.wire_scratch);
        let wire_len = payload.len() as u32;
        ctx.multicast(group, payload, opts);
        wire_len
    }

    fn transmit(&mut self, ctx: &mut dyn Driver, body: Body, class: SendClass, opts: SendOptions) {
        let group = self.group;
        self.transmit_to(ctx, group, body, class, opts);
    }

    fn transmit_to(
        &mut self,
        ctx: &mut dyn Driver,
        group: GroupId,
        body: Body,
        class: SendClass,
        opts: SendOptions,
    ) {
        let size = estimate_size(&body);
        // Outbound data/repair/parity traffic counts toward the measured
        // aggregate data bandwidth (§III-A).
        if matches!(opts.flow, flow::DATA | flow::REPAIR | flow::PARITY) {
            self.data_meter.record(ctx.now(), size as u64);
        }
        if self.bucket.is_none() {
            self.send_now(ctx, group, body, opts);
            return;
        }
        self.sendq.push(
            class,
            PendingSend {
                group,
                body,
                opts,
                size,
            },
        );
        self.drain_sendq(ctx);
    }

    fn drain_sendq(&mut self, ctx: &mut dyn Driver) {
        while let Some(size) = self.sendq.peek_size() {
            let bucket = self.bucket.as_mut().expect("drain only with a bucket");
            if bucket.try_consume(ctx.now(), size as f64) {
                let m = self.sendq.pop().expect("peeked");
                self.send_now(ctx, m.group, m.body, m.opts);
            } else {
                if self.rate_gate.is_none() {
                    // Floor the wait at 1 ms so rounding can never produce
                    // a zero-length (livelocking) gate timer.
                    let wait = bucket
                        .time_until_available(ctx.now(), size as f64)
                        .max(SimDuration::from_millis(1));
                    let h = self.arm(ctx, wait, Purpose::RateGate);
                    self.rate_gate = Some(h);
                }
                break;
            }
        }
    }

    /// Send class for recovery traffic about `page` (Section III-E
    /// priorities).
    fn recovery_class(&self, page: PageId) -> SendClass {
        if page == self.current_page {
            SendClass::CurrentPageRecovery
        } else {
            SendClass::OldPageRecovery
        }
    }

    /// Network options for a request, applying the scope policy with
    /// widening after unanswered rounds.
    fn request_opts(&self, rounds_already_sent: u32) -> SendOptions {
        let base = SendOptions::for_flow(flow::REQUEST);
        match self.cfg.scope {
            RecoveryScope::Global => base,
            RecoveryScope::Ttl(initial) => base.with_ttl(widened_ttl(initial, rounds_already_sent)),
            RecoveryScope::Admin => {
                if rounds_already_sent == 0 {
                    base.admin_scoped()
                } else {
                    base // widen to global after an unanswered round
                }
            }
        }
    }

    /// Network options for a repair answering a request that arrived with
    /// `request_ttl` / `request_admin_scoped`.
    fn repair_opts(&self, request_ttl: u8, request_admin_scoped: bool) -> SendOptions {
        let base = SendOptions::for_flow(flow::REPAIR);
        match self.cfg.scope {
            RecoveryScope::Global => base,
            // Two-step first leg: "a local repair is sent with the same TTL
            // used in the request" (Section VII-B3).
            RecoveryScope::Ttl(_) => base.with_ttl(request_ttl),
            RecoveryScope::Admin => {
                if request_admin_scoped {
                    base.admin_scoped()
                } else {
                    base
                }
            }
        }
    }

    // ---- internals: loss detection and request side -------------------------

    /// Begin recovery for each newly discovered missing ADU.
    fn start_requests(&mut self, ctx: &mut dyn Driver, missing: Vec<AduName>) {
        for name in missing {
            if name.source == self.id && !self.rejoining {
                continue; // our own stream cannot be missing (unless we
                          // crashed and are recovering our pre-crash state)
            }
            if self.requests.contains_key(&name) || self.store.has(&name) {
                continue;
            }
            self.losses_detected += 1;
            self.fingerprint.record(name);
            self.obs
                .record(ctx.now(), adu_key(name), obs::EventKind::GapDetected);
            // wb 1.59 mode uses a fixed [c, 2c] interval; the distance-
            // scaled framework uses [C1·d, (C1+C2)·d].
            let (c1, c2, dist) = match self.cfg.fixed_intervals {
                Some(f) => (1.0, 1.0, SimDuration::from_secs_f64(f.request)),
                None => {
                    let p = self.params();
                    (p.c1, p.c2, self.est.distance_to(name.source))
                }
            };
            let (state, delay) = RequestState::new(name, ctx.now(), c1, c2, dist, ctx.rng());
            if let Some(a) = self.adaptive.as_mut() {
                a.on_request_timer_set(name);
            }
            let h = self.arm(ctx, delay, Purpose::Request(name));
            self.request_timers.insert(name, h);
            self.obs.record(
                ctx.now(),
                adu_key(name),
                obs::EventKind::RequestTimerSet {
                    until: state.expire_at,
                    backoff: state.backoff_count,
                },
            );
            self.sync_request_record(&state);
            self.requests.insert(name, state);
        }
        self.maybe_create_recovery_group(ctx);
    }

    /// Group ids above this base are allocated to local-recovery groups.
    const RECOVERY_GROUP_BASE: u32 = 0x4000_0000;

    /// Section VII-B2: once losses look persistent, arm a random timer to
    /// allocate a recovery group and invite the neighborhood. The timer is
    /// suppressed by someone else's invitation — the same timer-and-damping
    /// idiom as requests, so one group forms per neighborhood instead of
    /// one per member.
    fn maybe_create_recovery_group(&mut self, ctx: &mut dyn Driver) {
        let Some(rg) = self.cfg.recovery_groups else {
            return;
        };
        if self.recovery_group.is_some()
            || self.invite_timer.is_some()
            || self.losses_detected < rg.min_losses
        {
            return;
        }
        // Uniform over roughly one neighborhood diameter.
        let spread = self
            .cfg
            .default_distance
            .mul_f64(2.0 * rg.invite_ttl.max(1) as f64);
        let delay = crate::timers::TimerInterval {
            lo: 0.0,
            hi: spread.as_secs_f64(),
        }
        .draw(ctx.rng());
        let h = self.arm(ctx, delay, Purpose::RecoveryInviteTimer);
        self.invite_timer = Some(h);
    }

    /// The (unsuppressed) invite timer fired: create the group and invite.
    fn invite_timer_fired(&mut self, ctx: &mut dyn Driver) {
        self.invite_timer = None;
        let Some(rg) = self.cfg.recovery_groups else {
            return;
        };
        if self.recovery_group.is_some() {
            return;
        }
        let group = GroupId(Self::RECOVERY_GROUP_BASE + self.id.0 as u32);
        ctx.join(group);
        self.recovery_group = Some(group);
        self.created_recovery_group = true;
        let body = Body::RecoveryInvite(crate::wire::RecoveryInviteBody { group: group.0 });
        self.transmit(
            ctx,
            body,
            SendClass::CurrentPageRecovery,
            SendOptions::for_flow(flow::REQUEST).with_ttl(rg.invite_ttl),
        );
    }

    /// A scoped recovery-group invitation arrived; "nearby" members join,
    /// and any pending creation timer of our own is suppressed.
    fn handle_recovery_invite(&mut self, ctx: &mut dyn Driver, group: u32) {
        if self.cfg.recovery_groups.is_none() {
            return;
        }
        if let Some(h) = self.invite_timer.take() {
            self.disarm(ctx, h);
        }
        if self.recovery_group.is_some() {
            return;
        }
        let g = GroupId(group);
        ctx.join(g);
        self.recovery_group = Some(g);
    }

    fn sync_request_record(&mut self, st: &RequestState) {
        let rtt = SimDuration::from_secs_f64(st.dist_to_source.as_secs_f64() * 2.0);
        let rec = self
            .metrics
            .recoveries
            .entry(st.name)
            .or_insert(RecoveryRecord {
                name: st.name,
                detected_at: st.detected_at,
                recovered_at: None,
                request_delay: None,
                requests_sent: 0,
                requests_observed: 0,
                rtt_to_source: rtt,
                gave_up: false,
            });
        rec.request_delay = st.request_delay();
        rec.requests_sent = st.requests_sent;
        rec.requests_observed = st.requests_observed;
    }

    fn sync_repair_record(&mut self, st: &RepairState) {
        let rec = self.metrics.repairs.entry(st.name).or_insert(RepairRecord {
            name: st.name,
            set_at: st.set_at,
            repair_delay: None,
            sent: false,
            repairs_observed: 0,
        });
        rec.repair_delay = st.repair_delay();
        rec.sent = st.sent;
        rec.repairs_observed = st.repairs_observed;
    }

    fn request_timer_fired(&mut self, ctx: &mut dyn Driver, name: AduName) {
        let Some(mut st) = self.requests.remove(&name) else {
            return;
        };
        self.request_timers.remove(&name);
        // Give up after the configured number of transmissions.
        if let Some(max) = self.cfg.max_request_rounds {
            if st.requests_sent >= max {
                if let Some(rec) = self.metrics.recoveries.get_mut(&name) {
                    rec.gave_up = true;
                }
                self.obs
                    .record(ctx.now(), adu_key(name), obs::EventKind::GaveUp);
                return;
            }
        }
        let had_event = st.first_request_event_at.is_some();
        let rounds_before = st.requests_sent;
        let redelay = st.on_timer_expired(ctx.now(), self.cfg.backoff, ctx.rng());
        if !had_event {
            let rtt = st.dist_to_source.as_secs_f64() * 2.0;
            if let (Some(d), Some(a)) = (st.request_delay(), self.adaptive.as_mut()) {
                if rtt > 0.0 {
                    a.on_request_delay(d.as_secs_f64() / rtt);
                }
            }
        }
        // Transmit the request. The first round uses the local-recovery
        // group if we belong to one (Section VII-B2); unanswered rounds
        // widen back to the whole session.
        let opts = self.request_opts(rounds_before);
        self.request_ttls.insert(name, opts.ttl);
        let dist = self.est.distance_to(name.source).as_secs_f64();
        let body = Body::Request(RequestBody {
            name,
            dist_to_source: dist,
        });
        let class = self.recovery_class(name.page);
        let group = match (rounds_before, self.recovery_group) {
            (0, Some(g)) => g,
            _ => self.group,
        };
        self.transmit_to(ctx, group, body, class, opts);
        self.metrics.requests_sent += 1;
        self.obs.record(
            ctx.now(),
            adu_key(name),
            obs::EventKind::RequestSent {
                round: rounds_before + 1,
            },
        );
        if st.requests_observed > 1 {
            if let Some(a) = self.adaptive.as_mut() {
                a.on_duplicate_request();
            }
        }
        if let Some(a) = self.adaptive.as_mut() {
            a.on_request_sent();
        }
        // Re-arm the (backed-off) timer to wait for the repair.
        let h = self.arm(ctx, redelay, Purpose::Request(name));
        self.request_timers.insert(name, h);
        self.obs.record(
            ctx.now(),
            adu_key(name),
            obs::EventKind::RequestTimerSet {
                until: st.expire_at,
                backoff: st.backoff_count,
            },
        );
        self.sync_request_record(&st);
        self.requests.insert(name, st);
    }

    /// A request from another member arrived for a name we are also missing.
    fn suppress_or_backoff(
        &mut self,
        ctx: &mut dyn Driver,
        name: AduName,
        from: SourceId,
        their_dist: f64,
    ) {
        let Some(mut st) = self.requests.remove(&name) else {
            return;
        };
        self.obs.record(
            ctx.now(),
            adu_key(name),
            obs::EventKind::RequestHeard { from: from.0 },
        );
        let had_event = st.first_request_event_at.is_some();
        let action = st.on_request_heard(ctx.now(), self.cfg.backoff, ctx.rng());
        if !had_event {
            let rtt = st.dist_to_source.as_secs_f64() * 2.0;
            if let (Some(d), Some(a)) = (st.request_delay(), self.adaptive.as_mut()) {
                if rtt > 0.0 {
                    a.on_request_delay(d.as_secs_f64() / rtt);
                }
            }
        }
        if let Some(a) = self.adaptive.as_mut() {
            a.on_duplicate_request();
            if st.requests_sent > 0 {
                a.on_far_duplicate_request(their_dist, st.dist_to_source.as_secs_f64());
            }
        }
        match action {
            RequestAction::Rearm(delay) => {
                if let Some(h) = self.request_timers.remove(&name) {
                    self.disarm(ctx, h);
                }
                let h = self.arm(ctx, delay, Purpose::Request(name));
                self.request_timers.insert(name, h);
                self.obs.record(
                    ctx.now(),
                    adu_key(name),
                    obs::EventKind::RequestBackoff {
                        until: st.expire_at,
                        backoff: st.backoff_count,
                    },
                );
            }
            RequestAction::None => {
                self.obs
                    .record(ctx.now(), adu_key(name), obs::EventKind::RequestSuppressed);
            }
        }
        self.sync_request_record(&st);
        self.requests.insert(name, st);
    }

    // ---- internals: repair side ---------------------------------------------

    fn maybe_schedule_repair(&mut self, ctx: &mut dyn Driver, name: AduName, pkt: &Packet, req: &RequestBody, sender: SourceId) {
        // Hold-down: "host B ignores requests for data for 3·d_SB seconds
        // after sending or receiving a repair for that data."
        if let Some(&until) = self.hold_down_until.get(&name) {
            if ctx.now() < until {
                self.metrics.requests_held_down += 1;
                self.obs
                    .record(ctx.now(), adu_key(name), obs::EventKind::RequestHeldDown);
                return;
            }
        }
        if self.repairs.get(&name).is_some_and(|r| !r.sent || r.timer.is_some()) {
            // A repair timer is already pending; duplicate requests must not
            // trigger duplicate repairs.
            return;
        }
        let _ = req;
        // wb 1.59 mode: [d, 2d] with d = 100 ms at the original source,
        // 200 ms elsewhere; framework mode: [D1·d, (D1+D2)·d].
        let (d1, d2, dist) = match self.cfg.fixed_intervals {
            Some(f) => {
                let base = if name.source == self.id {
                    f.repair_source
                } else {
                    f.repair_other
                };
                (1.0, 1.0, SimDuration::from_secs_f64(base))
            }
            None => {
                let p = self.params();
                (p.d1, p.d2, self.est.distance_to(sender))
            }
        };
        let (mut st, delay) = RepairState::new(
            name,
            ctx.now(),
            sender,
            pkt.initial_ttl,
            pkt.admin_scoped,
            d1,
            d2,
            dist,
            ctx.rng(),
        );
        if let Some(a) = self.adaptive.as_mut() {
            a.on_repair_timer_set(name);
        }
        // Answer on whatever group the request came in on (session group or
        // a local-recovery group).
        self.repair_reply_groups.insert(name, pkt.group);
        let h = self.arm(ctx, delay, Purpose::Repair(name));
        st.timer = Some(h.id);
        self.repair_timers.insert(name, h);
        self.obs.record(
            ctx.now(),
            adu_key(name),
            obs::EventKind::RepairTimerSet {
                until: st.expire_at,
            },
        );
        self.sync_repair_record(&st);
        self.repairs.insert(name, st);
    }

    fn repair_timer_fired(&mut self, ctx: &mut dyn Driver, name: AduName) {
        let Some(mut st) = self.repairs.remove(&name) else {
            return;
        };
        self.repair_timers.remove(&name);
        st.timer = None;
        // Read through the cache: an ADU evicted from RAM but durable in
        // the log is still served (disk-backed repair).
        let disk_before = self.store.disk_fetches();
        let Some(payload) = self.store.fetch(&name) else {
            return; // evicted since the request arrived, and not durable
        };
        if self.store.disk_fetches() > disk_before {
            self.transport_obs
                .record(ctx.now(), obs::TransportEventKind::StoreDiskRepair);
        }
        let had_event = st.first_repair_event_at.is_some();
        st.on_timer_expired(ctx.now());
        if !had_event {
            let rtt = st.dist_to_requestor.as_secs_f64() * 2.0;
            if let (Some(d), Some(a)) = (st.repair_delay(), self.adaptive.as_mut()) {
                if rtt > 0.0 {
                    a.on_repair_delay(d.as_secs_f64() / rtt);
                }
            }
        }
        let two_step = matches!(self.cfg.scope, RecoveryScope::Ttl(_));
        let body = Body::Data(DataBody {
            name,
            is_repair: true,
            answering: two_step.then_some(st.requestor),
            dist_to_requestor: st.dist_to_requestor.as_secs_f64(),
            payload,
        });
        let opts = self.repair_opts(st.request_ttl, st.request_admin_scoped);
        let class = self.recovery_class(name.page);
        let group = self
            .repair_reply_groups
            .remove(&name)
            .unwrap_or(self.group);
        self.transmit_to(ctx, group, body, class, opts);
        self.metrics.repairs_sent += 1;
        self.obs
            .record(ctx.now(), adu_key(name), obs::EventKind::RepairSent);
        if let Some(a) = self.adaptive.as_mut() {
            a.on_repair_sent();
        }
        self.set_hold_down(ctx.now(), name);
        self.sync_repair_record(&st);
        self.repairs.insert(name, st);
    }

    fn set_hold_down(&mut self, now: SimTime, name: AduName) {
        let d = self.est.distance_to(name.source);
        let until = now + d.mul_f64(self.cfg.hold_down);
        self.obs
            .record(now, adu_key(name), obs::EventKind::HoldDownEntered { until });
        self.hold_down_until.insert(name, until);
    }

    // ---- internals: message handlers -----------------------------------------

    fn handle_data(&mut self, ctx: &mut dyn Driver, pkt: &Packet, hdr: &Header, d: DataBody) {
        if d.is_repair {
            self.metrics.repairs_received += 1;
        } else {
            self.metrics.data_received += 1;
        }
        self.data_meter.record(ctx.now(), pkt.size as u64);
        let name = d.name;
        // Gap detection must run before insertion (insertion advances the
        // stream's high-water mark); the arriving name itself is excluded.
        let mut missing = self.store.note_exists(name.source, name.page, name.seq);
        missing.retain(|m| *m != name);
        let fresh = self.store.insert(name, d.payload.clone());
        if fresh {
            self.unique_data_received += 1;
            self.delivered.push(Delivery {
                name,
                payload: d.payload.clone(),
                via_repair: d.is_repair,
            });
        }
        // Seeing our own stream (a repair of pre-crash data after a
        // restart) must advance our sequence allocator past it, or new
        // ADUs would collide with recovered ones.
        if name.source == self.id {
            let e = self.next_seq.entry(name.page).or_insert(SeqNo::ZERO);
            if name.seq.0 >= e.0 {
                *e = SeqNo(name.seq.0 + 1);
            }
        }
        self.start_requests(ctx, missing);
        // Complete any pending recovery for this name.
        let via = if d.is_repair {
            obs::RecoveryVia::Repair
        } else {
            obs::RecoveryVia::Original
        };
        self.complete_recovery(ctx, name, via);
        // A block member arriving may enable parity reconstruction of a
        // sibling.
        if let Some(key) = self.parity_key_for(&name) {
            self.try_fec(ctx, key);
        }
        if d.is_repair {
            // Repair suppression and duplicate accounting.
            if self.repairs.contains_key(&name) {
                self.obs.record(
                    ctx.now(),
                    adu_key(name),
                    obs::EventKind::RepairHeard {
                        from: hdr.sender.0,
                    },
                );
            }
            if let Some(st) = self.repairs.get_mut(&name) {
                let had_event = st.first_repair_event_at.is_some();
                st.on_repair_heard(ctx.now());
                if !had_event {
                    let rtt = st.dist_to_requestor.as_secs_f64() * 2.0;
                    if let (Some(del), Some(a)) = (st.repair_delay(), self.adaptive.as_mut()) {
                        if rtt > 0.0 {
                            a.on_repair_delay(del.as_secs_f64() / rtt);
                        }
                    }
                }
                if st.repairs_observed > 1 {
                    if let Some(a) = self.adaptive.as_mut() {
                        a.on_duplicate_repair();
                    }
                }
                let st2 = st.clone();
                if let Some(h) = self.repair_timers.remove(&name) {
                    self.disarm(ctx, h);
                    self.obs.record(
                        ctx.now(),
                        adu_key(name),
                        obs::EventKind::RepairTimerCancelled,
                    );
                }
                if let Some(stm) = self.repairs.get_mut(&name) {
                    stm.timer = None;
                }
                self.sync_repair_record(&st2);
            }
            self.set_hold_down(ctx.now(), name);
            // Two-step local recovery: a repair naming us as the requestor
            // is re-multicast with the TTL of our original request.
            if d.answering == Some(self.id) {
                if let RecoveryScope::Ttl(initial) = self.cfg.scope {
                    let ttl = self.request_ttls.get(&name).copied().unwrap_or(initial);
                    let body = Body::Data(DataBody {
                        name,
                        is_repair: true,
                        answering: None,
                        dist_to_requestor: 0.0,
                        payload: d.payload,
                    });
                    let opts = SendOptions::for_flow(flow::REPAIR).with_ttl(ttl);
                    let class = self.recovery_class(name.page);
                    self.transmit(ctx, body, class, opts);
                    self.two_step_relays += 1;
                    self.metrics.repairs_sent += 1;
                }
            }
        }
        let _ = hdr;
    }

    /// Close out a loss-recovery episode for `name` (data arrived, by
    /// repair, original transmission, or FEC reconstruction).
    fn complete_recovery(&mut self, ctx: &mut dyn Driver, name: AduName, via: obs::RecoveryVia) {
        if let Some(st) = self.requests.remove(&name) {
            if let Some(h) = self.request_timers.remove(&name) {
                self.disarm(ctx, h);
            }
            self.sync_request_record(&st);
            if let Some(rec) = self.metrics.recoveries.get_mut(&name) {
                rec.recovered_at = Some(ctx.now());
            }
            self.obs
                .record(ctx.now(), adu_key(name), obs::EventKind::Recovered { via });
        }
    }

    /// The stored parity block covering `name`, if any.
    fn parity_key_for(&self, name: &AduName) -> Option<(SourceId, PageId, u64)> {
        let lo = (name.source, name.page, 0u64);
        let hi = (name.source, name.page, name.seq.0);
        self.parities
            .range(lo..=hi)
            .next_back()
            .filter(|(&(_, _, start), p)| name.seq.0 < start + p.k as u64)
            .map(|(&k, _)| k)
    }

    /// A parity packet arrived: it both announces the block's existence
    /// (like a session message would) and may immediately reconstruct a
    /// single missing ADU.
    fn handle_parity(&mut self, ctx: &mut dyn Driver, p: Parity) {
        if p.source == self.id || p.k == 0 {
            return;
        }
        let last = SeqNo(p.block_start.0 + p.k as u64 - 1);
        let missing = self.store.note_exists(p.source, p.page, last);
        let key = (p.source, p.page, p.block_start.0);
        self.parities.insert(key, p);
        self.try_fec(ctx, key);
        // Whatever parity could not fix goes through normal recovery.
        let still: Vec<AduName> = missing
            .into_iter()
            .filter(|n| !self.store.has(n))
            .collect();
        self.start_requests(ctx, still);
    }

    /// Attempt XOR reconstruction for a stored parity block; on success the
    /// recovered ADU is treated exactly like a received repair.
    fn try_fec(&mut self, ctx: &mut dyn Driver, key: (SourceId, PageId, u64)) {
        let Some(p) = self.parities.get(&key).cloned() else {
            return;
        };
        let have = |seq: SeqNo| self.store.get(&AduName::new(p.source, p.page, seq));
        if let Some((seq, data)) = reconstruct(&p, &have) {
            let name = AduName::new(p.source, p.page, seq);
            self.fec_recoveries += 1;
            if self.store.insert(name, data.clone()) {
                self.unique_data_received += 1;
                self.delivered.push(Delivery {
                    name,
                    payload: data,
                    via_repair: true,
                });
            }
            self.complete_recovery(ctx, name, obs::RecoveryVia::Fec);
        }
        // Drop the parity once its whole block is held.
        let complete = (0..p.k as u64)
            .all(|i| self.store.has(&AduName::new(p.source, p.page, SeqNo(p.block_start.0 + i))));
        if complete {
            self.parities.remove(&key);
        }
    }

    fn handle_request(&mut self, ctx: &mut dyn Driver, pkt: &Packet, hdr: &Header, r: RequestBody) {
        self.metrics.requests_received += 1;
        let name = r.name;
        if self.requests.contains_key(&name) {
            self.suppress_or_backoff(ctx, name, hdr.sender, r.dist_to_source);
        } else if self.store.has(&name) {
            self.maybe_schedule_repair(ctx, name, pkt, &r, hdr.sender);
        } else if name.source != self.id {
            // We learn from the request that this data exists: start our own
            // recovery, immediately suppressed by the request just heard.
            let missing = self.store.note_exists(name.source, name.page, name.seq);
            self.start_requests(ctx, missing);
            if self.requests.contains_key(&name) {
                self.suppress_or_backoff(ctx, name, hdr.sender, r.dist_to_source);
            }
        }
    }

    fn handle_session(&mut self, ctx: &mut dyn Driver, pkt: &Packet, hdr: &Header, s: SessionBody) {
        self.metrics.session_received += 1;
        // Hierarchy bookkeeping: a *global* session message reveals a
        // representative; the carried initial TTL tells how far away.
        if let Some(h) = self.hier.as_mut() {
            if pkt.initial_ttl == netsim::TTL_GLOBAL {
                h.on_global_session(self.id, hdr.sender, pkt.hops_traveled(), ctx.now());
            }
        }
        // Echo processing: find the echo of our own timestamp.
        for e in &s.echoes {
            if e.peer == self.id {
                let local = ctx.local_now();
                self.est.process_echo(hdr.sender, e, local);
            }
        }
        self.neighborhood
            .update(hdr.sender, s.loss_rate, s.loss_fingerprint.clone());
        // Tail-loss detection from the reported state. A rejoining member
        // treats reports about its own pre-crash stream like anyone else's:
        // that is what lets session messages drive its state recovery.
        let mut missing = Vec::new();
        for (src, seq) in &s.state {
            if *src == self.id && !self.rejoining {
                continue;
            }
            missing.extend(self.store.note_exists(*src, s.page, *seq));
        }
        self.start_requests(ctx, missing);
        // A session message for a page suppresses our pending page reply.
        if let Some(h) = self.page_reply_timers.remove(&s.page) {
            self.disarm(ctx, h);
        }
    }

    fn handle_page_request(&mut self, ctx: &mut dyn Driver, hdr: &Header, page: PageId) {
        // Answer (after a suppressible delay) if we know anything about the
        // page. The reply is a session message scoped to that page.
        if self.store.page_state(page).is_empty() {
            return;
        }
        if self.page_reply_timers.contains_key(&page) {
            return;
        }
        let p = self.params();
        let dist = self.est.distance_to(hdr.sender);
        let delay =
            crate::timers::TimerInterval::repair(p.d1, p.d2, dist).draw(ctx.rng());
        let h = self.arm(ctx, delay, Purpose::PageReply(page));
        self.page_reply_timers.insert(page, h);
    }

    /// A catalog request arrived: schedule a suppressible reply (the same
    /// timer-and-damping idiom as repairs).
    fn handle_catalog_request(&mut self, ctx: &mut dyn Driver, hdr: &Header) {
        if self.store.known_pages().is_empty() || self.catalog_reply_timer.is_some() {
            return;
        }
        let p = self.params();
        let dist = self.est.distance_to(hdr.sender);
        let delay = crate::timers::TimerInterval::repair(p.d1, p.d2, dist).draw(ctx.rng());
        let h = self.arm(ctx, delay, Purpose::CatalogReply);
        self.catalog_reply_timer = Some(h);
    }

    /// A catalog arrived: suppress our own pending reply and surface any
    /// new pages to the application.
    fn handle_catalog(&mut self, ctx: &mut dyn Driver, pages: Vec<PageId>) {
        if let Some(h) = self.catalog_reply_timer.take() {
            self.disarm(ctx, h);
        }
        let known = self.store.known_pages();
        for p in pages {
            if !known.contains(&p) && !self.discovered_pages.contains(&p) {
                self.discovered_pages.push(p);
            }
        }
        // A rejoining member chases every discovered page's state itself
        // rather than waiting for an application to do it: the page replies
        // (session messages) then drive gap detection for the lost history.
        if self.rejoining {
            for p in std::mem::take(&mut self.discovered_pages) {
                self.request_page_state(ctx, p);
            }
        }
    }

    fn emit_session(&mut self, ctx: &mut dyn Driver, page: PageId) {
        let body = Body::Session(SessionBody {
            page,
            state: self.store.page_state(page),
            echoes: self.est.make_echoes(ctx.local_now()),
            loss_rate: self.loss_rate(),
            loss_fingerprint: self.fingerprint.names(),
        });
        // Section IX-A: representatives report globally; everyone else with
        // just enough scope to reach their representative.
        let mut opts = SendOptions::for_flow(flow::SESSION);
        if let Some(h) = self.hier.as_mut() {
            if let SessionScope::Local = h.decide(ctx.now()) {
                opts = opts.with_ttl(h.cfg.local_ttl);
            }
        }
        let group = self.group;
        let wire_len = self.send_now(ctx, group, body, opts);
        // §III-A's 5% cap is on bytes actually on the wire: size the next
        // interval from this message's *encoded* length (it grows with page
        // state, echoes, and the loss fingerprint), not the configured
        // nominal estimate — which on a real transport under-counts and
        // would overspend the session budget.
        self.scheduler.msg_bytes = f64::from(wire_len);
        self.metrics.session_sent += 1;
    }

    fn schedule_session(&mut self, ctx: &mut dyn Driver) {
        let group_size = self.est.peer_count() + 1;
        // §III-A: scale to the measured aggregate data bandwidth when so
        // configured, rather than a static allocation.
        if self.cfg.measured_session_bandwidth {
            self.scheduler.bandwidth = self.data_meter.rate(ctx.now()).max(1.0);
        }
        let mut delay = self.scheduler.next_interval(group_size, ctx.rng());
        if delay > self.cfg.max_session_interval {
            delay = self.cfg.max_session_interval;
        }
        let h = self.arm(ctx, delay, Purpose::Session);
        self.session_timer = Some(h);
    }
}

/// Rough byte size of a body for rate-limiter accounting.
fn estimate_size(body: &Body) -> u32 {
    let base = 17u32; // header + tag
    match body {
        Body::Data(d) => base + 38 + d.payload.len() as u32,
        Body::Request(_) => base + 36,
        Body::Session(s) => {
            base + 24
                + 16 * s.state.len() as u32
                + 24 * s.echoes.len() as u32
                + 28 * s.loss_fingerprint.len() as u32
        }
        Body::PageRequest(_) => base + 12,
        Body::Parity(p) => base + 29 + p.xor_payload.len() as u32,
        Body::RecoveryInvite(_) => base + 4,
        Body::PageCatalogRequest => base,
        Body::PageCatalog(pages) => base + 4 + 12 * pages.len() as u32,
    }
}

/// Transport-agnostic handler entry points (the driver seam).
///
/// These are the agent's real event handlers: any [`Driver`] — the
/// `netsim` simulator or a wall-clock UDP runtime — feeds packets and
/// timer expiries through them. The [`netsim::Application`] impl below is
/// a thin forwarder, so simulation behaviour is exactly the driver-seam
/// behaviour.
impl SrmAgent {
    /// The member came up: join the session group and start the session-
    /// message schedule.
    pub fn drive_start(&mut self, ctx: &mut dyn Driver) {
        ctx.join(self.group);
        if self.session_enabled {
            self.schedule_session(ctx);
        }
    }

    /// Record a liveness transition as a typed transport event.
    fn record_liveness(&mut self, at: SimTime, tr: crate::liveness::Transition) {
        use crate::liveness::PeerState;
        let kind = match tr.to {
            PeerState::Alive => obs::TransportEventKind::PeerAlive { peer: tr.peer.0 },
            PeerState::Suspect => obs::TransportEventKind::PeerSuspect { peer: tr.peer.0 },
            PeerState::Dead => obs::TransportEventKind::PeerDead { peer: tr.peer.0 },
        };
        self.transport_obs.record(at, kind);
    }

    /// The member's host crashed: full loss of *volatile* protocol state.
    ///
    /// Rebuilds from scratch, carrying over only the identity,
    /// configuration, and the observer-side metrics (the experiment is
    /// watching the crash, the member is not). If a durability layer is
    /// attached it survives too — but first its own [`crate::store::Persistence::crash`]
    /// runs, dropping whatever was appended and never synced, so the log
    /// holds exactly what real stable storage would after a power cut.
    pub fn drive_crash(&mut self) {
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.drop_inflight();
        metrics.crashes += 1;
        let obs = std::mem::take(&mut self.obs);
        let transport_obs = std::mem::take(&mut self.transport_obs);
        let liveness = std::mem::take(&mut self.liveness);
        let persistence = self.store.take_persistence();
        let cache_per_stream = self.store.cache_per_stream;
        let evictions = self.store.evictions;
        let disk_fetches = self.store.disk_fetches;
        let session_enabled = self.session_enabled;
        *self = SrmAgent::new(self.id, self.group, self.cfg.clone());
        self.session_enabled = session_enabled;
        self.metrics = metrics;
        self.obs = obs;
        self.transport_obs = transport_obs;
        self.liveness = liveness;
        if let Some(mut p) = persistence {
            p.crash();
            self.store.cache_per_stream = cache_per_stream;
            self.store.evictions = evictions;
            self.store.disk_fetches = disk_fetches;
            self.store.attach_persistence(p);
        }
    }

    /// The member's host came back up after a crash.
    ///
    /// A durable member first replays its log: the page catalog, high-water
    /// marks, and own-stream sequence counters come back from stable
    /// storage, so it restarts as a repair-capable peer — the PR 1
    /// full-state-loss behavior applies only when no backend is attached.
    /// Either way the member then rejoins as a late joiner (§III-A):
    /// `rejoining` lifts the own-source guards so the unsynced tail (and
    /// anything published while it was down) is chased from the group.
    pub fn drive_restart(&mut self, ctx: &mut dyn Driver) {
        if self.store.has_persistence() {
            if let Some(summary) = self.store.rehydrate() {
                self.resume_from_rehydrate(&summary);
                self.transport_obs.record(
                    ctx.now(),
                    obs::TransportEventKind::StoreRehydrate {
                        adus: summary.names.len() as u64,
                        segments: summary.segments,
                        truncated_bytes: summary.truncated_bytes,
                    },
                );
            }
        }
        self.rejoining = true;
        ctx.join(self.group);
        if self.session_enabled {
            self.schedule_session(ctx);
        }
        self.request_page_catalog(ctx);
    }

    /// Attach a durability layer to the ADU store and replay it
    /// immediately. This is the single rehydrate path: the wall-clock
    /// runtime calls it at startup (`srm-node --store`) and the
    /// fault-injected simulator reaches the same code through
    /// [`SrmAgent::drive_restart`].
    ///
    /// `cache_per_stream` bounds the in-memory payload cache (spill to the
    /// log beyond it); `None` keeps everything resident while still
    /// logging. Returns the replay summary.
    pub fn attach_durable_store(
        &mut self,
        p: Box<dyn crate::store::Persistence>,
        cache_per_stream: Option<usize>,
    ) -> crate::store::Rehydrated {
        self.store.cache_per_stream = cache_per_stream;
        self.store.attach_persistence(p);
        let summary = self.store.rehydrate().expect("persistence just attached");
        self.resume_from_rehydrate(&summary);
        summary
    }

    /// Resume volatile state implied by a rehydrated catalog: our own
    /// streams' next sequence numbers continue after the highest durable
    /// ADU, so a restarted source never reuses a name for different data
    /// (up to the last fsync; an unsynced own tail is additionally fenced
    /// by the session state learned while `rejoining`).
    fn resume_from_rehydrate(&mut self, summary: &crate::store::Rehydrated) {
        // Resume viewing the page we were last working on (the log's final
        // append): session messages then advertise the rehydrated state,
        // which is what lets peers detect and request what they missed
        // while we were down.
        if let Some(last) = summary.last_appended {
            self.current_page = last.page;
        }
        for name in &summary.names {
            if name.source != self.id {
                continue;
            }
            let next = self.next_seq.entry(name.page).or_insert(SeqNo::ZERO);
            if name.seq.next() > *next {
                *next = name.seq.next();
            }
        }
    }

    /// Force the durable store onto stable storage (clean shutdown).
    pub fn flush_store(&mut self) {
        self.store.flush();
    }

    /// A packet addressed to a group this member has joined arrived.
    pub fn drive_packet(&mut self, ctx: &mut dyn Driver, pkt: &Packet) {
        let msg = match Message::decode(pkt.payload.clone()) {
            Ok(m) => m,
            Err(_) => {
                self.metrics.decode_errors += 1;
                return;
            }
        };
        self.metrics.valid_messages += 1;
        if msg.header.sender == self.id {
            return; // stale loopback; ignore our own traffic
        }
        self.est
            .note_timestamp(msg.header.sender, msg.header.timestamp, ctx.local_now());
        if let Some(tr) = self.liveness.note_heard(msg.header.sender, ctx.now()) {
            self.record_liveness(ctx.now(), tr);
        }
        let hdr = msg.header;
        match msg.body {
            Body::Data(d) => self.handle_data(ctx, pkt, &hdr, d),
            Body::Request(r) => self.handle_request(ctx, pkt, &hdr, r),
            Body::Session(s) => self.handle_session(ctx, pkt, &hdr, s),
            Body::PageRequest(p) => self.handle_page_request(ctx, &hdr, p.page),
            Body::Parity(p) => self.handle_parity(ctx, p),
            Body::RecoveryInvite(i) => self.handle_recovery_invite(ctx, i.group),
            Body::PageCatalogRequest => self.handle_catalog_request(ctx, &hdr),
            Body::PageCatalog(pages) => self.handle_catalog(ctx, pages),
        }
    }

    /// A previously armed timer fired with its `token`.
    pub fn drive_timer(&mut self, ctx: &mut dyn Driver, token: u64) {
        let Some(purpose) = self.purposes.remove(&token) else {
            return; // cancelled or stale
        };
        match purpose {
            Purpose::Request(name) => self.request_timer_fired(ctx, name),
            Purpose::Repair(name) => self.repair_timer_fired(ctx, name),
            Purpose::Session => {
                if self.liveness.is_enabled() {
                    let interval = self
                        .scheduler
                        .nominal_interval(self.est.peer_count() + 1);
                    for tr in self.liveness.sweep(ctx.now(), interval) {
                        self.record_liveness(ctx.now(), tr);
                    }
                }
                self.emit_session(ctx, self.current_page);
                self.schedule_session(ctx);
            }
            Purpose::PageReply(page) => {
                self.page_reply_timers.remove(&page);
                self.emit_session(ctx, page);
            }
            Purpose::RateGate => {
                self.rate_gate = None;
                self.drain_sendq(ctx);
            }
            Purpose::RecoveryInviteTimer => self.invite_timer_fired(ctx),
            Purpose::CatalogReply => {
                self.catalog_reply_timer = None;
                let body = Body::PageCatalog(self.store.known_pages());
                self.transmit(
                    ctx,
                    body,
                    SendClass::CurrentPageRecovery,
                    SendOptions::for_flow(flow::SESSION),
                );
            }
        }
    }
}

impl Application for SrmAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.drive_start(ctx);
    }

    fn on_crash(&mut self) {
        self.drive_crash();
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.drive_restart(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        self.drive_packet(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.drive_timer(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::generators::chain;
    use netsim::loss::OneShotLinkDrop;
    use netsim::{NodeId, Simulator};

    const GROUP: GroupId = GroupId(7);

    fn page(src: u64) -> PageId {
        PageId::new(SourceId(src), 0)
    }

    /// Build a chain of SRM agents with sessions disabled and distances
    /// pre-warmed to the true values.
    fn chain_session(n: usize, cfg: &SrmConfig) -> Simulator<SrmAgent> {
        let topo = chain(n);
        let mut sim = Simulator::new(topo, 99);
        for i in 0..n {
            let mut a = SrmAgent::new(SourceId(i as u64), GROUP, cfg.clone());
            a.session_enabled = false;
            // Everyone views node 0's page, like a wb session looking at
            // the presenter's slide.
            a.set_current_page(page(0));
            for j in 0..n {
                if i != j {
                    a.distances_mut().set_distance(
                        SourceId(j as u64),
                        SimDuration::from_secs((i as i64 - j as i64).unsigned_abs()),
                    );
                }
            }
            sim.install(NodeId(i as u32), a);
            sim.join(NodeId(i as u32), GROUP);
        }
        sim
    }

    #[test]
    fn data_flows_end_to_end() {
        let mut sim = chain_session(4, &SrmConfig::fixed(4));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"hello"));
        });
        sim.run_until_idle(SimTime::from_secs(100));
        for i in 1..4u32 {
            let got = sim.app_mut(NodeId(i)).unwrap().take_delivered();
            assert_eq!(got.len(), 1, "node {i}");
            assert_eq!(got[0].payload, Bytes::from_static(b"hello"));
            assert!(!got[0].via_repair);
        }
    }

    #[test]
    fn single_drop_is_recovered() {
        let mut sim = chain_session(5, &SrmConfig::fixed(5));
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(
            l23,
            NodeId(0),
            flow::DATA,
        )));
        // Packet 0 is dropped on (2,3); packet 1 exposes the gap.
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"p0"));
        });
        sim.run_until(SimTime::from_secs(1));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"p1"));
        });
        assert!(sim.run_until_idle(SimTime::from_secs(1000)));
        for i in 3..5u32 {
            let a = sim.app(NodeId(i)).unwrap();
            assert!(a.metrics.all_recovered(), "node {i}");
            assert_eq!(a.store().len(), 2, "node {i} has both ADUs");
        }
        // Exactly one loss episode was logged downstream.
        let recs = &sim.app(NodeId(4)).unwrap().metrics.recoveries;
        assert_eq!(recs.len(), 1);
        assert!(recs.values().next().unwrap().recovered_at.is_some());
    }

    #[test]
    fn chain_recovery_is_deterministic_with_c2_zero() {
        // Section IV-A: C1 = D1 = 1, C2 = D2 = 0 gives deterministic
        // suppression: one request, one repair.
        let mut cfg = SrmConfig::default();
        cfg.timers = TimerParams {
            c1: 1.0,
            c2: 0.0,
            d1: 1.0,
            d2: 0.0,
        };
        let n = 8;
        let mut sim = chain_session(n, &cfg);
        let l = sim.topology().link_between(NodeId(3), NodeId(4)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l, NodeId(0), flow::DATA)));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"p0"));
        });
        sim.run_until(SimTime::from_secs(1));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"p1"));
        });
        assert!(sim.run_until_idle(SimTime::from_secs(1000)));
        let total_requests: u64 = (0..n as u32)
            .map(|i| sim.app(NodeId(i)).unwrap().metrics.requests_sent)
            .sum();
        let total_repairs: u64 = (0..n as u32)
            .map(|i| sim.app(NodeId(i)).unwrap().metrics.repairs_sent)
            .sum();
        assert_eq!(total_requests, 1, "deterministic suppression: one request");
        assert_eq!(total_repairs, 1, "one repair");
        // The request comes from node 4 (just downstream of the failure).
        assert_eq!(sim.app(NodeId(4)).unwrap().metrics.requests_sent, 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().metrics.repairs_sent, 1);
    }

    #[test]
    fn session_messages_teach_distances() {
        let mut sim = chain_session(3, &SrmConfig::fixed(3));
        // Erase the warm-started distances to exercise real estimation.
        for i in 0..3u32 {
            let a = sim.app_mut(NodeId(i)).unwrap();
            *a.distances_mut() = DistanceEstimator::new(SimDuration::from_secs(1));
        }
        // Two full session rounds: learn timestamps, then echoes.
        for _round in 0..2 {
            for i in 0..3u32 {
                sim.exec(NodeId(i), |a, ctx| a.send_session_now(ctx));
            }
            sim.run_until(sim.now() + SimDuration::from_secs(10));
        }
        let a0 = sim.app(NodeId(0)).unwrap();
        assert_eq!(
            a0.distances().distance_to(SourceId(2)),
            SimDuration::from_secs(2)
        );
        let a2 = sim.app(NodeId(2)).unwrap();
        assert_eq!(
            a2.distances().distance_to(SourceId(1)),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn session_message_detects_tail_loss() {
        let mut sim = chain_session(3, &SrmConfig::fixed(3));
        let l12 = sim.topology().link_between(NodeId(1), NodeId(2)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(
            l12,
            NodeId(0),
            flow::DATA,
        )));
        // The last (only) packet is dropped toward node 2: no later packet
        // will expose the gap; only a session message can.
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"tail"));
        });
        sim.run_until_idle(SimTime::from_secs(50));
        assert_eq!(sim.app(NodeId(2)).unwrap().store().len(), 0);
        // Node 1 (which has the data) announces its state.
        sim.exec(NodeId(1), |a, ctx| a.send_session_now(ctx));
        assert!(sim.run_until_idle(SimTime::from_secs(500)));
        let a2 = sim.app(NodeId(2)).unwrap();
        assert_eq!(a2.store().len(), 1);
        assert!(a2.metrics.all_recovered());
    }

    #[test]
    fn repair_can_come_from_non_source_member() {
        let mut sim = chain_session(4, &SrmConfig::fixed(4));
        // Drop on the last link: nodes 1,2 have the data, node 3 does not.
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(
            l23,
            NodeId(0),
            flow::DATA,
        )));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"p0"));
        });
        sim.run_until(SimTime::from_secs(1));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"p1"));
        });
        assert!(sim.run_until_idle(SimTime::from_secs(1000)));
        // With C1=2 scaling by distance, node 2 (distance 1 from node 3)
        // answers before the source can: the repair came from a non-source.
        let repairs_by_2 = sim.app(NodeId(2)).unwrap().metrics.repairs_sent;
        let repairs_by_0 = sim.app(NodeId(0)).unwrap().metrics.repairs_sent;
        assert_eq!(repairs_by_2 + repairs_by_0, 1);
        assert_eq!(repairs_by_2, 1, "nearest holder repairs");
        let d = sim.app_mut(NodeId(3)).unwrap().take_delivered();
        assert!(d.iter().any(|x| x.via_repair));
    }

    #[test]
    fn hold_down_ignores_late_duplicate_requests() {
        let mut sim = chain_session(2, &SrmConfig::fixed(2));
        // Node 0 has data; node 1 will request it twice in quick succession
        // (simulated by feeding two raw request packets).
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"x"));
        });
        sim.run_until_idle(SimTime::from_secs(10));
        // Build a raw request from node 1.
        let name = AduName::new(SourceId(0), page(0), SeqNo(0));
        for _ in 0..2 {
            sim.exec(NodeId(1), |a, ctx| {
                let body = Body::Request(RequestBody {
                    name,
                    dist_to_source: 1.0,
                });
                a.transmit(
                    ctx,
                    body,
                    SendClass::CurrentPageRecovery,
                    SendOptions::for_flow(flow::REQUEST),
                );
            });
        }
        assert!(sim.run_until_idle(SimTime::from_secs(500)));
        let a0 = sim.app(NodeId(0)).unwrap();
        // One repair, and at least one request ignored (pending-repair or
        // hold-down suppression).
        assert_eq!(a0.metrics.repairs_sent, 1);
        // Now a much later request hits the hold-down window only if within
        // 3·d; past it, a new repair goes out. Let the window (3 s at the
        // default 1 s distance) lapse first.
        sim.run_until(sim.now() + SimDuration::from_secs(20));
        sim.exec(NodeId(1), |a, ctx| {
            let body = Body::Request(RequestBody {
                name,
                dist_to_source: 1.0,
            });
            a.transmit(
                ctx,
                body,
                SendClass::CurrentPageRecovery,
                SendOptions::for_flow(flow::REQUEST),
            );
        });
        assert!(sim.run_until_idle(SimTime::from_secs(1000)));
        let a0 = sim.app(NodeId(0)).unwrap();
        assert_eq!(a0.metrics.repairs_sent, 2);
    }

    #[test]
    fn request_informs_unaware_member() {
        // Node 2 never saw packet 0 or packet 1 (both dropped to it), but
        // hears node 1's request — wait, simpler: craft a request from node
        // 0 for data neither holds; node 1 learns the data exists and joins
        // the recovery (suppressed), eventually recovering when a repair
        // appears. Here we just check the request state is created
        // suppressed (no immediate extra request storm).
        let mut sim = chain_session(3, &SrmConfig::fixed(3));
        let name = AduName::new(SourceId(9), PageId::new(SourceId(9), 0), SeqNo(0));
        sim.exec(NodeId(0), |a, ctx| {
            let body = Body::Request(RequestBody {
                name,
                dist_to_source: 1.0,
            });
            a.transmit(
                ctx,
                body,
                SendClass::CurrentPageRecovery,
                SendOptions::for_flow(flow::REQUEST),
            );
        });
        sim.run_until(SimTime::from_secs(5));
        let a1 = sim.app(NodeId(1)).unwrap();
        assert!(a1.has_pending_recovery());
        let st = a1.requests.get(&name).unwrap();
        assert!(st.backoff_count >= 1, "created already suppressed");
    }

    #[test]
    fn give_up_after_max_rounds() {
        let mut cfg = SrmConfig::fixed(2);
        cfg.max_request_rounds = Some(2);
        let mut sim = chain_session(2, &cfg);
        // Request data that no one has: recovery can never complete.
        let name = AduName::new(SourceId(9), PageId::new(SourceId(9), 0), SeqNo(0));
        sim.exec(NodeId(1), |a, ctx| {
            let missing = a.store.note_exists(name.source, name.page, name.seq);
            a.start_requests(ctx, missing);
        });
        assert!(
            sim.run_until_idle(SimTime::from_secs(10_000)),
            "gave up and went quiet"
        );
        let a1 = sim.app(NodeId(1)).unwrap();
        assert_eq!(a1.metrics.requests_sent, 2);
        let rec = a1.metrics.recoveries.get(&name).unwrap();
        assert!(rec.gave_up);
        assert!(rec.recovered_at.is_none());
    }

    #[test]
    fn periodic_session_messages_flow() {
        let topo = chain(3);
        let mut sim: Simulator<SrmAgent> = Simulator::new(topo, 5);
        for i in 0..3u64 {
            let a = SrmAgent::new(SourceId(i), GROUP, SrmConfig::fixed(3));
            sim.install(NodeId(i as u32), a);
            sim.join(NodeId(i as u32), GROUP);
        }
        sim.run_until(SimTime::from_secs(60));
        for i in 0..3u32 {
            let a = sim.app(NodeId(i)).unwrap();
            assert!(a.metrics.session_sent >= 2, "node {i} sent sessions");
            assert!(a.metrics.session_received >= 2, "node {i} heard sessions");
        }
        // And distances were learned along the way.
        let a0 = sim.app(NodeId(0)).unwrap();
        assert!(a0.distances().has_estimate(SourceId(2)));
    }

    #[test]
    fn page_request_elicits_state_reply() {
        let mut sim = chain_session(3, &SrmConfig::fixed(3));
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"x"));
            a.send_data(ctx, page(0), Bytes::from_static(b"y"));
        });
        sim.run_until_idle(SimTime::from_secs(10));
        // Node 2 "forgets" and asks for the page state; the reply's state
        // report lets a blank node discover and recover the data. Here node
        // 2 already has it, so instead ask from a fresh member simulated by
        // clearing its store... simplest: node 2 asks, nodes 0/1 suppress
        // down to (at least) one session reply.
        sim.exec(NodeId(2), |a, ctx| {
            a.request_page_state(ctx, page(0));
        });
        assert!(sim.run_until_idle(SimTime::from_secs(200)));
        let replies: u64 = (0..2u32)
            .map(|i| sim.app(NodeId(i)).unwrap().metrics.session_sent)
            .sum();
        assert!(replies >= 1, "someone answered the page request");
    }

    #[test]
    fn fec_recovers_single_loss_without_any_request() {
        let mut cfg = SrmConfig::fixed(4);
        cfg.fec = Some(crate::fec::FecConfig { k: 3 });
        let mut sim = chain_session(4, &cfg);
        // Drop the 2nd data packet on the last link; the parity after the
        // 3rd packet reconstructs it locally at nodes 3+.
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(netsim::loss::ScriptedDrop::new(vec![(l23, 2)])));
        for k in 0..3u8 {
            sim.exec(NodeId(0), |a, ctx| {
                a.send_data(ctx, page(0), Bytes::from(vec![k; 5]));
            });
            sim.run_until(sim.now() + SimDuration::from_secs(1));
        }
        assert!(sim.run_until_idle(SimTime::from_secs(1000)));
        let a3 = sim.app(NodeId(3)).unwrap();
        assert_eq!(a3.store().len(), 3, "all three ADUs held");
        assert_eq!(a3.fec_recoveries, 1, "one local parity reconstruction");
        // No request was ever multicast by anyone: the loss never reached
        // the request/repair machinery.
        let requests: u64 = (0..4u32)
            .map(|i| sim.app(NodeId(i)).unwrap().metrics.requests_sent)
            .sum();
        assert_eq!(requests, 0, "FEC preempted recovery");
        // Payload content is correct (ADU 1 = [1,1,1,1,1]).
        let name = AduName::new(SourceId(0), page(0), SeqNo(1));
        assert_eq!(a3.store().get(&name).unwrap(), Bytes::from(vec![1u8; 5]));
    }

    #[test]
    fn fec_double_loss_falls_back_to_requests() {
        let mut cfg = SrmConfig::fixed(4);
        cfg.fec = Some(crate::fec::FecConfig { k: 3 });
        let mut sim = chain_session(4, &cfg);
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        // Drop packets 1 and 2 of the block toward node 3.
        sim.set_loss_model(Box::new(netsim::loss::ScriptedDrop::new(vec![
            (l23, 1),
            (l23, 2),
        ])));
        for k in 0..3u8 {
            sim.exec(NodeId(0), |a, ctx| {
                a.send_data(ctx, page(0), Bytes::from(vec![k; 5]));
            });
            sim.run_until(sim.now() + SimDuration::from_secs(1));
        }
        assert!(sim.run_until_idle(SimTime::from_secs(10_000)));
        let a3 = sim.app(NodeId(3)).unwrap();
        assert_eq!(a3.store().len(), 3, "recovered via request/repair");
        assert!(a3.metrics.all_recovered());
        let requests: u64 = (0..4u32)
            .map(|i| sim.app(NodeId(i)).unwrap().metrics.requests_sent)
            .sum();
        assert!(requests >= 1, "XOR cannot fix two losses; requests needed");
        // At most one of the two can ever come from parity (after one
        // repair arrives, the block has a single hole and parity may close
        // it) — both paths must compose cleanly.
        assert!(a3.fec_recoveries <= 1);
    }

    #[test]
    fn send_priorities_favor_current_page_recovery() {
        // Section III-E: with a constrained sender, a repair for the
        // current page leaves before queued new data.
        let mut cfg = SrmConfig::fixed(2);
        cfg.rate_limit = Some(crate::config::RateLimit {
            bytes_per_sec: 60.0, // about one message per second
            burst_bytes: 70.0,
        });
        let mut sim = chain_session(2, &cfg);
        // Node 0 holds an ADU node 1 will request.
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::from_static(b"x"));
        });
        sim.run_until_idle(SimTime::from_secs(100));
        // Fill node 0's send queue with new data, then a request arrives.
        let name = AduName::new(SourceId(0), page(0), SeqNo(0));
        sim.exec(NodeId(0), |a, ctx| {
            for _ in 0..5 {
                a.send_data(ctx, page(0), Bytes::from(vec![7u8; 40]));
            }
        });
        sim.exec(NodeId(1), |a, ctx| {
            let body = Body::Request(RequestBody {
                name,
                dist_to_source: 1.0,
            });
            a.transmit(
                ctx,
                body,
                SendClass::CurrentPageRecovery,
                SendOptions::for_flow(flow::REQUEST),
            );
        });
        sim.trace.enable();
        assert!(sim.run_until_idle(SimTime::from_secs(10_000)));
        // The repair left node 0 before all the queued new data: find the
        // first REPAIR send and check at least one DATA send follows it.
        let sends: Vec<(u32, f64)> = sim
            .trace
            .events()
            .filter_map(|e| match e {
                netsim::TraceEvent::Send { at, node, flow, .. } if *node == NodeId(0) => {
                    Some((*flow, at.as_secs_f64()))
                }
                _ => None,
            })
            .collect();
        let repair_at = sends
            .iter()
            .find(|(f, _)| *f == flow::REPAIR)
            .map(|&(_, t)| t)
            .expect("a repair was sent");
        let data_after = sends
            .iter()
            .filter(|(f, t)| *f == flow::DATA && *t > repair_at)
            .count();
        assert!(
            data_after >= 1,
            "the repair jumped ahead of queued new data (sends: {sends:?})"
        );
    }

    #[test]
    fn measured_session_bandwidth_tracks_activity() {
        // §III-A "measured adaptively": an idle session sends session
        // messages at the max-interval floor; a busy one speeds up to keep
        // the 5% share of the measured data rate.
        let topo = chain(2);
        let mut sim: Simulator<SrmAgent> = Simulator::new(topo, 33);
        for i in 0..2u64 {
            let mut cfg = SrmConfig::fixed(2);
            cfg.measured_session_bandwidth = true;
            cfg.max_session_interval = SimDuration::from_secs(60);
            let mut a = SrmAgent::new(SourceId(i), GROUP, cfg);
            a.set_current_page(page(0));
            sim.install(NodeId(i as u32), a);
            sim.join(NodeId(i as u32), GROUP);
        }
        // Idle phase: 600 s with no data.
        sim.run_until(SimTime::from_secs(600));
        let idle_msgs = sim.app(NodeId(0)).unwrap().metrics.session_sent;
        assert!(
            idle_msgs <= 15,
            "idle member pinned near the 60s ceiling: {idle_msgs} messages"
        );
        // Busy phase: 300 s of steady 400-byte ADUs every 0.5 s from node 0
        // (~900 B/s on the wire).
        for k in 0..600u32 {
            sim.exec(NodeId(0), |a, ctx| {
                a.send_data(ctx, page(0), Bytes::from(vec![k as u8; 400]));
            });
            sim.run_until(sim.now() + SimDuration::from_secs_f64(0.5));
        }
        let busy_msgs = sim.app(NodeId(0)).unwrap().metrics.session_sent - idle_msgs;
        // Idle pace would give ~5 messages in 300 s; the busy session must
        // clearly outpace that.
        assert!(
            busy_msgs as f64 > 3.0 * (idle_msgs as f64 / 2.0),
            "busy period sends session messages faster: busy {busy_msgs}/300s vs idle {idle_msgs}/600s"
        );
        // And the measured bandwidth reads a sane value (~900 B/s data).
        let now = sim.now();
        let bw = sim.app_mut(NodeId(0)).unwrap().measured_data_bandwidth(now);
        assert!(bw > 300.0 && bw < 3000.0, "measured {bw} B/s");
    }

    #[test]
    fn rate_limiter_paces_data() {
        let mut cfg = SrmConfig::fixed(2);
        cfg.rate_limit = Some(crate::config::RateLimit {
            bytes_per_sec: 100.0,
            burst_bytes: 120.0,
        });
        let mut sim = chain_session(2, &cfg);
        // Queue 5 ADUs of ~60 bytes each at t=0; they must not all leave
        // immediately.
        sim.exec(NodeId(0), |a, ctx| {
            for _ in 0..5 {
                a.send_data(ctx, page(0), Bytes::from_static(b"0123456789"));
            }
        });
        sim.trace.enable();
        assert!(sim.run_until_idle(SimTime::from_secs(60)));
        let a1 = sim.app(NodeId(1)).unwrap();
        assert_eq!(a1.store().len(), 5, "all data eventually delivered");
        // Deliveries are spread over time, not all at t=1.
        let times: Vec<f64> = sim
            .trace
            .events()
            .filter_map(|e| match e {
                netsim::TraceEvent::Deliver { at, .. } => Some(at.as_secs_f64()),
                _ => None,
            })
            .collect();
        let span = times.iter().cloned().fold(f64::MIN, f64::max)
            - times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(span > 1.0, "sends were paced (span {span})");
    }
}

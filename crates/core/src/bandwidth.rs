//! Passive bandwidth measurement.
//!
//! Section III-A: session-message bandwidth is "limited to a small fraction
//! (e.g., 5%) of the aggregate data bandwidth, **whether pre-allocated by a
//! reservation protocol or measured adaptively** by a congestion control
//! algorithm." This module provides the measured-adaptively half: a
//! sliding-window rate meter over the data traffic a member sends and
//! hears, which the agent can feed into the session-message scheduler in
//! place of a static allocation.

use netsim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sliding-window byte-rate estimator.
#[derive(Clone, Debug)]
pub struct RateMeter {
    window: SimDuration,
    samples: VecDeque<(SimTime, u64)>,
    total_in_window: u64,
}

impl RateMeter {
    /// Measure over the trailing `window`.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "zero-width measurement window");
        RateMeter {
            window,
            samples: VecDeque::new(),
            total_in_window: 0,
        }
    }

    fn expire(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        while let Some(&(t, b)) = self.samples.front() {
            if t < cutoff {
                self.samples.pop_front();
                self.total_in_window -= b;
            } else {
                break;
            }
        }
    }

    /// Record `bytes` observed at `now`. Samples must arrive in
    /// non-decreasing time order (simulation time is monotone).
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        debug_assert!(
            self.samples.back().is_none_or(|&(t, _)| now >= t),
            "rate meter fed out of order"
        );
        self.samples.push_back((now, bytes));
        self.total_in_window += bytes;
        self.expire(now);
    }

    /// Estimated rate in bytes/second over the trailing window.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.expire(now);
        self.total_in_window as f64 / self.window.as_secs_f64()
    }

    /// Bytes currently inside the window.
    pub fn bytes_in_window(&mut self, now: SimTime) -> u64 {
        self.expire(now);
        self.total_in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn steady_stream_measures_true_rate() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        // 100 B every 0.1 s = 1000 B/s.
        for i in 0..200 {
            m.record(t(i as f64 * 0.1), 100);
        }
        let r = m.rate(t(19.9));
        assert!((r - 1000.0).abs() < 50.0, "rate {r}");
    }

    #[test]
    fn old_samples_expire() {
        let mut m = RateMeter::new(SimDuration::from_secs(5));
        m.record(t(0.0), 10_000);
        assert!(m.rate(t(1.0)) > 0.0);
        assert_eq!(m.rate(t(10.0)), 0.0);
        assert_eq!(m.bytes_in_window(t(10.0)), 0);
    }

    #[test]
    fn burst_then_silence_decays() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        m.record(t(0.0), 5_000);
        let early = m.rate(t(1.0));
        assert_eq!(early, 500.0);
        // The burst stays in the window until it slides out entirely.
        assert_eq!(m.rate(t(9.9)), 500.0);
        assert_eq!(m.rate(t(20.0)), 0.0);
    }

    #[test]
    fn window_accumulates_mixed_sizes() {
        let mut m = RateMeter::new(SimDuration::from_secs(4));
        m.record(t(0.0), 100);
        m.record(t(1.0), 300);
        m.record(t(2.0), 200);
        assert_eq!(m.bytes_in_window(t(2.0)), 600);
        assert_eq!(m.rate(t(2.0)), 150.0);
        // t=5: only the t≥1 samples remain.
        assert_eq!(m.bytes_in_window(t(5.0)), 500);
    }
}

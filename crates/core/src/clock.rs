//! NTP-style one-way distance estimation from session-message timestamps
//! (Section III-A).
//!
//! Host A sends a session packet at `t1`; host B receives it at `t2`; at
//! `t3` B sends a session packet echoing `(t1, Δ)` with `Δ = t3 − t2`; A
//! receives it at `t4` and estimates the one-way latency to B as
//! `((t4 − t1) − Δ) / 2`.
//!
//! The estimate "does not assume synchronized clocks, but it does assume
//! that paths are roughly symmetric". Our simulated links are symmetric, so
//! after one full session-message exchange the estimates are exact.

use crate::name::SourceId;
use crate::wire::Echo;
use netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// What we know about one peer's timing.
#[derive(Clone, Copy, Debug)]
struct PeerClock {
    /// The peer's send timestamp on its most recent session message.
    last_ts: SimTime,
    /// Our local receive time of that message.
    received_at: SimTime,
    /// Current distance estimate, if any exchange has completed.
    distance: Option<SimDuration>,
}

/// Tracks per-peer timestamps and produces/consumes echoes.
#[derive(Clone, Debug, Default)]
pub struct DistanceEstimator {
    peers: BTreeMap<SourceId, PeerClock>,
    /// Smoothing factor for distance updates: `d ← (1−α)d + α·sample`.
    /// `1.0` (the default) keeps just the latest sample, which is what the
    /// paper's simulations assume (converged, exact estimates).
    pub alpha: f64,
    /// Fallback distance for peers we have no estimate for yet.
    pub default_distance: SimDuration,
}

impl DistanceEstimator {
    /// New estimator with the given fallback distance.
    pub fn new(default_distance: SimDuration) -> Self {
        DistanceEstimator {
            peers: BTreeMap::new(),
            alpha: 1.0,
            default_distance,
        }
    }

    /// Record the header timestamp of any packet received from `peer`
    /// ("All packets for that group, including session packets, include a
    /// Source-ID and a timestamp").
    pub fn note_timestamp(&mut self, peer: SourceId, their_ts: SimTime, now: SimTime) {
        let e = self.peers.entry(peer).or_insert(PeerClock {
            last_ts: their_ts,
            received_at: now,
            distance: None,
        });
        e.last_ts = their_ts;
        e.received_at = now;
    }

    /// Process an echo of *our own* timestamp arriving from `peer` at `now`:
    /// `d = ((t4 − t1) − Δ)/2`.
    pub fn process_echo(&mut self, peer: SourceId, echo: &Echo, now: SimTime) {
        // t4 − t1:
        let rtt_plus_delay = now.since(echo.their_ts);
        let sample = rtt_plus_delay - echo.delay;
        let one_way = SimDuration::from_secs_f64(sample.as_secs_f64() / 2.0);
        let e = self.peers.entry(peer).or_insert(PeerClock {
            last_ts: SimTime::ZERO,
            received_at: SimTime::ZERO,
            distance: None,
        });
        e.distance = Some(match e.distance {
            None => one_way,
            Some(prev) => SimDuration::from_secs_f64(
                prev.as_secs_f64() * (1.0 - self.alpha) + one_way.as_secs_f64() * self.alpha,
            ),
        });
    }

    /// Build the echo list to put in an outgoing session message sent at
    /// `now`: for every peer we have heard, `(their last ts, Δ)`.
    pub fn make_echoes(&self, now: SimTime) -> Vec<Echo> {
        self.peers
            .iter()
            .map(|(&peer, pc)| Echo {
                peer,
                their_ts: pc.last_ts,
                delay: now.since(pc.received_at),
            })
            .collect()
    }

    /// Current estimate of the one-way distance to `peer`, or the default.
    pub fn distance_to(&self, peer: SourceId) -> SimDuration {
        self.peers
            .get(&peer)
            .and_then(|p| p.distance)
            .unwrap_or(self.default_distance)
    }

    /// Whether we have a real (non-default) estimate for `peer`.
    pub fn has_estimate(&self, peer: SourceId) -> bool {
        self.peers.get(&peer).is_some_and(|p| p.distance.is_some())
    }

    /// Peers we have heard from at all.
    pub fn known_peers(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.peers.keys().copied()
    }

    /// Number of distinct peers heard — the group-size estimate the session
    /// message rate scaling uses (Section III-A / \[30\]).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// "Members can also use session messages in SRM to determine the
    /// current participants of the session": peers heard within `window`
    /// of `now`, ascending. Members that left (or are partitioned away)
    /// age out of this list while remaining known for distance purposes.
    pub fn active_peers(&self, now: SimTime, window: SimDuration) -> Vec<SourceId> {
        self.peers
            .iter()
            .filter(|(_, pc)| now.since(pc.received_at) <= window)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Override the estimate for `peer` (used by tests and by experiment
    /// setups that assume converged estimates).
    pub fn set_distance(&mut self, peer: SourceId, d: SimDuration) {
        let e = self.peers.entry(peer).or_insert(PeerClock {
            last_ts: SimTime::ZERO,
            received_at: SimTime::ZERO,
            distance: None,
        });
        e.distance = Some(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: SourceId = SourceId(2);

    #[test]
    fn symmetric_exchange_yields_exact_distance() {
        // One-way delay is 3 s, clocks synchronized (the formula does not
        // care): A sends at t1=10, B receives t2=13, B replies at t3=20
        // with delay Δ=7, A receives at t4=23. d = ((23−10)−7)/2 = 3.
        let mut est = DistanceEstimator::new(SimDuration::from_secs(1));
        let echo = Echo {
            peer: SourceId(1), // us, as recorded by B
            their_ts: SimTime::from_secs(10),
            delay: SimDuration::from_secs(7),
        };
        est.process_echo(B, &echo, SimTime::from_secs(23));
        assert_eq!(est.distance_to(B), SimDuration::from_secs(3));
        assert!(est.has_estimate(B));
    }

    #[test]
    fn default_distance_until_estimate() {
        let est = DistanceEstimator::new(SimDuration::from_secs(5));
        assert_eq!(est.distance_to(B), SimDuration::from_secs(5));
        assert!(!est.has_estimate(B));
    }

    #[test]
    fn echo_construction_includes_delay_since_receipt() {
        let mut est = DistanceEstimator::new(SimDuration::from_secs(1));
        est.note_timestamp(B, SimTime::from_secs(100), SimTime::from_secs(104));
        let echoes = est.make_echoes(SimTime::from_secs(110));
        assert_eq!(echoes.len(), 1);
        assert_eq!(echoes[0].peer, B);
        assert_eq!(echoes[0].their_ts, SimTime::from_secs(100));
        assert_eq!(echoes[0].delay, SimDuration::from_secs(6));
    }

    #[test]
    fn smoothing_blends_samples() {
        let mut est = DistanceEstimator::new(SimDuration::from_secs(1));
        est.alpha = 0.5;
        let mk = |t1: u64, delay: u64| Echo {
            peer: SourceId(1),
            their_ts: SimTime::from_secs(t1),
            delay: SimDuration::from_secs(delay),
        };
        // Sample 1: d = 4.
        est.process_echo(B, &mk(0, 2), SimTime::from_secs(10));
        assert_eq!(est.distance_to(B), SimDuration::from_secs(4));
        // Sample 2: d = 2 → smoothed to 3.
        est.process_echo(B, &mk(20, 2), SimTime::from_secs(26));
        assert_eq!(est.distance_to(B), SimDuration::from_secs(3));
    }

    #[test]
    fn peer_count_tracks_distinct_sources() {
        let mut est = DistanceEstimator::new(SimDuration::from_secs(1));
        est.note_timestamp(SourceId(2), SimTime::ZERO, SimTime::ZERO);
        est.note_timestamp(SourceId(3), SimTime::ZERO, SimTime::ZERO);
        est.note_timestamp(SourceId(2), SimTime::ZERO, SimTime::ZERO);
        assert_eq!(est.peer_count(), 2);
    }

    #[test]
    fn active_peers_age_out() {
        let mut est = DistanceEstimator::new(SimDuration::from_secs(1));
        est.note_timestamp(SourceId(2), SimTime::ZERO, SimTime::from_secs(60));
        est.note_timestamp(SourceId(3), SimTime::ZERO, SimTime::from_secs(100));
        let w = SimDuration::from_secs(60);
        assert_eq!(
            est.active_peers(SimTime::from_secs(110), w),
            vec![SourceId(2), SourceId(3)]
        );
        // Peer 2 falls silent past the window; it stays known but inactive.
        assert_eq!(
            est.active_peers(SimTime::from_secs(140), w),
            vec![SourceId(3)]
        );
        assert_eq!(est.peer_count(), 2);
    }

    #[test]
    fn set_distance_overrides() {
        let mut est = DistanceEstimator::new(SimDuration::from_secs(1));
        est.set_distance(B, SimDuration::from_secs(9));
        assert_eq!(est.distance_to(B), SimDuration::from_secs(9));
    }
}

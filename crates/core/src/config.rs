//! SRM configuration.
//!
//! The framework's knobs, with defaults matching the paper's Section V
//! simulations: `C1 = D1 = 2`, `C2 = D2 = √G` (set by the experiment once
//! the session size is known), backoff ×2 (×3 when the adaptive algorithm
//! is on, per Section VII-A), session messages capped at 5% of the session
//! bandwidth.

use netsim::SimDuration;

/// The four timer constants of Section III-B.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimerParams {
    /// Request-timer interval start multiplier: timers are drawn from
    /// `[C1·d, (C1+C2)·d]` where `d` is the distance to the data's source.
    pub c1: f64,
    /// Request-timer interval width multiplier.
    pub c2: f64,
    /// Repair-timer interval start multiplier: `[D1·d, (D1+D2)·d]` where
    /// `d` is the distance to the requestor.
    pub d1: f64,
    /// Repair-timer interval width multiplier.
    pub d2: f64,
}

impl TimerParams {
    /// The paper's fixed-parameter setting for a session of size `g`:
    /// `C1 = D1 = 2`, `C2 = D2 = √G` (Section V).
    pub fn fixed_for_group(g: usize) -> Self {
        let s = (g as f64).sqrt();
        TimerParams {
            c1: 2.0,
            c2: s,
            d1: 2.0,
            d2: s,
        }
    }
}

impl Default for TimerParams {
    fn default() -> Self {
        TimerParams {
            c1: 2.0,
            c2: 2.0,
            d1: 2.0,
            d2: 2.0,
        }
    }
}

/// Constants of the adaptive adjustment algorithm (Section VII-A,
/// Figs 9–11). The prose fixes the adjustment steps (−0.05/+0.1 for C1,
/// −0.1/+0.5 for C2) and the one-duplicate target; initial values and
/// clamps are our documented reconstruction of Fig 11 (see DESIGN.md §6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Target bound on the average duplicate count ("the predefined
    /// threshold is one duplicate request").
    pub ave_dups: f64,
    /// Target bound on the average request/repair delay, in units of the
    /// RTT to the relevant source.
    pub ave_delay: f64,
    /// EWMA weight λ for the running averages.
    pub lambda: f64,
    /// Lower/upper clamp for C1 and D1.
    pub min_c1: f64,
    /// Upper clamp for C1 and D1.
    pub max_c1: f64,
    /// Lower clamp for C2 and D2.
    pub min_c2: f64,
    /// Upper clamp for C2 and D2.
    pub max_c2: f64,
    /// "further from the source" factor: a duplicate request reported from
    /// more than this multiple of our own distance triggers a C2 decrease
    /// for recent requestors (paper: 1.5).
    pub farther_factor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ave_dups: 1.0,
            ave_delay: 1.0,
            lambda: 0.25,
            min_c1: 0.5,
            max_c1: 2.0,
            min_c2: 1.0,
            max_c2: 64.0,
            farther_factor: 1.5,
        }
    }
}

/// Scope policy for requests and repairs (Section VII-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecoveryScope {
    /// Global recovery: everything multicast to the whole group (the base
    /// framework of Section III).
    #[default]
    Global,
    /// TTL-based local recovery with the given initial request TTL;
    /// repairs use two-step re-multicast (Section VII-B3).
    Ttl(u8),
    /// Administratively scoped recovery (Section VII-B1): requests and
    /// repairs carry the admin-scope flag and stop at zone boundaries.
    Admin,
}

/// Fixed timer intervals à la wb 1.59 (Section III-E): "members set a
/// request timer to a random value from the interval [c, 2c], where c is
/// set to a fixed value of 30 ms … after receiving a request members set a
/// repair timer to a random value from the interval [d, 2d]. For the
/// original source of the data, d is set to a fixed value of 100 ms, and
/// for other members d is set to 200 ms." Distance estimation is bypassed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedIntervals {
    /// Request interval base `c` in seconds (wb: 0.030).
    pub request: f64,
    /// Repair interval base `d` at the original source (wb: 0.100).
    pub repair_source: f64,
    /// Repair interval base `d` at other members (wb: 0.200).
    pub repair_other: f64,
}

impl FixedIntervals {
    /// The wb 1.59 values.
    pub fn wb159() -> Self {
        FixedIntervals {
            request: 0.030,
            repair_source: 0.100,
            repair_other: 0.200,
        }
    }
}

/// Separate-multicast-group local recovery (Section VII-B2): after enough
/// local losses, a member allocates a recovery group, invites nearby
/// members with a TTL-scoped invitation, and subsequent first-round
/// requests (and their repairs) use that group instead of the session
/// group. Unanswered requests still widen back to the session group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryGroupConfig {
    /// Scope of the invitation — "nearby" is whoever it reaches.
    pub invite_ttl: u8,
    /// Create/invite after this many locally detected losses.
    pub min_losses: u64,
}

/// Token-bucket rate limit (Section III-E: "individual members would use a
/// token bucket rate limiter to enforce this peak rate").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained rate, bytes per second.
    pub bytes_per_sec: f64,
    /// Bucket depth, bytes.
    pub burst_bytes: f64,
}

/// Full agent configuration.
#[derive(Clone, Debug)]
pub struct SrmConfig {
    /// Request/repair timer constants.
    pub timers: TimerParams,
    /// Backoff multiplier applied to the request-timer interval after each
    /// suppression/expiry: 2 in the base framework, 3 with the adaptive
    /// algorithm (Section VII-A).
    pub backoff: f64,
    /// Give up re-requesting an ADU after this many request transmissions
    /// (`None` = retry forever; the paper's reliability model).
    pub max_request_rounds: Option<u32>,
    /// Hold-down factor: ignore requests for an ADU for `hold_down · d_SB`
    /// seconds after sending or receiving a repair for it (paper: 3).
    pub hold_down: f64,
    /// Adaptive timer adjustment (Section VII-A); `None` = fixed timers.
    pub adaptive: Option<AdaptiveConfig>,
    /// wb-1.59-style fixed intervals; when set, request/repair timers use
    /// these bases instead of distance-scaled `C·d` intervals.
    pub fixed_intervals: Option<FixedIntervals>,
    /// Proactive parity FEC (Section VII-B / \[38\]); `None` = off.
    pub fec: Option<crate::fec::FecConfig>,
    /// Separate-multicast-group local recovery (Section VII-B2); `None` =
    /// off.
    pub recovery_groups: Option<RecoveryGroupConfig>,
    /// Hierarchical session messages with local representatives
    /// (Section IX-A); `None` = every member sends global session messages.
    pub session_hierarchy: Option<crate::hierarchy::HierarchyConfig>,
    /// Recovery scope policy.
    pub scope: RecoveryScope,
    /// Fraction of the session bandwidth for session messages (paper: 5%).
    pub session_fraction: f64,
    /// Aggregate session data bandwidth assumption, bytes per second
    /// (Section III-C's "fixed bandwidth constraint").
    pub session_bandwidth: f64,
    /// Nominal session-message size in bytes, for rate scaling.
    pub session_msg_bytes: f64,
    /// Floor on the session-message interval.
    pub min_session_interval: SimDuration,
    /// Ceiling on the session-message interval (keeps liveness when the
    /// measured data bandwidth goes to zero in an idle session).
    pub max_session_interval: SimDuration,
    /// §III-A "measured adaptively": when true, the session-message rate
    /// is a fraction of the *measured* aggregate data bandwidth (trailing
    /// window) instead of the static `session_bandwidth` allocation.
    pub measured_session_bandwidth: bool,
    /// Distance assumed for peers we have no estimate for.
    pub default_distance: SimDuration,
    /// Optional token-bucket send rate limit.
    pub rate_limit: Option<RateLimit>,
    /// How many recent local losses to advertise in the session-message
    /// loss fingerprint (Section VII-B).
    pub fingerprint_len: usize,
    /// Keep at most this many ADUs per stream (`None` = keep everything).
    pub retention_per_stream: Option<usize>,
}

impl Default for SrmConfig {
    fn default() -> Self {
        SrmConfig {
            timers: TimerParams::default(),
            backoff: 2.0,
            max_request_rounds: None,
            hold_down: 3.0,
            adaptive: None,
            fixed_intervals: None,
            fec: None,
            recovery_groups: None,
            session_hierarchy: None,
            scope: RecoveryScope::Global,
            session_fraction: 0.05,
            session_bandwidth: 16_000.0,
            session_msg_bytes: 100.0,
            min_session_interval: SimDuration::from_secs(1),
            max_session_interval: SimDuration::from_secs(120),
            measured_session_bandwidth: false,
            default_distance: SimDuration::from_secs(1),
            rate_limit: None,
            fingerprint_len: 8,
            retention_per_stream: None,
        }
    }
}

impl SrmConfig {
    /// Paper Section V defaults for a session of `g` members, fixed timers.
    pub fn fixed(g: usize) -> Self {
        SrmConfig {
            timers: TimerParams::fixed_for_group(g),
            ..Default::default()
        }
    }

    /// Paper Section VII-A defaults: adaptive timers (starting from the
    /// fixed setting for `g`), backoff ×3.
    pub fn adaptive(g: usize) -> Self {
        SrmConfig {
            timers: TimerParams::fixed_for_group(g),
            backoff: 3.0,
            adaptive: Some(AdaptiveConfig::default()),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_params_follow_sqrt_g() {
        let p = TimerParams::fixed_for_group(100);
        assert_eq!(p.c1, 2.0);
        assert_eq!(p.d1, 2.0);
        assert!((p.c2 - 10.0).abs() < 1e-12);
        assert!((p.d2 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_preset_uses_triple_backoff() {
        let c = SrmConfig::adaptive(50);
        assert_eq!(c.backoff, 3.0);
        assert!(c.adaptive.is_some());
        let f = SrmConfig::fixed(50);
        assert_eq!(f.backoff, 2.0);
        assert!(f.adaptive.is_none());
    }

    #[test]
    fn defaults_are_sane() {
        let c = SrmConfig::default();
        assert!(c.session_fraction > 0.0 && c.session_fraction < 1.0);
        assert_eq!(c.hold_down, 3.0);
        assert_eq!(c.scope, RecoveryScope::Global);
    }
}

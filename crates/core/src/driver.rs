//! The driver seam: how an agent touches the world outside itself.
//!
//! [`SrmAgent`](crate::SrmAgent) is a pure protocol engine — everything it
//! does to the outside (multicast a packet, join a group, arm a timer, read
//! a clock, draw randomness) flows through the two small traits here.
//! Anything that implements [`Clock`] + [`Transport`] (together: [`Driver`])
//! can host an agent:
//!
//! - the discrete-event simulator: [`netsim::Ctx`] implements both, with
//!   virtual time, the seeded per-simulation RNG, and SPT-forwarded
//!   delivery — this is how every figure in the paper is reproduced;
//! - a wall-clock runtime over live UDP sockets (the `srm-transport`
//!   crate), with monotonic time, a timer wheel, and real datagrams.
//!
//! The seam is deliberately *exactly* the surface `netsim::Ctx` already
//! offered, so the same agent code, timer draws, and adaptive algorithms
//! run unmodified in simulation and on the wire. Types are shared with
//! `netsim` ([`SimTime`], [`GroupId`], [`SendOptions`], [`TimerId`]): they
//! are plain values with no simulator machinery attached, and reusing them
//! keeps the two worlds byte-compatible at the [`crate::wire`] boundary.

use bytes::Bytes;
use netsim::{Ctx, GroupId, SendOptions, SimDuration, SimTime, TimerId};
use rand::rngs::StdRng;

/// A source of time, as seen by one session member.
///
/// Simulated drivers report virtual event time; real drivers report a
/// monotonic wall clock. The two readings differ only under injected clock
/// faults (or, on a real host, actual clock error).
pub trait Clock {
    /// The driver's authoritative "current time" — event time in the
    /// simulator, monotonic elapsed time in a real runtime. Timer delays
    /// are measured against this.
    fn now(&self) -> SimTime;

    /// This member's *local* reading of the current time, which is what
    /// goes into outgoing message timestamps. Identical to [`Clock::now`]
    /// unless a clock fault (or real clock error) is in effect; peers' NTP
    /// style distance estimators see the difference.
    fn local_now(&self) -> SimTime;
}

/// Packet transmission, group membership, timers, and randomness.
///
/// All effects are fire-and-forget: implementations may buffer them and
/// apply them when the handler returns (the simulator does), so callers
/// must not assume a send has happened before the handler finishes.
pub trait Transport {
    /// Multicast `payload` to `group` with explicit TTL / scope / flow
    /// options.
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions);

    /// Join a multicast group.
    fn join(&mut self, group: GroupId);

    /// Arm a one-shot timer `delay` from now; `token` comes back through
    /// the timer handler. The returned [`TimerId`] can cancel it.
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId;

    /// Cancel a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    fn cancel_timer(&mut self, id: TimerId);

    /// The random number generator for timer draws. Deterministic and
    /// simulation-global in `netsim`; per-node seeded in a real runtime.
    fn rng(&mut self) -> &mut StdRng;
}

/// The full seam: what [`SrmAgent`](crate::SrmAgent) handlers receive.
///
/// Blanket-implemented for anything that is both a [`Clock`] and a
/// [`Transport`].
pub trait Driver: Clock + Transport {}

impl<T: Clock + Transport + ?Sized> Driver for T {}

impl Clock for Ctx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn local_now(&self) -> SimTime {
        Ctx::local_now(self)
    }
}

impl Transport for Ctx<'_> {
    fn multicast(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        Ctx::multicast_with(self, group, payload, opts);
    }

    fn join(&mut self, group: GroupId) {
        Ctx::join(self, group);
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        Ctx::set_timer(self, delay, token)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        Ctx::cancel_timer(self, id);
    }

    fn rng(&mut self) -> &mut StdRng {
        Ctx::rng(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::generators::chain;
    use netsim::{Application, NodeId, Packet, Simulator};
    use rand::Rng;

    /// An app that exercises every seam method through `dyn Driver`,
    /// proving the `Ctx` impl delegates faithfully.
    #[derive(Default)]
    struct SeamProbe {
        fired: Vec<u64>,
        got: usize,
        times: Vec<(SimTime, SimTime)>,
    }

    impl SeamProbe {
        fn poke(&mut self, d: &mut dyn Driver) {
            self.times.push((d.now(), d.local_now()));
            d.join(GroupId(5));
            let id = d.set_timer(SimDuration::from_secs(3), 1);
            d.set_timer(SimDuration::from_secs(1), 2);
            d.cancel_timer(id);
            let _ = d.rng().random::<u64>();
            d.multicast(
                GroupId(5),
                Bytes::from_static(b"probe"),
                SendOptions::default(),
            );
        }
    }

    impl Application for SeamProbe {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: &Packet) {
            self.got += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.fired.push(token);
        }
    }

    #[test]
    fn ctx_implements_the_seam() {
        let mut sim = Simulator::new(chain(2), 7);
        sim.install(NodeId(0), SeamProbe::default());
        sim.install(NodeId(1), SeamProbe::default());
        sim.join(NodeId(1), GroupId(5));
        sim.exec(NodeId(0), |app, ctx| app.poke(ctx));
        sim.run_until_idle(SimTime::from_secs(10));
        let a0 = sim.app(NodeId(0)).unwrap();
        assert_eq!(a0.times, vec![(SimTime::ZERO, SimTime::ZERO)]);
        assert_eq!(a0.fired, vec![2], "timer 1 was cancelled, timer 2 fired");
        // The multicast reached the other member.
        assert_eq!(sim.app(NodeId(1)).unwrap().got, 1);
    }
}

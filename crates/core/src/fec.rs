//! Parity-based forward error correction (the extension the paper points
//! to in Section VII-B: "Forward Error Correction (FEC) \[38\] … ha\[s\] great
//! potential for reducing the negative impacts of transient or mild
//! congestion for reliable multicast applications").
//!
//! Following Nonnenmacher/Biersack/Towsley \[38\], the sender emits one XOR
//! parity packet per block of `k` data ADUs on a stream. Any receiver
//! missing exactly one ADU of a block can reconstruct it locally — no
//! request, no repair, no recovery latency. Losses of two or more ADUs in
//! a block still fall back to SRM's request/repair machinery, so FEC
//! composes with (rather than replaces) reliability.
//!
//! XOR reconstruction handles variable-length payloads by XORing the
//! lengths alongside the zero-padded payloads.

use crate::name::{PageId, SeqNo, SourceId};
use bytes::Bytes;
use std::collections::BTreeMap;

/// FEC configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FecConfig {
    /// Block size: one parity packet per `k` data ADUs.
    pub k: u8,
}

/// A parity packet's content: the XOR of one block.
#[derive(Clone, Debug, PartialEq)]
pub struct Parity {
    /// Stream source.
    pub source: SourceId,
    /// Stream page.
    pub page: PageId,
    /// First sequence number of the covered block.
    pub block_start: SeqNo,
    /// Number of ADUs covered.
    pub k: u8,
    /// XOR of the payload lengths.
    pub xor_len: u32,
    /// XOR of the zero-padded payloads.
    pub xor_payload: Bytes,
}

/// XOR `b` into `a`, growing `a` with zeros as needed.
fn xor_into(a: &mut Vec<u8>, b: &[u8]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, y) in a.iter_mut().zip(b) {
        *x ^= y;
    }
}

/// Sender-side accumulator: feeds on outgoing ADUs, yields a [`Parity`]
/// every `k` packets.
#[derive(Clone, Debug)]
pub struct ParityEncoder {
    k: u8,
    blocks: BTreeMap<PageId, BlockAcc>,
}

#[derive(Clone, Debug)]
struct BlockAcc {
    start: SeqNo,
    count: u8,
    xor_len: u32,
    xor_payload: Vec<u8>,
}

impl ParityEncoder {
    /// One parity per `k` ADUs.
    pub fn new(k: u8) -> Self {
        assert!(k >= 1);
        ParityEncoder {
            k,
            blocks: BTreeMap::new(),
        }
    }

    /// Feed an outgoing ADU; returns a parity packet when a block closes.
    pub fn push(
        &mut self,
        source: SourceId,
        page: PageId,
        seq: SeqNo,
        payload: &Bytes,
    ) -> Option<Parity> {
        let acc = self.blocks.entry(page).or_insert(BlockAcc {
            start: seq,
            count: 0,
            xor_len: 0,
            xor_payload: Vec::new(),
        });
        acc.count += 1;
        acc.xor_len ^= payload.len() as u32;
        xor_into(&mut acc.xor_payload, payload);
        if acc.count == self.k {
            let done = self.blocks.remove(&page).expect("present");
            Some(Parity {
                source,
                page,
                block_start: done.start,
                k: self.k,
                xor_len: done.xor_len,
                xor_payload: Bytes::from(done.xor_payload),
            })
        } else {
            None
        }
    }
}

/// Attempt reconstruction: given the block's parity and the payloads of the
/// ADUs that *did* arrive, recover the single missing payload.
///
/// Returns `None` unless exactly one ADU of the block is absent.
pub fn reconstruct(
    parity: &Parity,
    have: &dyn Fn(SeqNo) -> Option<Bytes>,
) -> Option<(SeqNo, Bytes)> {
    let mut missing = None;
    let mut xor_len = parity.xor_len;
    let mut buf: Vec<u8> = parity.xor_payload.to_vec();
    for i in 0..parity.k as u64 {
        let seq = SeqNo(parity.block_start.0 + i);
        match have(seq) {
            Some(p) => {
                xor_len ^= p.len() as u32;
                xor_into(&mut buf, &p);
            }
            None => {
                if missing.replace(seq).is_some() {
                    return None; // two or more missing: XOR can't help
                }
            }
        }
    }
    let seq = missing?;
    let len = xor_len as usize;
    if len > buf.len() {
        return None; // inconsistent parity (corrupt)
    }
    buf.truncate(len);
    Some((seq, Bytes::from(buf)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: SourceId = SourceId(1);

    fn page() -> PageId {
        PageId::new(SRC, 0)
    }

    fn payloads() -> Vec<Bytes> {
        vec![
            Bytes::from_static(b"alpha"),
            Bytes::from_static(b"bee"),
            Bytes::from_static(b"gamma-gamma"),
            Bytes::from_static(b""),
        ]
    }

    fn encode_block() -> Parity {
        let mut enc = ParityEncoder::new(4);
        let mut parity = None;
        for (i, p) in payloads().iter().enumerate() {
            parity = enc.push(SRC, page(), SeqNo(i as u64), p);
        }
        parity.expect("block of 4 closes")
    }

    #[test]
    fn encoder_emits_every_k() {
        let mut enc = ParityEncoder::new(2);
        assert!(enc
            .push(SRC, page(), SeqNo(0), &Bytes::from_static(b"a"))
            .is_none());
        let p = enc
            .push(SRC, page(), SeqNo(1), &Bytes::from_static(b"b"))
            .expect("second closes block");
        assert_eq!(p.block_start, SeqNo(0));
        assert_eq!(p.k, 2);
        // Next block starts fresh.
        assert!(enc
            .push(SRC, page(), SeqNo(2), &Bytes::from_static(b"c"))
            .is_none());
    }

    #[test]
    fn reconstructs_each_possible_single_loss() {
        let parity = encode_block();
        let all = payloads();
        for lost in 0..4usize {
            let have = |seq: SeqNo| -> Option<Bytes> {
                let i = seq.0 as usize;
                (i != lost).then(|| all[i].clone())
            };
            let (seq, data) = reconstruct(&parity, &have).expect("single loss");
            assert_eq!(seq, SeqNo(lost as u64));
            assert_eq!(data, all[lost], "lost index {lost}");
        }
    }

    #[test]
    fn two_losses_cannot_be_reconstructed() {
        let parity = encode_block();
        let all = payloads();
        let have = |seq: SeqNo| -> Option<Bytes> {
            let i = seq.0 as usize;
            (i != 0 && i != 2).then(|| all[i].clone())
        };
        assert!(reconstruct(&parity, &have).is_none());
    }

    #[test]
    fn zero_losses_yields_none() {
        let parity = encode_block();
        let all = payloads();
        let have = |seq: SeqNo| -> Option<Bytes> { Some(all[seq.0 as usize].clone()) };
        assert!(reconstruct(&parity, &have).is_none());
    }

    #[test]
    fn per_page_blocks_are_independent() {
        let mut enc = ParityEncoder::new(2);
        let p2 = PageId::new(SRC, 1);
        enc.push(SRC, page(), SeqNo(0), &Bytes::from_static(b"a"));
        assert!(enc.push(SRC, p2, SeqNo(0), &Bytes::from_static(b"x")).is_none());
        let done = enc.push(SRC, page(), SeqNo(1), &Bytes::from_static(b"b"));
        assert!(done.is_some());
        assert_eq!(done.unwrap().page, page());
    }
}

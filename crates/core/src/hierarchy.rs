//! Scalable session messages via local representatives (Section IX-A).
//!
//! "For larger groups, we are investigating a hierarchical approach for
//! scalable session messages \[33\], where members in a local area
//! dynamically select one of the local members to be the representative …
//! The representatives would each send global session messages … All other
//! members would send local session messages with limited scope sufficient
//! to reach their representative."
//!
//! Election works the SRM way — by listening and suppression, with no
//! extra protocol machinery: a member becomes a representative when it has
//! heard no *nearby* representative for a timeout (global session messages
//! reveal both who is a representative and, via the carried initial TTL,
//! how far away they are); it stands down when a nearer representative
//! with a smaller Source-ID appears. The result is a distance-`local_ttl`
//! dominating set maintained purely from received traffic.

use crate::name::SourceId;
use netsim::{SimDuration, SimTime};

/// Configuration of the session-message hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierarchyConfig {
    /// Scope of non-representative ("local") session messages — also the
    /// radius within which one representative suffices.
    pub local_ttl: u8,
    /// Become a representative after hearing no nearby representative for
    /// this long.
    pub rep_timeout: SimDuration,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            local_ttl: 3,
            rep_timeout: SimDuration::from_secs(30),
        }
    }
}

/// What kind of session message to send this tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionScope {
    /// Full-scope session message (we are a representative).
    Global,
    /// TTL-limited session message (a representative is nearby).
    Local,
}

/// Per-member election state.
#[derive(Clone, Debug)]
pub struct HierarchyState {
    /// Configuration.
    pub cfg: HierarchyConfig,
    /// Whether this member currently acts as a representative.
    pub is_rep: bool,
    /// The most recent nearby representative heard: (id, when).
    last_nearby_rep: Option<(SourceId, SimTime)>,
}

impl HierarchyState {
    /// Fresh state: not a representative, nobody heard.
    pub fn new(cfg: HierarchyConfig) -> Self {
        HierarchyState {
            cfg,
            is_rep: false,
            last_nearby_rep: None,
        }
    }

    /// Feed every received *global* session message: `hops` is how far it
    /// traveled (from the packet's carried initial TTL).
    pub fn on_global_session(&mut self, self_id: SourceId, sender: SourceId, hops: u8, now: SimTime) {
        if hops > self.cfg.local_ttl {
            return; // not nearby; irrelevant to our local area
        }
        self.last_nearby_rep = Some((sender, now));
        // Deterministic tie-break: a nearby representative with a smaller
        // id demotes us (exactly one survives per contention region).
        if self.is_rep && sender < self_id {
            self.is_rep = false;
        }
    }

    /// Decide the scope of the session message being sent at `now`.
    pub fn decide(&mut self, now: SimTime) -> SessionScope {
        let heard_recent = self
            .last_nearby_rep
            .is_some_and(|(_, t)| now.since(t) < self.cfg.rep_timeout);
        if self.is_rep {
            SessionScope::Global
        } else if heard_recent {
            SessionScope::Local
        } else {
            // Nobody is covering this area: stand up.
            self.is_rep = true;
            SessionScope::Global
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HierarchyConfig {
        HierarchyConfig {
            local_ttl: 3,
            rep_timeout: SimDuration::from_secs(30),
        }
    }

    const ME: SourceId = SourceId(5);

    #[test]
    fn lonely_member_becomes_rep() {
        let mut h = HierarchyState::new(cfg());
        assert_eq!(h.decide(SimTime::from_secs(0)), SessionScope::Global);
        assert!(h.is_rep);
        // And stays one.
        assert_eq!(h.decide(SimTime::from_secs(10)), SessionScope::Global);
    }

    #[test]
    fn nearby_rep_suppresses() {
        let mut h = HierarchyState::new(cfg());
        h.on_global_session(ME, SourceId(9), 2, SimTime::from_secs(1));
        assert_eq!(h.decide(SimTime::from_secs(2)), SessionScope::Local);
        assert!(!h.is_rep);
    }

    #[test]
    fn distant_rep_does_not_suppress() {
        let mut h = HierarchyState::new(cfg());
        h.on_global_session(ME, SourceId(9), 7, SimTime::from_secs(1));
        assert_eq!(h.decide(SimTime::from_secs(2)), SessionScope::Global);
    }

    #[test]
    fn rep_times_out_and_successor_stands_up() {
        let mut h = HierarchyState::new(cfg());
        h.on_global_session(ME, SourceId(9), 1, SimTime::from_secs(0));
        assert_eq!(h.decide(SimTime::from_secs(10)), SessionScope::Local);
        // The rep goes silent (left the session): after the timeout we take
        // over.
        assert_eq!(h.decide(SimTime::from_secs(31)), SessionScope::Global);
        assert!(h.is_rep);
    }

    #[test]
    fn smaller_id_nearby_rep_demotes() {
        let mut h = HierarchyState::new(cfg());
        h.decide(SimTime::from_secs(0)); // become rep
        assert!(h.is_rep);
        // A bigger-id rep nearby does not demote us…
        h.on_global_session(ME, SourceId(9), 1, SimTime::from_secs(1));
        assert!(h.is_rep);
        // …a smaller-id one does.
        h.on_global_session(ME, SourceId(2), 1, SimTime::from_secs(2));
        assert!(!h.is_rep);
        assert_eq!(h.decide(SimTime::from_secs(3)), SessionScope::Local);
    }
}

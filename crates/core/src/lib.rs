//! # srm — Scalable Reliable Multicast
//!
//! A Rust implementation of the SRM framework from *"A Reliable Multicast
//! Framework for Light-Weight Sessions and Application Level Framing"*
//! (Floyd, Jacobson, Liu, McCanne, Zhang — ACM SIGCOMM '95 / IEEE/ACM ToN
//! Dec 1997).
//!
//! SRM provides the *minimal* definition of reliable multicast — eventual
//! delivery of all data to all group members, with no ordering guarantees —
//! on top of the IP multicast group-delivery model, following the
//! Application Level Framing (ALF) principle: data is named in application
//! data units (`Source-ID : page : sequence`), names are unique and
//! persistent, and *any* member holding a copy can answer a retransmission
//! request.
//!
//! ## The framework
//!
//! - **Session messages** ([`session`], [`clock`]): low-rate periodic state
//!   reports that detect tail losses and carry timestamp echoes for
//!   NTP-style one-way distance estimation.
//! - **Loss recovery** ([`recovery`], [`timers`]): receiver-driven,
//!   multicast requests and repairs with distance-scaled random timers,
//!   duplicate suppression, exponential backoff, and a repair hold-down.
//! - **Adaptive timers** ([`adaptive`]): per-member adjustment of the
//!   `C1,C2,D1,D2` constants from observed duplicates and delay.
//! - **Local recovery** ([`local`]): TTL- and admin-scoped requests with
//!   one- and two-step repairs, and loss-neighborhood estimation from
//!   session-message loss fingerprints.
//! - **Rate control** ([`rate`], [`sendq`]): a token-bucket send limit with
//!   the paper's send priorities (current-page recovery > new data >
//!   old-page recovery).
//! - **Observability** ([`observe`]): bridge to the workspace `obs` layer —
//!   causal recovery-episode spans recorded per agent, run-level
//!   counter/histogram summaries, deterministic JSONL timelines.
//!
//! [`SrmAgent`] assembles all of it behind a small application API
//! (`send_data` / `take_delivered`) and runs over the deterministic
//! [`netsim`] simulator.
//!
//! ## Quick example
//!
//! ```
//! use srm::{SrmAgent, SrmConfig, SourceId, PageId};
//! use netsim::{Simulator, NodeId, GroupId, SimTime};
//! use netsim::generators::star;
//! use bytes::Bytes;
//!
//! let group = GroupId(1);
//! let mut sim = Simulator::new(star(3), 7);
//! for i in 1..=3u32 {
//!     let agent = SrmAgent::new(SourceId(i as u64), group, SrmConfig::fixed(3));
//!     sim.install(NodeId(i), agent);
//!     sim.join(NodeId(i), group);
//! }
//! let page = PageId::new(SourceId(1), 0);
//! sim.exec(NodeId(1), |a, ctx| {
//!     a.send_data(ctx, page, Bytes::from_static(b"draw a blue line"));
//! });
//! sim.run_until(SimTime::from_secs(5));
//! let got = sim.app_mut(NodeId(2)).unwrap().take_delivered();
//! assert_eq!(got.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod agent;
pub mod bandwidth;
pub mod clock;
pub mod config;
pub mod driver;
pub mod fec;
pub mod hierarchy;
pub mod liveness;
pub mod local;
pub mod metrics;
pub mod name;
pub mod observe;
pub mod rate;
pub mod recovery;
pub mod sendq;
pub mod session;
pub mod store;
pub mod timers;
pub mod wire;

pub use adaptive::AdaptiveTimers;
pub use agent::{Delivery, SrmAgent};
pub use clock::DistanceEstimator;
pub use driver::{Clock, Driver, Transport};
pub use fec::{FecConfig, Parity};
pub use hierarchy::{HierarchyConfig, HierarchyState, SessionScope};
pub use liveness::{LivenessConfig, PeerLiveness, PeerState};
pub use config::{AdaptiveConfig, RateLimit, RecoveryScope, SrmConfig, TimerParams};
pub use metrics::{AgentMetrics, FaultEpisode, RecoveryRecord, RepairRecord};
pub use name::{AduName, PageId, SeqNo, SourceId};
pub use observe::{enable_tracing, harvest_summary, harvest_timeline};
pub use store::{AduStore, Persistence, PersistenceStats, Rehydrated};
pub use wire::{Body, DataBody, Header, Message, RequestBody, SessionBody, WireError};

//! Peer liveness from session-message silence.
//!
//! Section III-A's session messages give every member a periodic heartbeat
//! from every other member: each member multicasts its state roughly once
//! per session interval, so a peer that stays silent for several intervals
//! has either left, crashed, or been partitioned away.  [`PeerLiveness`]
//! turns that observation into a three-state machine per peer:
//!
//! ```text
//!            heard                    heard                 heard
//!         ┌─────────┐             ┌──────────┐          ┌─────────┐
//!         ▼         │             ▼          │          ▼         │
//!      [Alive] ──silence ≥ S──▶ [Suspect] ──silence ≥ D──▶ [Dead]
//! ```
//!
//! where `S` and `D` are multiples of the *nominal* session interval (the
//! un-jittered vat interval for the current group-size estimate), so the
//! thresholds adapt as the group grows and the per-member heartbeat rate
//! drops.  Any packet from the peer — not only session messages — counts as
//! life, matching the paper's use of all traffic for state exchange.
//!
//! The tracker is **disabled by default** and costs nothing when off; the
//! wall-clock transport enables it and forwards the transitions into the
//! `obs` transport-event stream.  Declaring a peer dead here never removes
//! protocol state — SRM's recovery must keep working if the peer returns —
//! it only reports; policy belongs to the layer above.

use std::collections::BTreeMap;

use netsim::{SimDuration, SimTime};

use crate::name::SourceId;

/// Silence thresholds, as multiples of the nominal session interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessConfig {
    /// Silence (in nominal session intervals) before a peer turns suspect.
    pub suspect_after: f64,
    /// Silence (in nominal session intervals) before a peer is declared
    /// dead.  Must be ≥ `suspect_after`.
    pub dead_after: f64,
}

impl Default for LivenessConfig {
    /// The vat-style defaults: with per-interval heartbeats jittered in
    /// `[0.5, 1.5)`, three missed nominal intervals make a peer suspect
    /// (a single unlucky jitter draw cannot), eight make it dead.
    fn default() -> Self {
        LivenessConfig { suspect_after: 3.0, dead_after: 8.0 }
    }
}

/// One peer's liveness state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heard from recently.
    Alive,
    /// Silent past the suspect threshold.
    Suspect,
    /// Silent past the dead threshold.
    Dead,
}

/// A state-machine transition, reported by [`PeerLiveness::note_heard`] and
/// [`PeerLiveness::sweep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The peer that changed state.
    pub peer: SourceId,
    /// The state it entered.
    pub to: PeerState,
}

#[derive(Debug, Clone, Copy)]
struct PeerEntry {
    last_heard: SimTime,
    state: PeerState,
}

/// Tracks per-peer silence against session-interval thresholds.
///
/// Disabled by default: [`PeerLiveness::note_heard`] and
/// [`PeerLiveness::sweep`] are single-branch no-ops until
/// [`PeerLiveness::enable`] is called, so simulator runs (which never
/// enable it) are untouched.
#[derive(Debug, Clone, Default)]
pub struct PeerLiveness {
    enabled: bool,
    cfg: LivenessConfig,
    peers: BTreeMap<SourceId, PeerEntry>,
    /// Total transitions into suspect (monotone; revivals don't subtract).
    pub suspected_total: u64,
    /// Total transitions into dead.
    pub died_total: u64,
    /// Total revivals (suspect/dead back to alive).
    pub revived_total: u64,
}

impl PeerLiveness {
    /// A fresh, disabled tracker with default thresholds.
    pub fn new() -> Self {
        PeerLiveness::default()
    }

    /// Enable tracking with the given thresholds.
    pub fn enable(&mut self, cfg: LivenessConfig) {
        self.enabled = true;
        self.cfg = cfg;
    }

    /// Is the tracker on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current state of `peer`; `Alive` for peers never heard from (they do
    /// not exist yet from this tracker's point of view).
    pub fn state(&self, peer: SourceId) -> PeerState {
        self.peers.get(&peer).map_or(PeerState::Alive, |e| e.state)
    }

    /// Peers currently in the given state, in id order.
    pub fn peers_in(&self, state: PeerState) -> Vec<SourceId> {
        self.peers
            .iter()
            .filter(|(_, e)| e.state == state)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Number of tracked peers in each state, as `(alive, suspect, dead)` —
    /// a cheap tally for live gauges, no allocation.
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut c = (0, 0, 0);
        for e in self.peers.values() {
            match e.state {
                PeerState::Alive => c.0 += 1,
                PeerState::Suspect => c.1 += 1,
                PeerState::Dead => c.2 += 1,
            }
        }
        c
    }

    /// A packet from `peer` arrived at `now`.  Returns the revival
    /// transition if the peer was suspect or dead.
    #[inline]
    pub fn note_heard(&mut self, peer: SourceId, now: SimTime) -> Option<Transition> {
        if !self.enabled {
            return None;
        }
        let entry = self
            .peers
            .entry(peer)
            .or_insert(PeerEntry { last_heard: now, state: PeerState::Alive });
        entry.last_heard = now;
        if entry.state == PeerState::Alive {
            return None;
        }
        entry.state = PeerState::Alive;
        self.revived_total += 1;
        Some(Transition { peer, to: PeerState::Alive })
    }

    /// Re-examine every peer's silence against the thresholds scaled by the
    /// current nominal session `interval`.  Called on session ticks.
    /// Returns the transitions that occurred, in peer-id order.
    pub fn sweep(&mut self, now: SimTime, interval: SimDuration) -> Vec<Transition> {
        if !self.enabled {
            return Vec::new();
        }
        let suspect_at = interval.mul_f64(self.cfg.suspect_after);
        let dead_at = interval.mul_f64(self.cfg.dead_after.max(self.cfg.suspect_after));
        let mut out = Vec::new();
        for (&peer, entry) in self.peers.iter_mut() {
            let silence = if now > entry.last_heard {
                now.since(entry.last_heard)
            } else {
                SimDuration::ZERO
            };
            let target = if silence >= dead_at {
                PeerState::Dead
            } else if silence >= suspect_at {
                PeerState::Suspect
            } else {
                PeerState::Alive
            };
            // Sweeps only advance towards dead; revival is evidence-driven
            // (note_heard), never silence-driven.
            let advance = matches!(
                (entry.state, target),
                (PeerState::Alive, PeerState::Suspect)
                    | (PeerState::Alive, PeerState::Dead)
                    | (PeerState::Suspect, PeerState::Dead)
            );
            if !advance {
                continue;
            }
            if target == PeerState::Suspect || entry.state == PeerState::Alive {
                // Count the suspect stage even when a single sweep jumps
                // straight to dead, so the totals always satisfy
                // suspected ≥ died.
                self.suspected_total += 1;
            }
            if target == PeerState::Dead {
                self.died_total += 1;
            }
            entry.state = target;
            out.push(Transition { peer, to: target });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVAL: SimDuration = SimDuration::from_secs(1);

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn disabled_tracker_does_nothing() {
        let mut lv = PeerLiveness::new();
        assert!(lv.note_heard(SourceId(2), t(0)).is_none());
        assert!(lv.sweep(t(100), INTERVAL).is_empty());
        assert_eq!(lv.state(SourceId(2)), PeerState::Alive);
    }

    #[test]
    fn silence_walks_alive_suspect_dead() {
        let mut lv = PeerLiveness::new();
        lv.enable(LivenessConfig::default());
        lv.note_heard(SourceId(2), t(0));
        assert!(lv.sweep(t(2), INTERVAL).is_empty());
        let tr = lv.sweep(t(3), INTERVAL);
        assert_eq!(tr, vec![Transition { peer: SourceId(2), to: PeerState::Suspect }]);
        assert!(lv.sweep(t(4), INTERVAL).is_empty(), "no re-announcement");
        let tr = lv.sweep(t(8), INTERVAL);
        assert_eq!(tr, vec![Transition { peer: SourceId(2), to: PeerState::Dead }]);
        assert_eq!(lv.suspected_total, 1);
        assert_eq!(lv.died_total, 1);
    }

    #[test]
    fn hearing_a_peer_revives_it() {
        let mut lv = PeerLiveness::new();
        lv.enable(LivenessConfig::default());
        lv.note_heard(SourceId(2), t(0));
        lv.sweep(t(10), INTERVAL);
        assert_eq!(lv.state(SourceId(2)), PeerState::Dead);
        let tr = lv.note_heard(SourceId(2), t(11)).expect("revival transition");
        assert_eq!(tr.to, PeerState::Alive);
        assert_eq!(lv.revived_total, 1);
        // And the cycle can repeat: 9s of fresh silence jumps straight to
        // dead again (one transition, both stage counters bumped).
        let tr = lv.sweep(t(20), INTERVAL);
        assert_eq!(tr, vec![Transition { peer: SourceId(2), to: PeerState::Dead }]);
        assert_eq!(lv.suspected_total, 2);
        assert_eq!(lv.died_total, 2);
    }

    #[test]
    fn straight_to_dead_counts_suspect_stage_too() {
        let mut lv = PeerLiveness::new();
        lv.enable(LivenessConfig::default());
        lv.note_heard(SourceId(3), t(0));
        let tr = lv.sweep(t(50), INTERVAL);
        assert_eq!(
            tr,
            vec![Transition { peer: SourceId(3), to: PeerState::Dead }]
        );
        assert_eq!(lv.suspected_total, 1);
        assert_eq!(lv.died_total, 1);
    }

    #[test]
    fn counts_tally_states() {
        let mut lv = PeerLiveness::new();
        lv.enable(LivenessConfig::default());
        lv.note_heard(SourceId(2), t(0));
        lv.note_heard(SourceId(3), t(0));
        lv.note_heard(SourceId(4), t(4));
        // At t=7: peers 2,3 silent 7s → suspect; peer 4 silent 3s → suspect
        // too. Hear peer 2 again first so states diverge.
        lv.sweep(t(5), INTERVAL); // 2,3 suspect (silence 5 ≥ 3)
        lv.note_heard(SourceId(2), t(6));
        lv.sweep(t(11), INTERVAL); // 3 dead (11 ≥ 8), 2 suspect (5), 4 suspect (7)
        assert_eq!(lv.counts(), (0, 2, 1));
    }

    #[test]
    fn thresholds_scale_with_interval() {
        let mut lv = PeerLiveness::new();
        lv.enable(LivenessConfig::default());
        lv.note_heard(SourceId(2), t(0));
        // With a 10s nominal interval, 8s of silence is nothing.
        assert!(lv.sweep(t(8), SimDuration::from_secs(10)).is_empty());
        assert_eq!(lv.state(SourceId(2)), PeerState::Alive);
    }
}

//! Local recovery (Section VII-B).
//!
//! Mechanisms for limiting the scope of requests and repairs:
//!
//! - **Administrative scoping** (VII-B1): send with the admin-scope flag so
//!   routers stop the packet at zone boundaries.
//! - **TTL-based scoping** (VII-B3): send the request with a limited TTL;
//!   answer with a *one-step* repair (TTL = request TTL + hop count back to
//!   the requestor) or the markedly more efficient *two-step* repair: the
//!   replier sends a local repair with the request's TTL naming the
//!   requestor, and the requestor — on seeing a repair naming itself —
//!   re-multicasts it with the TTL of its original request, guaranteeing
//!   (given symmetry) that everyone who saw the request sees the repair.
//! - **Scope widening**: "If no repair is received before a backed-off
//!   request timer expires, then the next request can be sent with a wider
//!   scope."
//!
//! Members learn about *loss neighborhoods* — sets of members sharing the
//! same losses — from the loss rates and loss fingerprints ("the names of
//! the last few local losses") carried in session messages, without any
//! topology knowledge.

use crate::name::{AduName, SourceId};
use std::collections::{BTreeMap, VecDeque};

/// Rolling record of this member's own recent losses, advertised in
/// session messages.
#[derive(Clone, Debug)]
pub struct LossFingerprint {
    names: VecDeque<AduName>,
    cap: usize,
}

impl LossFingerprint {
    /// Keep the last `cap` losses.
    pub fn new(cap: usize) -> Self {
        LossFingerprint {
            names: VecDeque::new(),
            cap,
        }
    }

    /// Record a loss (a request timer was set for `name`).
    pub fn record(&mut self, name: AduName) {
        if self.names.contains(&name) {
            return;
        }
        self.names.push_back(name);
        while self.names.len() > self.cap {
            self.names.pop_front();
        }
    }

    /// Current fingerprint, oldest first.
    pub fn names(&self) -> Vec<AduName> {
        self.names.iter().copied().collect()
    }

    /// Jaccard-style overlap with another fingerprint: |∩| / |smaller|.
    /// 1.0 when one is a subset of the other; 0.0 with no overlap or when
    /// either is empty.
    pub fn overlap(&self, other: &[AduName]) -> f64 {
        if self.names.is_empty() || other.is_empty() {
            return 0.0;
        }
        let inter = self.names.iter().filter(|n| other.contains(n)).count();
        inter as f64 / self.names.len().min(other.len()) as f64
    }
}

/// What a member has learned about its peers' losses from session messages.
#[derive(Clone, Debug, Default)]
pub struct NeighborhoodView {
    /// Peer → (advertised loss rate, advertised fingerprint).
    peers: BTreeMap<SourceId, (f32, Vec<AduName>)>,
}

impl NeighborhoodView {
    /// Record the loss report from a peer's session message.
    pub fn update(&mut self, peer: SourceId, loss_rate: f32, fingerprint: Vec<AduName>) {
        self.peers.insert(peer, (loss_rate, fingerprint));
    }

    /// Peers whose fingerprints overlap ours by at least `threshold` —
    /// the estimated *loss neighborhood* sharing our losses.
    pub fn shared_loss_peers(&self, ours: &LossFingerprint, threshold: f64) -> Vec<SourceId> {
        self.peers
            .iter()
            .filter(|(_, (_, fp))| ours.overlap(fp) >= threshold)
            .map(|(&p, _)| p)
            .collect()
    }

    /// "a member should send a request with local scope when recent losses
    /// have been confined to a single loss neighborhood" — true when the
    /// sharing peers are a small fraction of the known peers
    /// (Section VII-B's "local loss": "the number of members experiencing
    /// the loss is much smaller than the total number of members").
    pub fn loss_is_local(
        &self,
        ours: &LossFingerprint,
        overlap_threshold: f64,
        local_fraction: f64,
    ) -> bool {
        if self.peers.is_empty() {
            return false;
        }
        let sharing = self.shared_loss_peers(ours, overlap_threshold).len();
        (sharing as f64) <= local_fraction * self.peers.len() as f64
    }

    /// Number of peers with loss reports.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no loss reports have been received.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }
}

/// TTL schedule for scope widening: each unanswered (backed-off) request
/// round doubles the TTL until it reaches the global scope.
pub fn widened_ttl(initial: u8, round: u32) -> u8 {
    let t = (initial as u32) << round.min(8);
    u8::try_from(t).unwrap_or(netsim::TTL_GLOBAL).max(1)
}

/// One-step repair TTL (Section VII-B3): the request came `hops` hops with
/// initial TTL `request_ttl`; a repair with TTL `request_ttl + hops` is
/// guaranteed (under symmetry) to reach everyone the request reached.
pub fn one_step_repair_ttl(request_ttl: u8, hops: u8) -> u8 {
    request_ttl.saturating_add(hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{PageId, SeqNo};

    fn n(q: u64) -> AduName {
        AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(q))
    }

    #[test]
    fn fingerprint_caps_and_dedups() {
        let mut fp = LossFingerprint::new(3);
        for q in 0..5 {
            fp.record(n(q));
        }
        fp.record(n(4)); // duplicate ignored
        assert_eq!(fp.names(), vec![n(2), n(3), n(4)]);
    }

    #[test]
    fn overlap_metric() {
        let mut a = LossFingerprint::new(4);
        a.record(n(1));
        a.record(n(2));
        assert_eq!(a.overlap(&[n(1), n(2)]), 1.0);
        assert_eq!(a.overlap(&[n(1), n(9)]), 0.5);
        assert_eq!(a.overlap(&[n(8), n(9)]), 0.0);
        assert_eq!(a.overlap(&[]), 0.0);
    }

    #[test]
    fn neighborhood_identifies_sharers() {
        let mut ours = LossFingerprint::new(4);
        ours.record(n(1));
        ours.record(n(2));
        let mut v = NeighborhoodView::default();
        v.update(SourceId(10), 0.1, vec![n(1), n(2)]); // shares
        v.update(SourceId(11), 0.0, vec![n(7)]); // does not
        v.update(SourceId(12), 0.2, vec![n(2), n(3)]); // partial (0.5)
        let sharers = v.shared_loss_peers(&ours, 0.9);
        assert_eq!(sharers, vec![SourceId(10)]);
        let loose = v.shared_loss_peers(&ours, 0.4);
        assert_eq!(loose, vec![SourceId(10), SourceId(12)]);
    }

    #[test]
    fn loss_locality_decision() {
        let mut ours = LossFingerprint::new(4);
        ours.record(n(1));
        let mut v = NeighborhoodView::default();
        // 1 sharer of 10 peers → local at 20% threshold.
        v.update(SourceId(10), 0.1, vec![n(1)]);
        for i in 11..20 {
            v.update(SourceId(i), 0.0, vec![n(99)]);
        }
        assert!(v.loss_is_local(&ours, 0.9, 0.2));
        assert!(!v.loss_is_local(&ours, 0.9, 0.05));
    }

    #[test]
    fn ttl_widening_doubles_then_saturates() {
        assert_eq!(widened_ttl(4, 0), 4);
        assert_eq!(widened_ttl(4, 1), 8);
        assert_eq!(widened_ttl(4, 3), 32);
        assert_eq!(widened_ttl(4, 6), 255); // saturates at global
        assert_eq!(widened_ttl(0, 0), 1); // floor
    }

    #[test]
    fn one_step_ttl_adds_hops() {
        assert_eq!(one_step_repair_ttl(8, 3), 11);
        assert_eq!(one_step_repair_ttl(250, 10), 255);
    }
}

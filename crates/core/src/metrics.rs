//! Per-agent metrics, the raw material of every figure in Sections V–VII.

use crate::name::AduName;
use netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// The life of one loss-recovery episode on one member (request side).
#[derive(Clone, Debug)]
pub struct RecoveryRecord {
    /// The ADU recovered.
    pub name: AduName,
    /// When the loss was detected (request timer first set).
    pub detected_at: SimTime,
    /// When the data finally arrived, if it has.
    pub recovered_at: Option<SimTime>,
    /// Delay from detection until the first request was sent or heard.
    pub request_delay: Option<SimDuration>,
    /// Requests this member itself multicast.
    pub requests_sent: u32,
    /// Requests observed in total for this ADU (sent or heard).
    pub requests_observed: u32,
    /// This member's RTT estimate to the data's source at detection
    /// (2 × one-way distance), for the delay/RTT normalization.
    pub rtt_to_source: SimDuration,
    /// True if recovery was abandoned after `max_request_rounds`.
    pub gave_up: bool,
}

impl RecoveryRecord {
    /// Loss-recovery delay (detection → first repair received), the metric
    /// of Fig 3/4/13: `None` until recovered.
    pub fn recovery_delay(&self) -> Option<SimDuration> {
        self.recovered_at.map(|t| t.since(self.detected_at))
    }

    /// Recovery delay in units of this member's RTT to the source.
    ///
    /// `None` until recovered, and `None` when the RTT estimate is zero
    /// (a degenerate distance estimate must not poison figure averages with
    /// `inf`/`NaN`).
    pub fn recovery_delay_over_rtt(&self) -> Option<f64> {
        let rtt = self.rtt_to_source.as_secs_f64();
        if rtt <= 0.0 {
            return None;
        }
        self.recovery_delay().map(|d| d.as_secs_f64() / rtt)
    }

    /// Request delay in units of the RTT to the source (Fig 5–8 metric).
    ///
    /// `None` before the first request, and `None` when the RTT estimate is
    /// zero, mirroring [`RecoveryRecord::recovery_delay_over_rtt`].
    pub fn request_delay_over_rtt(&self) -> Option<f64> {
        let rtt = self.rtt_to_source.as_secs_f64();
        if rtt <= 0.0 {
            return None;
        }
        self.request_delay.map(|d| d.as_secs_f64() / rtt)
    }
}

/// One repair episode on one member (repair side).
#[derive(Clone, Debug)]
pub struct RepairRecord {
    /// The ADU repaired.
    pub name: AduName,
    /// When the repair timer was set.
    pub set_at: SimTime,
    /// Delay until the first repair was sent or heard.
    pub repair_delay: Option<SimDuration>,
    /// Whether this member sent the repair itself.
    pub sent: bool,
    /// Repairs observed in total for this ADU.
    pub repairs_observed: u32,
}

/// Counters and episode logs for one agent.
#[derive(Clone, Debug, Default)]
pub struct AgentMetrics {
    /// Original data packets multicast.
    pub data_sent: u64,
    /// Requests multicast.
    pub requests_sent: u64,
    /// Repairs multicast.
    pub repairs_sent: u64,
    /// Session messages multicast.
    pub session_sent: u64,
    /// Data packets received (originals and repairs).
    pub data_received: u64,
    /// Requests received.
    pub requests_received: u64,
    /// Repairs received.
    pub repairs_received: u64,
    /// Session messages received.
    pub session_received: u64,
    /// Requests ignored due to a repair hold-down window.
    pub requests_held_down: u64,
    /// Undecodable packets dropped.
    pub decode_errors: u64,
    /// Packets that decoded into a well-formed message (of any type).
    /// `decode_errors + valid_messages` equals every packet delivered to
    /// the agent.
    pub valid_messages: u64,
    /// Completed and in-flight recovery episodes, keyed by ADU.
    pub recoveries: BTreeMap<AduName, RecoveryRecord>,
    /// Repair episodes, keyed by ADU.
    pub repairs: BTreeMap<AduName, RepairRecord>,
    /// Host crashes survived (incremented on each
    /// [`netsim::Application::on_crash`]).
    pub crashes: u64,
}

impl AgentMetrics {
    /// Clear the per-episode logs (counters keep accumulating). Experiment
    /// drivers call this between loss-recovery rounds.
    pub fn clear_episodes(&mut self) {
        self.recoveries.clear();
        self.repairs.clear();
    }

    /// Reset everything.
    pub fn reset(&mut self) {
        *self = AgentMetrics::default();
    }

    /// Recovery episodes that have completed.
    pub fn completed_recoveries(&self) -> impl Iterator<Item = &RecoveryRecord> {
        self.recoveries.values().filter(|r| r.recovered_at.is_some())
    }

    /// True if every detected loss has been recovered.
    pub fn all_recovered(&self) -> bool {
        self.recoveries.values().all(|r| r.recovered_at.is_some())
    }

    /// Drop episode records that were cut short by a crash: unrecovered
    /// recoveries and repair episodes that never produced a repair. A
    /// crashed host's in-flight state is gone; keeping the dangling records
    /// would make post-restart `all_recovered` checks report pre-crash
    /// losses the restarted member no longer knows about.
    pub fn drop_inflight(&mut self) {
        self.recoveries.retain(|_, r| r.recovered_at.is_some());
        self.repairs
            .retain(|_, r| r.sent || r.repair_delay.is_some());
    }
}

/// One scripted-fault episode as observed by an experiment driver: what
/// happened between a fault and the return to group-wide consistency.
#[derive(Clone, Debug)]
pub struct FaultEpisode {
    /// Which fault this episode covers (e.g. `"partition"`, `"crash"`).
    pub label: String,
    /// When the fault was injected.
    pub started_at: SimTime,
    /// When every member was consistent again, if reached.
    pub reconsistent_at: Option<SimTime>,
    /// Losses the fault caused (distinct (member, ADU) detections).
    pub losses: u64,
    /// Requests multicast during the recovery window, summed over members.
    pub dup_requests: u64,
    /// Repairs multicast during the recovery window, summed over members.
    pub dup_repairs: u64,
}

impl FaultEpisode {
    /// Fault injection → full reconsistency, the headline robustness metric.
    pub fn time_to_reconsistency(&self) -> Option<SimDuration> {
        self.reconsistent_at.map(|t| t.since(self.started_at))
    }

    /// Requests per loss: 1.0 means exactly one request per lost ADU (the
    /// ideal); larger values measure the post-fault request storm.
    pub fn dup_requests_per_loss(&self) -> f64 {
        if self.losses == 0 {
            0.0
        } else {
            self.dup_requests as f64 / self.losses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{PageId, SeqNo, SourceId};

    fn rec(detected: u64, recovered: Option<u64>) -> RecoveryRecord {
        RecoveryRecord {
            name: AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(0)),
            detected_at: SimTime::from_secs(detected),
            recovered_at: recovered.map(SimTime::from_secs),
            request_delay: Some(SimDuration::from_secs(2)),
            requests_sent: 1,
            requests_observed: 2,
            rtt_to_source: SimDuration::from_secs(4),
            gave_up: false,
        }
    }

    #[test]
    fn delay_normalization() {
        let r = rec(10, Some(16));
        assert_eq!(r.recovery_delay(), Some(SimDuration::from_secs(6)));
        assert_eq!(r.recovery_delay_over_rtt(), Some(1.5));
        assert_eq!(r.request_delay_over_rtt(), Some(0.5));
    }

    #[test]
    fn unrecovered_yields_none() {
        let r = rec(10, None);
        assert_eq!(r.recovery_delay(), None);
        assert_eq!(r.recovery_delay_over_rtt(), None);
    }

    #[test]
    fn zero_rtt_yields_none_not_infinity() {
        let mut r = rec(10, Some(16));
        r.rtt_to_source = SimDuration::ZERO;
        assert_eq!(r.recovery_delay(), Some(SimDuration::from_secs(6)));
        assert_eq!(r.recovery_delay_over_rtt(), None);
        assert_eq!(r.request_delay_over_rtt(), None);
    }

    #[test]
    fn gave_up_record_never_reports_a_delay() {
        let mut r = rec(10, None);
        r.gave_up = true;
        r.requests_sent = 5;
        assert!(r.gave_up);
        assert_eq!(r.recovery_delay(), None);
        assert_eq!(r.recovery_delay_over_rtt(), None);
        // The request delay is still meaningful (the first request did go
        // out), but the recovery-side metrics must stay None.
        assert_eq!(r.request_delay_over_rtt(), Some(0.5));
    }

    #[test]
    fn unrecovered_with_no_request_yet() {
        let mut r = rec(10, None);
        r.request_delay = None;
        r.requests_sent = 0;
        r.requests_observed = 0;
        assert_eq!(r.request_delay_over_rtt(), None);
        assert_eq!(r.recovery_delay_over_rtt(), None);
    }

    #[test]
    fn all_recovered_check() {
        let mut m = AgentMetrics::default();
        assert!(m.all_recovered()); // vacuously
        m.recoveries.insert(rec(1, None).name, rec(1, None));
        assert!(!m.all_recovered());
        let done = rec(1, Some(3));
        m.recoveries.insert(done.name, done);
        assert!(m.all_recovered());
        assert_eq!(m.completed_recoveries().count(), 1);
    }

    #[test]
    fn drop_inflight_keeps_only_completed() {
        let mut m = AgentMetrics::default();
        m.recoveries.insert(rec(1, None).name, rec(1, None));
        assert!(!m.all_recovered());
        m.drop_inflight();
        assert!(m.recoveries.is_empty());
        assert!(m.all_recovered());
        let done = rec(2, Some(5));
        m.recoveries.insert(done.name, done);
        m.drop_inflight();
        assert_eq!(m.recoveries.len(), 1);
    }

    #[test]
    fn fault_episode_metrics() {
        let ep = FaultEpisode {
            label: "partition".into(),
            started_at: SimTime::from_secs(10),
            reconsistent_at: Some(SimTime::from_secs(40)),
            losses: 5,
            dup_requests: 10,
            dup_repairs: 7,
        };
        assert_eq!(
            ep.time_to_reconsistency(),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(ep.dup_requests_per_loss(), 2.0);
        let unresolved = FaultEpisode {
            reconsistent_at: None,
            losses: 0,
            ..ep
        };
        assert_eq!(unresolved.time_to_reconsistency(), None);
        assert_eq!(unresolved.dup_requests_per_loss(), 0.0);
    }

    #[test]
    fn clear_episodes_keeps_counters() {
        let mut m = AgentMetrics::default();
        m.requests_sent = 5;
        m.recoveries.insert(rec(1, None).name, rec(1, None));
        m.clear_episodes();
        assert_eq!(m.requests_sent, 5);
        assert!(m.recoveries.is_empty());
    }
}

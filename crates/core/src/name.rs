//! Application Data Unit (ADU) naming.
//!
//! SRM's central assumption (Section II-C / III): *all data has a unique,
//! persistent name*, independent of the sending host, so that any member —
//! not just the original source — can answer a repair request. Names are
//! `(Source-ID, page, sequence number)`:
//!
//! - the [`SourceId`] is a globally unique, persistent member identifier
//!   ("Source-IDs are persistent" across application restarts);
//! - the [`PageId`] imposes the hierarchy over the namespace that session
//!   messages rely on ("we impose hierarchy on the data by partitioning the
//!   state space into pages"); a page is named by its creator plus a
//!   creator-local page number;
//! - the [`SeqNo`] is "a simple sequence number with sufficient precision to
//!   never wrap" — we use 64 bits.

use std::fmt;

/// Globally unique, persistent member identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u64);

/// Page identifier: the creating member plus a creator-local page number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// The member that created the page.
    pub creator: SourceId,
    /// Page number, locally unique to the creator.
    pub number: u32,
}

/// Per-source, per-page sequence number. 64 bits never wrap in practice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u64);

/// The unique, persistent name of one ADU.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AduName {
    /// The member that originated the data (not necessarily the member
    /// currently retransmitting it).
    pub source: SourceId,
    /// The page the data belongs to.
    pub page: PageId,
    /// Sequence number within `(source, page)`.
    pub seq: SeqNo,
}

impl SeqNo {
    /// The first sequence number.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The next sequence number.
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl PageId {
    /// Convenience constructor.
    pub fn new(creator: SourceId, number: u32) -> Self {
        PageId { creator, number }
    }
}

impl AduName {
    /// Convenience constructor.
    pub fn new(source: SourceId, page: PageId, seq: SeqNo) -> Self {
        AduName { source, page, seq }
    }
}

impl fmt::Debug for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}", self.creator, self.number)
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Debug for AduName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // e.g. "floyd:5" style from the paper, extended with the page.
        write!(f, "{}:{:?}:{}", self.source, self.page, self.seq.0)
    }
}

impl fmt::Display for AduName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_next() {
        assert_eq!(SeqNo::ZERO.next(), SeqNo(1));
        assert_eq!(SeqNo(41).next(), SeqNo(42));
    }

    #[test]
    fn name_ordering_is_lexicographic() {
        let p = PageId::new(SourceId(1), 0);
        let a = AduName::new(SourceId(1), p, SeqNo(5));
        let b = AduName::new(SourceId(1), p, SeqNo(6));
        let c = AduName::new(SourceId(2), p, SeqNo(0));
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn names_hash_and_compare_by_value() {
        use std::collections::HashSet;
        let p = PageId::new(SourceId(3), 7);
        let mut set = HashSet::new();
        set.insert(AduName::new(SourceId(3), p, SeqNo(1)));
        assert!(set.contains(&AduName::new(SourceId(3), p, SeqNo(1))));
        assert!(!set.contains(&AduName::new(SourceId(3), p, SeqNo(2))));
    }

    #[test]
    fn display_formats() {
        let p = PageId::new(SourceId(3), 7);
        let n = AduName::new(SourceId(3), p, SeqNo(1));
        assert_eq!(format!("{n}"), "s3:s3/p7:1");
    }
}

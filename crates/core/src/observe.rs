//! Bridge between the protocol layer and the `obs` observability crate.
//!
//! `obs` is deliberately ignorant of SRM wire types; this module owns the
//! conversions — `AduName` → [`obs::AduKey`], [`AgentMetrics`] →
//! [`obs::MemberSummary`] — and the whole-simulation harvest helpers the
//! experiment harness and the CLI share: enable tracing on every agent,
//! drain every agent's recorder into a merged [`obs::Timeline`], and fold
//! every agent's metrics into an [`obs::RunSummary`].

use netsim::Simulator;

use crate::agent::SrmAgent;
use crate::metrics::AgentMetrics;
use crate::name::AduName;

/// Convert a protocol ADU name into the dependency-free `obs` key.
pub fn adu_key(name: AduName) -> obs::AduKey {
    obs::AduKey {
        source: name.source.0,
        page_creator: name.page.creator.0,
        page_number: name.page.number,
        seq: name.seq.0,
    }
}

/// Fold one agent's counters and episode logs into a run-level summary:
/// a [`obs::MemberSummary`] counter row plus samples for the run histograms
/// (recovery/request delay in RTT units, duplicate requests per loss,
/// duplicate repairs per repaired ADU).
pub fn observe_agent(run: &mut obs::RunSummary, member: u64, m: &AgentMetrics) {
    let mut s = obs::MemberSummary::new(member);
    s.data_sent = m.data_sent;
    s.requests_sent = m.requests_sent;
    s.repairs_sent = m.repairs_sent;
    s.session_sent = m.session_sent;
    s.requests_held_down = m.requests_held_down;
    for r in m.recoveries.values() {
        s.losses += 1;
        if r.recovered_at.is_some() {
            s.recovered += 1;
        }
        if r.gave_up {
            s.gave_up += 1;
        }
        let dups = u64::from(r.requests_observed.saturating_sub(1));
        s.dup_requests += dups;
        run.dup_requests_per_loss.record(dups as f64);
        if let Some(v) = r.recovery_delay_over_rtt() {
            run.recovery_delay_rtt.record(v);
        }
        if let Some(v) = r.request_delay_over_rtt() {
            run.request_delay_rtt.record(v);
        }
    }
    for r in m.repairs.values() {
        let dups = u64::from(r.repairs_observed.saturating_sub(1));
        s.dup_repairs += dups;
        run.dup_repairs_per_adu.record(dups as f64);
    }
    run.add_member(s);
}

/// Enable event recording on every installed agent.  Recording never touches
/// the protocol's RNG or timers, so a traced run takes exactly the same
/// decisions as an untraced one.
pub fn enable_tracing(sim: &mut Simulator<SrmAgent>) {
    for node in sim.app_nodes() {
        if let Some(a) = sim.app_mut(node) {
            a.obs.enable();
        }
    }
}

/// Drain every agent's recorder into a merged timeline, attaching the run's
/// fault windows.
pub fn harvest_timeline(
    sim: &mut Simulator<SrmAgent>,
    faults: Vec<obs::FaultSpan>,
) -> obs::Timeline {
    let mut tl = obs::Timeline::new();
    for node in sim.app_nodes() {
        if let Some(a) = sim.app_mut(node) {
            let member = a.id.0;
            tl.add_member(member, a.obs.take_events());
        }
    }
    for f in faults {
        tl.add_fault(f);
    }
    tl
}

/// Fold every agent's metrics into a run summary (one counter row per live
/// member).
pub fn harvest_summary(sim: &Simulator<SrmAgent>) -> obs::RunSummary {
    let mut run = obs::RunSummary::new();
    for node in sim.app_nodes() {
        if let Some(a) = sim.app(node) {
            observe_agent(&mut run, a.id.0, &a.metrics);
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RecoveryRecord;
    use crate::name::{PageId, SeqNo, SourceId};
    use netsim::{SimDuration, SimTime};

    fn name(seq: u64) -> AduName {
        AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(seq))
    }

    #[test]
    fn adu_key_roundtrips_display() {
        let n = name(5);
        assert_eq!(adu_key(n).to_string(), n.to_string());
    }

    #[test]
    fn observe_agent_folds_counters_and_histograms() {
        let mut m = AgentMetrics::default();
        m.data_sent = 7;
        m.requests_sent = 2;
        m.session_sent = 1;
        m.recoveries.insert(
            name(0),
            RecoveryRecord {
                name: name(0),
                detected_at: SimTime::from_secs(10),
                recovered_at: Some(SimTime::from_secs(16)),
                request_delay: Some(SimDuration::from_secs(2)),
                requests_sent: 1,
                requests_observed: 3,
                rtt_to_source: SimDuration::from_secs(4),
                gave_up: false,
            },
        );
        m.recoveries.insert(
            name(1),
            RecoveryRecord {
                name: name(1),
                detected_at: SimTime::from_secs(10),
                recovered_at: None,
                request_delay: None,
                requests_sent: 0,
                requests_observed: 0,
                rtt_to_source: SimDuration::from_secs(4),
                gave_up: true,
            },
        );
        let mut run = obs::RunSummary::new();
        observe_agent(&mut run, 4, &m);
        assert_eq!(run.members.len(), 1);
        let s = &run.members[0];
        assert_eq!(s.member, 4);
        assert_eq!(s.losses, 2);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.gave_up, 1);
        assert_eq!(s.dup_requests, 2); // 3 observed - 1 for the recovered ADU
        assert_eq!(run.recovery_delay_rtt.count(), 1);
        assert!((run.recovery_delay_rtt.mean().unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(run.dup_requests_per_loss.count(), 2);
        assert_eq!(run.session_share.count(), 1);
    }
}

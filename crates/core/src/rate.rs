//! Token-bucket rate limiter (Section III-E).
//!
//! "each wb session would have a sender bandwidth limit advertised as part
//! of the session announcement, and individual members would use a token
//! bucket rate limiter to enforce this peak rate on transmissions."

use crate::config::RateLimit;
use netsim::{SimDuration, SimTime};

/// A classic token bucket.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,  // tokens (bytes) per second
    depth: f64, // bucket capacity
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(limit: RateLimit) -> Self {
        TokenBucket {
            rate: limit.bytes_per_sec,
            depth: limit.burst_bytes,
            tokens: limit.burst_bytes,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = now.since(self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.depth);
            self.last = now;
        }
    }

    /// Try to send `bytes` at `now`. On success the tokens are consumed.
    ///
    /// A message larger than the bucket depth is admitted once the bucket
    /// is completely full and drives the token level negative — the debt
    /// must be paid back before anything else sends, so the *long-run*
    /// rate still honors the limit. (Refusing oversize messages outright
    /// would wedge the send queue forever: they could never be admitted.)
    pub fn try_consume(&mut self, now: SimTime, bytes: f64) -> bool {
        self.refill(now);
        // The epsilon absorbs nanosecond-rounding of computed wait times:
        // without it, a refill that lands at depth − 1e-8 would loop on a
        // zero-length wait forever.
        const EPS: f64 = 1e-6;
        if self.tokens + EPS >= bytes || (bytes > self.depth && self.tokens + EPS >= self.depth) {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }

    /// How long from `now` until `bytes` can be admitted. Zero if already
    /// admissible (including the oversize-with-full-bucket case).
    pub fn time_until_available(&mut self, now: SimTime, bytes: f64) -> SimDuration {
        self.refill(now);
        let need = bytes.min(self.depth) - self.tokens;
        if need <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(need / self.rate)
        }
    }

    /// Current token level (for tests/metrics).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limit() -> RateLimit {
        RateLimit {
            bytes_per_sec: 100.0,
            burst_bytes: 200.0,
        }
    }

    #[test]
    fn starts_full_and_consumes() {
        let mut tb = TokenBucket::new(limit());
        assert!(tb.try_consume(SimTime::ZERO, 150.0));
        assert!(!tb.try_consume(SimTime::ZERO, 100.0));
        assert!((tb.tokens() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn refills_at_rate() {
        let mut tb = TokenBucket::new(limit());
        assert!(tb.try_consume(SimTime::ZERO, 200.0));
        // After 1 s, 100 tokens have accrued.
        assert!(tb.try_consume(SimTime::from_secs(1), 100.0));
        assert!(!tb.try_consume(SimTime::from_secs(1), 1.0));
    }

    #[test]
    fn never_exceeds_depth() {
        let mut tb = TokenBucket::new(limit());
        tb.try_consume(SimTime::ZERO, 0.0);
        // A long idle period does not overfill the bucket.
        tb.refill(SimTime::from_secs(1000));
        assert!(tb.tokens() <= 200.0 + 1e-9);
    }

    #[test]
    fn time_until_available() {
        let mut tb = TokenBucket::new(limit());
        assert!(tb.try_consume(SimTime::ZERO, 200.0));
        let wait = tb.time_until_available(SimTime::ZERO, 50.0);
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(
            tb.time_until_available(SimTime::from_secs(10), 50.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn oversize_messages_are_admitted_with_debt() {
        // 500-byte message, 200-byte bucket: admitted only when the bucket
        // is full, leaving a token debt that delays the next send.
        let mut tb = TokenBucket::new(limit());
        assert!(tb.try_consume(SimTime::ZERO, 500.0), "full bucket admits oversize");
        assert!(tb.tokens() < 0.0, "debt incurred: {}", tb.tokens());
        // Nothing else goes out until the debt (300) plus its own cost
        // accrues: a 100-byte message needs 400 tokens = 4 s.
        assert!(!tb.try_consume(SimTime::from_secs(3), 100.0));
        assert!(tb.try_consume(SimTime::from_secs(4), 100.0));
        // A drained (but not indebted) bucket still refuses oversize until
        // completely full again.
        let wait = tb.time_until_available(SimTime::from_secs(4), 500.0);
        assert!(wait.as_secs_f64() > 0.0);
    }

    #[test]
    fn long_run_rate_is_enforced() {
        let mut tb = TokenBucket::new(limit());
        let mut sent = 0.0;
        // Attempt 30 bytes every 100 ms for 100 s: offered 300 B/s, limit 100.
        for tick in 0..1000u64 {
            let now = SimTime::from_secs_f64(tick as f64 * 0.1);
            if tb.try_consume(now, 30.0) {
                sent += 30.0;
            }
        }
        let rate = sent / 100.0;
        assert!(rate <= 103.0, "rate={rate}"); // burst allowance
        assert!(rate >= 95.0, "rate={rate}");
    }
}

//! Per-ADU loss-recovery state machines (Section III-B).
//!
//! [`RequestState`] lives on members that are *missing* an ADU: it owns the
//! request timer, the exponential backoff, and the "ignore-backoff"
//! heuristic that distinguishes same-iteration duplicate requests from the
//! next recovery iteration. [`RepairState`] lives on members that *hold*
//! the data and heard a request: it owns the repair timer and is cancelled
//! by hearing someone else's repair. The hold-down window ("host B ignores
//! requests for data for 3·d_SB seconds after sending or receiving a repair
//! for that data") is tracked by the agent per name.
//!
//! These are pure state machines — all clock readings and random draws come
//! in as arguments — so they are directly unit-testable.

use crate::name::AduName;
use crate::timers::TimerInterval;
use netsim::{SimDuration, SimTime, TimerId};
use rand::Rng;

/// Why a request state reached its end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The missing data arrived.
    Recovered,
    /// `max_request_rounds` transmissions went unanswered.
    GaveUp,
}

/// State for one missing ADU on one member.
#[derive(Clone, Debug)]
pub struct RequestState {
    /// The missing ADU.
    pub name: AduName,
    /// When the loss was detected (first timer set).
    pub detected_at: SimTime,
    /// The un-backed-off interval `[C1·d, (C1+C2)·d]`.
    pub base_interval: TimerInterval,
    /// The member's distance estimate to the source at detection time.
    pub dist_to_source: SimDuration,
    /// Current backoff exponent (0 = original timer).
    pub backoff_count: u32,
    /// Live timer handle.
    pub timer: Option<TimerId>,
    /// When the live timer fires.
    pub expire_at: SimTime,
    /// Ignore duplicate requests until this instant (footnote 1: set to
    /// halfway between backoff time and expiry; requests before it belong
    /// to the same recovery iteration).
    pub ignore_backoff_until: Option<SimTime>,
    /// Requests this member has itself multicast.
    pub requests_sent: u32,
    /// Requests observed in total (sent or heard).
    pub requests_observed: u32,
    /// When the first request (ours or another's) was sent/heard — the end
    /// of the "request delay" measurement.
    pub first_request_event_at: Option<SimTime>,
}

/// What the agent must do after feeding an event to a [`RequestState`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestAction {
    /// Nothing; keep waiting.
    None,
    /// Cancel the old timer and re-arm at the given delay from now.
    Rearm(SimDuration),
}

impl RequestState {
    /// Create the state at loss-detection time and draw the first timer.
    /// Returns the state and the delay at which to arm the timer.
    pub fn new<R: Rng>(
        name: AduName,
        now: SimTime,
        c1: f64,
        c2: f64,
        dist: SimDuration,
        rng: &mut R,
    ) -> (Self, SimDuration) {
        let base = TimerInterval::request(c1, c2, dist);
        let delay = base.draw(rng);
        (
            RequestState {
                name,
                detected_at: now,
                base_interval: base,
                dist_to_source: dist,
                backoff_count: 0,
                timer: None,
                expire_at: now + delay,
                ignore_backoff_until: None,
                requests_sent: 0,
                requests_observed: 0,
                first_request_event_at: None,
            },
            delay,
        )
    }

    /// Our own timer expired and we are about to multicast the request.
    /// Performs the post-send backoff ("multicasts a request for the
    /// missing data, and doubles the request timer to wait for the repair")
    /// and returns the delay for the retransmit timer.
    pub fn on_timer_expired<R: Rng>(
        &mut self,
        now: SimTime,
        backoff: f64,
        rng: &mut R,
    ) -> SimDuration {
        self.requests_sent += 1;
        self.requests_observed += 1;
        if self.first_request_event_at.is_none() {
            self.first_request_event_at = Some(now);
        }
        self.backoff_count += 1;
        let delay = self
            .base_interval
            .backed_off(backoff, self.backoff_count)
            .draw(rng);
        self.expire_at = now + delay;
        // Duplicates arriving while our own request is in flight belong to
        // this iteration; ignore them until halfway to the new expiry.
        self.ignore_backoff_until = Some(now.midpoint(self.expire_at));
        delay
    }

    /// Another member's request for this ADU was heard at `now`.
    ///
    /// First hearing (or a hearing past the ignore-backoff horizon) backs
    /// the timer off; hearings within the horizon are counted but ignored.
    pub fn on_request_heard<R: Rng>(
        &mut self,
        now: SimTime,
        backoff: f64,
        rng: &mut R,
    ) -> RequestAction {
        self.requests_observed += 1;
        if self.first_request_event_at.is_none() {
            self.first_request_event_at = Some(now);
        }
        if let Some(horizon) = self.ignore_backoff_until {
            if now < horizon {
                // Same iteration of loss recovery: no further backoff.
                return RequestAction::None;
            }
        }
        self.backoff_count += 1;
        let delay = self
            .base_interval
            .backed_off(backoff, self.backoff_count)
            .draw(rng);
        self.expire_at = now + delay;
        self.ignore_backoff_until = Some(now.midpoint(self.expire_at));
        RequestAction::Rearm(delay)
    }

    /// Duplicate requests observed beyond the first.
    pub fn duplicate_requests(&self) -> u32 {
        self.requests_observed.saturating_sub(1)
    }

    /// The request delay: from first timer set until the first request was
    /// sent or heard (Section VI's per-member metric). `None` if no request
    /// has happened yet.
    pub fn request_delay(&self) -> Option<SimDuration> {
        self.first_request_event_at.map(|t| t.since(self.detected_at))
    }
}

/// State for one pending repair on one member that holds the data.
#[derive(Clone, Debug)]
pub struct RepairState {
    /// The requested ADU.
    pub name: AduName,
    /// When the triggering request arrived (timer set).
    pub set_at: SimTime,
    /// The requestor whose request triggered the timer (answered in
    /// two-step local recovery).
    pub requestor: crate::name::SourceId,
    /// The initial TTL the triggering request was sent with (echoed by
    /// local repairs, Section VII-B3).
    pub request_ttl: u8,
    /// Whether the triggering request was administratively scoped.
    pub request_admin_scoped: bool,
    /// Distance estimate to the requestor when the timer was set.
    pub dist_to_requestor: SimDuration,
    /// Live timer handle.
    pub timer: Option<TimerId>,
    /// When the timer fires.
    pub expire_at: SimTime,
    /// Whether we actually multicast the repair.
    pub sent: bool,
    /// Repairs observed for this name (ours or others').
    pub repairs_observed: u32,
    /// When the first repair was sent or heard.
    pub first_repair_event_at: Option<SimTime>,
}

impl RepairState {
    /// Create at request-arrival time; returns the state and timer delay
    /// drawn from `[D1·d, (D1+D2)·d]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        name: AduName,
        now: SimTime,
        requestor: crate::name::SourceId,
        request_ttl: u8,
        request_admin_scoped: bool,
        d1: f64,
        d2: f64,
        dist: SimDuration,
        rng: &mut R,
    ) -> (Self, SimDuration) {
        let delay = TimerInterval::repair(d1, d2, dist).draw(rng);
        (
            RepairState {
                name,
                set_at: now,
                requestor,
                request_ttl,
                request_admin_scoped,
                dist_to_requestor: dist,
                timer: None,
                expire_at: now + delay,
                sent: false,
                repairs_observed: 0,
                first_repair_event_at: None,
            },
            delay,
        )
    }

    /// Our repair timer expired; we multicast the repair.
    pub fn on_timer_expired(&mut self, now: SimTime) {
        self.sent = true;
        self.repairs_observed += 1;
        if self.first_repair_event_at.is_none() {
            self.first_repair_event_at = Some(now);
        }
    }

    /// Someone else's repair for this name was heard; cancel our timer.
    pub fn on_repair_heard(&mut self, now: SimTime) {
        self.repairs_observed += 1;
        if self.first_repair_event_at.is_none() {
            self.first_repair_event_at = Some(now);
        }
    }

    /// Duplicate repairs observed beyond the first.
    pub fn duplicate_repairs(&self) -> u32 {
        self.repairs_observed.saturating_sub(1)
    }

    /// The repair delay: from timer set until the first repair was sent or
    /// heard.
    pub fn repair_delay(&self) -> Option<SimDuration> {
        self.first_repair_event_at.map(|t| t.since(self.set_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{PageId, SeqNo, SourceId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name() -> AduName {
        AduName::new(SourceId(1), PageId::new(SourceId(1), 0), SeqNo(5))
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn first_timer_drawn_from_request_interval() {
        let mut r = rng();
        for _ in 0..100 {
            let (_, delay) = RequestState::new(
                name(),
                SimTime::from_secs(10),
                2.0,
                4.0,
                SimDuration::from_secs(3),
                &mut r,
            );
            let d = delay.as_secs_f64();
            assert!((6.0..=18.0).contains(&d), "delay {d} outside [6,18]");
        }
    }

    #[test]
    fn expiry_backs_off_and_sets_ignore_horizon() {
        let mut r = rng();
        let (mut st, _) = RequestState::new(
            name(),
            SimTime::ZERO,
            1.0,
            1.0,
            SimDuration::from_secs(1),
            &mut r,
        );
        let now = SimTime::from_secs(2);
        let delay = st.on_timer_expired(now, 2.0, &mut r);
        // Backed-off interval is [2, 4].
        let d = delay.as_secs_f64();
        assert!((2.0..=4.0).contains(&d));
        assert_eq!(st.requests_sent, 1);
        assert_eq!(st.backoff_count, 1);
        let horizon = st.ignore_backoff_until.unwrap();
        assert_eq!(horizon, now.midpoint(st.expire_at));
    }

    #[test]
    fn heard_request_suppresses_within_horizon() {
        let mut r = rng();
        let (mut st, _) = RequestState::new(
            name(),
            SimTime::ZERO,
            1.0,
            1.0,
            SimDuration::from_secs(1),
            &mut r,
        );
        // First heard request → backoff (rearm).
        let a1 = st.on_request_heard(SimTime::from_secs(1), 2.0, &mut r);
        assert!(matches!(a1, RequestAction::Rearm(_)));
        assert_eq!(st.backoff_count, 1);
        let horizon = st.ignore_backoff_until.unwrap();
        // Second request inside the horizon → ignored (same iteration).
        let inside = SimTime::from_secs_f64(horizon.as_secs_f64() - 0.01);
        let a2 = st.on_request_heard(inside, 2.0, &mut r);
        assert_eq!(a2, RequestAction::None);
        assert_eq!(st.backoff_count, 1);
        // A request after the horizon → next iteration → backoff again.
        let after = SimTime::from_secs_f64(horizon.as_secs_f64() + 0.01);
        let a3 = st.on_request_heard(after, 2.0, &mut r);
        assert!(matches!(a3, RequestAction::Rearm(_)));
        assert_eq!(st.backoff_count, 2);
        assert_eq!(st.duplicate_requests(), 2);
    }

    #[test]
    fn request_delay_measures_first_event_only() {
        let mut r = rng();
        let (mut st, _) = RequestState::new(
            name(),
            SimTime::from_secs(10),
            1.0,
            1.0,
            SimDuration::from_secs(1),
            &mut r,
        );
        assert_eq!(st.request_delay(), None);
        st.on_request_heard(SimTime::from_secs(13), 2.0, &mut r);
        assert_eq!(st.request_delay(), Some(SimDuration::from_secs(3)));
        st.on_request_heard(SimTime::from_secs(20), 2.0, &mut r);
        assert_eq!(st.request_delay(), Some(SimDuration::from_secs(3)));
    }

    #[test]
    fn repair_state_lifecycle() {
        let mut r = rng();
        let (mut st, delay) = RepairState::new(
            name(),
            SimTime::from_secs(5),
            SourceId(7),
            32,
            false,
            1.0,
            2.0,
            SimDuration::from_secs(2),
            &mut r,
        );
        let d = delay.as_secs_f64();
        assert!((2.0..=6.0).contains(&d));
        st.on_repair_heard(SimTime::from_secs(6));
        assert_eq!(st.duplicate_repairs(), 0);
        assert!(!st.sent);
        st.on_timer_expired(SimTime::from_secs(8));
        assert!(st.sent);
        assert_eq!(st.duplicate_repairs(), 1);
        assert_eq!(st.repair_delay(), Some(SimDuration::from_secs(1)));
        assert_eq!(st.requestor, SourceId(7));
        assert_eq!(st.request_ttl, 32);
    }

    #[test]
    fn triple_backoff_grows_interval() {
        let mut r = rng();
        let (mut st, _) = RequestState::new(
            name(),
            SimTime::ZERO,
            1.0,
            0.0, // deterministic draws
            SimDuration::from_secs(1),
            &mut r,
        );
        let d1 = st.on_timer_expired(SimTime::from_secs(1), 3.0, &mut r);
        assert_eq!(d1, SimDuration::from_secs(3));
        let d2 = st.on_timer_expired(st.expire_at, 3.0, &mut r);
        assert_eq!(d2, SimDuration::from_secs(9));
    }
}

//! Prioritized send queue (Section III-E).
//!
//! "When a member of a wb session is able to send a packet, the highest
//! priority goes to requests or repairs for the current page, middle
//! priority to new data, and lowest priority to requests or repairs for
//! previous pages." The queue is drained by the agent as the token-bucket
//! rate limiter permits.

use crate::wire::Body;
use netsim::SendOptions;
use std::collections::VecDeque;

/// Priority classes, highest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SendClass {
    /// Requests/repairs for the page currently being viewed.
    CurrentPageRecovery = 0,
    /// Newly originated data.
    NewData = 1,
    /// Requests/repairs for previous pages.
    OldPageRecovery = 2,
}

/// A message waiting to be transmitted; the header timestamp is stamped at
/// actual send time.
#[derive(Clone, Debug)]
pub struct PendingSend {
    /// Destination multicast group (usually the session group; a recovery
    /// group for Section VII-B2 local recovery).
    pub group: netsim::GroupId,
    /// Message body.
    pub body: Body,
    /// Network send options (TTL, scope, flow).
    pub opts: SendOptions,
    /// Accounting size in bytes.
    pub size: u32,
}

/// Three-level strict-priority FIFO.
#[derive(Clone, Debug, Default)]
pub struct SendQueue {
    queues: [VecDeque<PendingSend>; 3],
}

impl SendQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue under a class.
    pub fn push(&mut self, class: SendClass, msg: PendingSend) {
        self.queues[class as usize].push_back(msg);
    }

    /// Size in bytes of the next message that would be sent.
    pub fn peek_size(&self) -> Option<u32> {
        self.queues
            .iter()
            .find_map(|q| q.front().map(|m| m.size))
    }

    /// Dequeue the highest-priority message.
    pub fn pop(&mut self) -> Option<PendingSend> {
        self.queues.iter_mut().find_map(|q| q.pop_front())
    }

    /// Total queued messages.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{AduName, PageId, SeqNo, SourceId};
    use crate::wire::RequestBody;

    fn msg(tag: u64, size: u32) -> PendingSend {
        PendingSend {
            group: netsim::GroupId(0),
            body: Body::Request(RequestBody {
                name: AduName::new(SourceId(tag), PageId::new(SourceId(0), 0), SeqNo(0)),
                dist_to_source: 0.0,
            }),
            opts: SendOptions::default(),
            size,
        }
    }

    fn tag_of(m: &PendingSend) -> u64 {
        match &m.body {
            Body::Request(r) => r.name.source.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn strict_priority_order() {
        let mut q = SendQueue::new();
        q.push(SendClass::NewData, msg(2, 10));
        q.push(SendClass::OldPageRecovery, msg(3, 10));
        q.push(SendClass::CurrentPageRecovery, msg(1, 10));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|m| tag_of(&m)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_class() {
        let mut q = SendQueue::new();
        q.push(SendClass::NewData, msg(1, 10));
        q.push(SendClass::NewData, msg(2, 10));
        assert_eq!(tag_of(&q.pop().unwrap()), 1);
        assert_eq!(tag_of(&q.pop().unwrap()), 2);
    }

    #[test]
    fn peek_size_tracks_head() {
        let mut q = SendQueue::new();
        assert_eq!(q.peek_size(), None);
        q.push(SendClass::NewData, msg(1, 42));
        q.push(SendClass::CurrentPageRecovery, msg(2, 7));
        assert_eq!(q.peek_size(), Some(7));
        q.pop();
        assert_eq!(q.peek_size(), Some(42));
        assert_eq!(q.len(), 1);
    }
}

//! Session-message scheduling (Section III-A).
//!
//! "The average bandwidth consumed by session messages is limited to a
//! small fraction (e.g., 5%) of the aggregate data bandwidth … SRM members
//! use the algorithm developed for vat for dynamically adjusting the
//! generation rate of session messages in proportion to the multicast
//! group size."
//!
//! With a session bandwidth `B`, a session fraction `f`, a nominal message
//! size `s`, and an estimated group size `G`, the aggregate session-message
//! rate is `f·B / s` messages per second, so each member sends every
//! `G·s / (f·B)` seconds. Like vat, the interval is randomized (uniform in
//! `[0.5, 1.5)` of the nominal value) to avoid synchronization.

use netsim::SimDuration;
use rand::Rng;

/// Computes session-message intervals.
#[derive(Clone, Debug)]
pub struct SessionScheduler {
    /// Aggregate session data bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Fraction of bandwidth for session messages.
    pub fraction: f64,
    /// Nominal session-message size, bytes.
    pub msg_bytes: f64,
    /// Floor on the interval.
    pub min_interval: SimDuration,
}

impl SessionScheduler {
    /// Deterministic (un-jittered) interval for an estimated group size.
    pub fn nominal_interval(&self, group_size: usize) -> SimDuration {
        let g = group_size.max(1) as f64;
        let session_bw = self.bandwidth * self.fraction;
        let secs = g * self.msg_bytes / session_bw;
        let d = SimDuration::from_secs_f64(secs);
        if d < self.min_interval {
            self.min_interval
        } else {
            d
        }
    }

    /// Jittered interval: uniform in `[0.5, 1.5) ×` the nominal value.
    pub fn next_interval<R: Rng>(&self, group_size: usize, rng: &mut R) -> SimDuration {
        let jitter = rng.random_range(0.5..1.5);
        self.nominal_interval(group_size).mul_f64(jitter)
    }

    /// Aggregate session-message bandwidth across `group_size` members
    /// (bytes/second) — used by tests to check the 5% cap holds.
    pub fn aggregate_rate(&self, group_size: usize) -> f64 {
        let per_member = self.msg_bytes
            / self
                .nominal_interval(group_size)
                .as_secs_f64();
        per_member * group_size.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sched() -> SessionScheduler {
        SessionScheduler {
            bandwidth: 16_000.0,
            fraction: 0.05,
            msg_bytes: 100.0,
            min_interval: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn interval_scales_with_group_size() {
        let s = sched();
        let i10 = s.nominal_interval(10).as_secs_f64();
        let i100 = s.nominal_interval(100).as_secs_f64();
        assert!((i100 / i10 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_rate_respects_fraction() {
        let s = sched();
        for g in [2usize, 10, 100, 1000] {
            let agg = s.aggregate_rate(g);
            // ≤ 5% of 16 kB/s = 800 B/s (up to the min-interval floor for
            // tiny groups, which only lowers the rate).
            assert!(agg <= 0.05 * 16_000.0 + 1e-6, "g={g} agg={agg}");
        }
    }

    #[test]
    fn min_interval_floor_applies() {
        let s = sched();
        // One member would otherwise send every 0.125 s.
        assert_eq!(s.nominal_interval(1), SimDuration::from_secs(1));
    }

    #[test]
    fn jitter_stays_in_band() {
        let s = sched();
        let mut rng = StdRng::seed_from_u64(4);
        let nominal = s.nominal_interval(50).as_secs_f64();
        for _ in 0..500 {
            let j = s.next_interval(50, &mut rng).as_secs_f64();
            assert!(j >= 0.5 * nominal - 1e-9);
            assert!(j < 1.5 * nominal + 1e-9);
        }
    }
}

//! The ADU store: what this member has received or originated.
//!
//! Data is held per `(source, page)` stream as a map from sequence number to
//! payload. The store answers the three questions loss recovery needs:
//! *do I have this name?* (so I can answer a request), *what is the highest
//! sequence I know of per stream?* (for session messages), and *which
//! sequence numbers am I missing?* (gap detection).
//!
//! "This does not require that all session members keep all of the data all
//! of the time" — a retention limit can evict old ADUs; reliability only
//! needs each item to survive *somewhere* in the session.

use crate::name::{AduName, PageId, SeqNo, SourceId};
use bytes::Bytes;
use std::collections::BTreeMap;

/// One `(source, page)` stream.
#[derive(Clone, Debug, Default)]
struct Stream {
    /// Received payloads by sequence number.
    data: BTreeMap<SeqNo, Bytes>,
    /// Highest sequence number known to exist (from data or session
    /// messages), even if not yet received.
    highest_known: Option<SeqNo>,
}

/// Per-member data store.
#[derive(Clone, Debug)]
pub struct AduStore {
    streams: BTreeMap<(SourceId, PageId), Stream>,
    /// If set, keep at most this many ADUs per stream, evicting the lowest
    /// sequence numbers first.
    pub retention_per_stream: Option<usize>,
    /// Upper bound on how many missing names a single sequence-number jump
    /// may enumerate. A corrupt (or hostile) packet claiming seq 2⁶²
    /// would otherwise make gap detection materialize billions of request
    /// states; with the cap, only the *newest* `gap_cap` holes are chased.
    /// Legitimate gaps are orders of magnitude smaller.
    pub gap_cap: u64,
}

impl Default for AduStore {
    fn default() -> Self {
        AduStore {
            streams: BTreeMap::new(),
            retention_per_stream: None,
            gap_cap: 4096,
        }
    }
}

impl AduStore {
    /// Empty store with unlimited retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a payload under `name`. Returns `true` if it was new.
    ///
    /// Re-insertion under the same name is idempotent and keeps the first
    /// payload: "the name always refers to the same data".
    pub fn insert(&mut self, name: AduName, payload: Bytes) -> bool {
        let s = self.streams.entry((name.source, name.page)).or_default();
        let fresh = !s.data.contains_key(&name.seq);
        if fresh {
            s.data.insert(name.seq, payload);
            if s.highest_known.is_none_or(|h| name.seq > h) {
                s.highest_known = Some(name.seq);
            }
            if let Some(limit) = self.retention_per_stream {
                while s.data.len() > limit {
                    let oldest = *s.data.keys().next().expect("nonempty");
                    s.data.remove(&oldest);
                }
            }
        }
        fresh
    }

    /// Do we hold the payload for `name`?
    pub fn has(&self, name: &AduName) -> bool {
        self.streams
            .get(&(name.source, name.page))
            .is_some_and(|s| s.data.contains_key(&name.seq))
    }

    /// Retrieve the payload for `name`, if held.
    pub fn get(&self, name: &AduName) -> Option<Bytes> {
        self.streams
            .get(&(name.source, name.page))
            .and_then(|s| s.data.get(&name.seq))
            .cloned()
    }

    /// Record that sequence numbers up to `seq` exist on `(source, page)`
    /// (learned from a data arrival or a session message). Returns the list
    /// of sequence numbers that are now known missing — i.e. the newly
    /// detected gap, ascending.
    ///
    /// Jumps larger than [`AduStore::gap_cap`] report only the newest
    /// `gap_cap` holes (bounded resource use under corruption; see the
    /// field's documentation).
    pub fn note_exists(&mut self, source: SourceId, page: PageId, seq: SeqNo) -> Vec<AduName> {
        let s = self.streams.entry((source, page)).or_default();
        let prev = s.highest_known;
        if prev.is_none_or(|h| seq > h) {
            s.highest_known = Some(seq);
        }
        // Newly discovered names: (prev, seq]; missing = those not held.
        let mut start = match prev {
            None => 0,
            Some(h) => h.0.saturating_add(1),
        };
        if start > seq.0 {
            return Vec::new();
        }
        let span = seq.0 - start + 1;
        if span > self.gap_cap {
            start = seq.0 - self.gap_cap + 1;
        }
        (start..=seq.0)
            .map(SeqNo)
            .filter(|q| !s.data.contains_key(q))
            .map(|q| AduName::new(source, page, q))
            .collect()
    }

    /// Highest sequence number known to exist on `(source, page)`.
    pub fn highest_known(&self, source: SourceId, page: PageId) -> Option<SeqNo> {
        self.streams.get(&(source, page)).and_then(|s| s.highest_known)
    }

    /// Every name known to exist but not held, across all streams of `page`
    /// (the newest [`AduStore::gap_cap`] per stream, for bounded output).
    pub fn missing_on_page(&self, page: PageId) -> Vec<AduName> {
        let mut out = Vec::new();
        for ((src, pg), s) in &self.streams {
            if *pg != page {
                continue;
            }
            if let Some(h) = s.highest_known {
                let start = (h.0 + 1).saturating_sub(self.gap_cap);
                for q in start..=h.0 {
                    if !s.data.contains_key(&SeqNo(q)) {
                        out.push(AduName::new(*src, *pg, SeqNo(q)));
                    }
                }
            }
        }
        out
    }

    /// The session-message state report for `page`: highest sequence known
    /// per active source (Section III-A). Sorted by source.
    pub fn page_state(&self, page: PageId) -> Vec<(SourceId, SeqNo)> {
        self.streams
            .iter()
            .filter(|((_, pg), _)| *pg == page)
            .filter_map(|((src, _), s)| s.highest_known.map(|h| (*src, h)))
            .collect()
    }

    /// All pages this store has streams for, ascending, deduplicated.
    pub fn known_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.streams.keys().map(|&(_, p)| p).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Count of ADUs held across all streams.
    pub fn len(&self) -> usize {
        self.streams.values().map(|s| s.data.len()).sum()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: SourceId = SourceId(1);

    fn page() -> PageId {
        PageId::new(SRC, 0)
    }

    fn n(seq: u64) -> AduName {
        AduName::new(SRC, page(), SeqNo(seq))
    }

    #[test]
    fn insert_and_get() {
        let mut st = AduStore::new();
        assert!(st.insert(n(0), Bytes::from_static(b"a")));
        assert!(st.has(&n(0)));
        assert_eq!(st.get(&n(0)).unwrap(), Bytes::from_static(b"a"));
        assert!(!st.has(&n(1)));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn reinsert_is_idempotent_and_keeps_first() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::from_static(b"first"));
        assert!(!st.insert(n(0), Bytes::from_static(b"second")));
        assert_eq!(st.get(&n(0)).unwrap(), Bytes::from_static(b"first"));
    }

    #[test]
    fn gap_detection_on_data_arrival() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::new());
        let missing = st.note_exists(SRC, page(), SeqNo(3));
        assert_eq!(missing, vec![n(1), n(2), n(3)]);
        // A later note for the same high water mark reports nothing new.
        assert!(st.note_exists(SRC, page(), SeqNo(3)).is_empty());
    }

    #[test]
    fn gap_detection_from_scratch_includes_seq_zero() {
        let mut st = AduStore::new();
        // Session message says seq 2 exists; we have nothing.
        let missing = st.note_exists(SRC, page(), SeqNo(2));
        assert_eq!(missing, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn missing_on_page_reflects_holes() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::new());
        st.insert(n(2), Bytes::new());
        st.note_exists(SRC, page(), SeqNo(4));
        assert_eq!(st.missing_on_page(page()), vec![n(1), n(3), n(4)]);
    }

    #[test]
    fn page_state_reports_highest_known() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::new());
        st.note_exists(SRC, page(), SeqNo(5));
        let other = SourceId(2);
        st.insert(AduName::new(other, page(), SeqNo(7)), Bytes::new());
        let mut state = st.page_state(page());
        state.sort();
        assert_eq!(state, vec![(SRC, SeqNo(5)), (other, SeqNo(7))]);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut st = AduStore::new();
        st.retention_per_stream = Some(2);
        st.insert(n(0), Bytes::new());
        st.insert(n(1), Bytes::new());
        st.insert(n(2), Bytes::new());
        assert!(!st.has(&n(0)));
        assert!(st.has(&n(1)));
        assert!(st.has(&n(2)));
        // highest_known is unaffected by eviction.
        assert_eq!(st.highest_known(SRC, page()), Some(SeqNo(2)));
    }

    #[test]
    fn gap_cap_bounds_enumeration() {
        let mut st = AduStore::new();
        st.gap_cap = 10;
        // A corrupt claim of seq 2^40 yields only the newest 10 names.
        let missing = st.note_exists(SRC, page(), SeqNo(1 << 40));
        assert_eq!(missing.len(), 10);
        assert_eq!(missing.last().unwrap().seq, SeqNo(1 << 40));
        assert_eq!(missing.first().unwrap().seq, SeqNo((1 << 40) - 9));
        // missing_on_page is bounded the same way.
        assert_eq!(st.missing_on_page(page()).len(), 10);
        // Subsequent small jumps behave normally.
        let more = st.note_exists(SRC, page(), SeqNo((1 << 40) + 2));
        assert_eq!(more.len(), 2);
    }

    #[test]
    fn known_pages_lists_all() {
        let mut st = AduStore::new();
        let p0 = PageId::new(SRC, 0);
        let p1 = PageId::new(SRC, 1);
        st.insert(AduName::new(SRC, p0, SeqNo(0)), Bytes::new());
        st.insert(AduName::new(SRC, p1, SeqNo(0)), Bytes::new());
        st.insert(AduName::new(SourceId(9), p1, SeqNo(0)), Bytes::new());
        assert_eq!(st.known_pages(), vec![p0, p1]);
    }
}

//! The ADU store: what this member has received or originated.
//!
//! Data is held per `(source, page)` stream as a map from sequence number to
//! payload. The store answers the three questions loss recovery needs:
//! *do I have this name?* (so I can answer a request), *what is the highest
//! sequence I know of per stream?* (for session messages), and *which
//! sequence numbers am I missing?* (gap detection).
//!
//! "This does not require that all session members keep all of the data all
//! of the time" — a retention limit can evict old ADUs; reliability only
//! needs each item to survive *somewhere* in the session.
//!
//! # Durability
//!
//! The store optionally sits on top of a [`Persistence`] layer (implemented
//! by the `srm-store` crate's write-ahead log). When attached:
//!
//! * every fresh insert is also appended to the log before it is visible;
//! * a bounded in-memory cache ([`AduStore::cache_per_stream`]) evicts the
//!   oldest payloads from RAM while keeping their *names* in a per-stream
//!   durable set, so `has`/gap detection still answer correctly;
//! * [`AduStore::fetch`] reads through to disk for evicted names, which is
//!   how repair requests older than the memory window are served;
//! * [`AduStore::rehydrate`] replays the log after a restart, rebuilding the
//!   page catalog so a crashed member rejoins as a repair-capable peer.
//!
//! With no persistence attached (the default everywhere), behavior is
//! byte-identical to the purely in-memory store.

use crate::name::{AduName, PageId, SeqNo, SourceId};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet};

/// Counters a [`Persistence`] implementation reports about itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistenceStats {
    /// Records appended to the write-ahead log.
    pub appends: u64,
    /// Bytes appended (framing included).
    pub bytes_appended: u64,
    /// Physical syncs issued to the backing store.
    pub fsyncs: u64,
    /// Snapshot/compaction passes completed.
    pub snapshots: u64,
    /// Payloads read back from the log (disk-served fetches).
    pub reads: u64,
    /// Live segments in the log right now.
    pub segments: u64,
    /// Distinct ADU records live in the log right now.
    pub live_records: u64,
    /// Backend I/O failures (the affected record is not marked durable).
    pub io_errors: u64,
}

/// Summary of a completed [`Persistence::rehydrate`] pass.
#[derive(Clone, Debug, Default)]
pub struct Rehydrated {
    /// Every durable ADU name recovered from the log, ascending.
    pub names: Vec<AduName>,
    /// Bytes dropped from the log tail because the final record was torn
    /// or failed its checksum.
    pub truncated_bytes: u64,
    /// Segments replayed.
    pub segments: u64,
    /// The most recently *appended* surviving ADU (log order, not name
    /// order): what the member was working on when it went down. Restores
    /// the viewed page so the restarted member's session messages
    /// advertise the rehydrated state.
    pub last_appended: Option<AduName>,
}

/// A durability backend beneath [`AduStore`]: an append-only log of named
/// ADUs that survives the process.
///
/// The contract mirrors SRM's naming bet: a name always refers to the same
/// data, so the log never needs updates — only appends, reads, and
/// wholesale compaction. Implementations live in the `srm-store` crate
/// (real files and a deterministic in-memory backend for the simulator);
/// this trait lives here so the agent core never depends on them.
pub trait Persistence: std::fmt::Debug + Send {
    /// Durably record `payload` under `name`. Called once per fresh
    /// insert; returns `false` if the record could not be appended (the
    /// caller then treats the ADU as memory-only).
    fn persist(&mut self, name: AduName, payload: &Bytes) -> bool;

    /// Read back a payload previously persisted. `None` if the name is not
    /// in the log (or its record was lost to a torn tail).
    fn read(&mut self, name: &AduName) -> Option<Bytes>;

    /// Force everything appended so far onto stable storage (clean
    /// shutdown; stronger than the configured fsync policy).
    fn flush(&mut self);

    /// Model process death: drop whatever was appended but never synced and
    /// forget all in-memory state. The next [`Persistence::rehydrate`]
    /// must rebuild purely from what survived on stable storage.
    fn crash(&mut self);

    /// Replay the log from stable storage: rebuild the internal index,
    /// truncate any torn tail, and report every recovered name.
    fn rehydrate(&mut self) -> Rehydrated;

    /// Self-reported counters.
    fn stats(&self) -> PersistenceStats;
}

/// One `(source, page)` stream.
#[derive(Clone, Debug, Default)]
struct Stream {
    /// Received payloads by sequence number (the in-memory cache when a
    /// persistence layer is attached).
    data: BTreeMap<SeqNo, Bytes>,
    /// Sequence numbers whose payloads are held durably by the persistence
    /// layer (possibly evicted from `data`). Empty without persistence.
    durable: BTreeSet<SeqNo>,
    /// Highest sequence number known to exist (from data or session
    /// messages), even if not yet received.
    highest_known: Option<SeqNo>,
}

impl Stream {
    /// Is the payload for `seq` recoverable (RAM or disk)?
    fn holds(&self, seq: &SeqNo) -> bool {
        self.data.contains_key(seq) || self.durable.contains(seq)
    }
}

/// Per-member data store.
#[derive(Debug, Default)]
pub struct AduStore {
    streams: BTreeMap<(SourceId, PageId), Stream>,
    /// If set, keep at most this many ADUs per stream, evicting the lowest
    /// sequence numbers first.
    pub retention_per_stream: Option<usize>,
    /// With persistence attached: keep at most this many *payloads* per
    /// stream in RAM; older ones spill to the log and are re-read on
    /// demand by [`AduStore::fetch`]. Ignored without persistence.
    pub cache_per_stream: Option<usize>,
    /// Upper bound on how many missing names a single sequence-number jump
    /// may enumerate. A corrupt (or hostile) packet claiming seq 2⁶²
    /// would otherwise make gap detection materialize billions of request
    /// states; with the cap, only the *newest* `gap_cap` holes are chased.
    /// Legitimate gaps are orders of magnitude smaller.
    pub gap_cap: u64,
    /// Optional durability layer; see the module docs.
    persistence: Option<Box<dyn Persistence>>,
    /// Payloads evicted from RAM to the log (spills). Crate-visible so a
    /// crash/restart cycle can carry the lifetime counter across the
    /// agent reset, like the agent's own metrics.
    pub(crate) evictions: u64,
    /// Fetches served by reading the log instead of RAM (see
    /// [`AduStore::evictions`] on crate visibility).
    pub(crate) disk_fetches: u64,
}

impl AduStore {
    /// Empty store with unlimited retention.
    pub fn new() -> Self {
        AduStore {
            streams: BTreeMap::new(),
            retention_per_stream: None,
            cache_per_stream: None,
            gap_cap: 4096,
            persistence: None,
            evictions: 0,
            disk_fetches: 0,
        }
    }

    /// Attach a durability layer. Existing in-memory contents are *not*
    /// retroactively persisted; attach before inserting (or right after
    /// construction, which is what the agent does).
    pub fn attach_persistence(&mut self, p: Box<dyn Persistence>) {
        self.persistence = Some(p);
    }

    /// Detach and return the durability layer (crash handling: the log
    /// outlives the agent's in-memory state).
    pub fn take_persistence(&mut self) -> Option<Box<dyn Persistence>> {
        self.persistence.take()
    }

    /// Is a durability layer attached?
    pub fn has_persistence(&self) -> bool {
        self.persistence.is_some()
    }

    /// The durability layer's self-reported counters, if attached.
    pub fn persistence_stats(&self) -> Option<PersistenceStats> {
        self.persistence.as_ref().map(|p| p.stats())
    }

    /// Payloads spilled from RAM to the log so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Fetches served from the log instead of RAM so far.
    pub fn disk_fetches(&self) -> u64 {
        self.disk_fetches
    }

    /// Force the durability layer onto stable storage (clean shutdown).
    pub fn flush(&mut self) {
        if let Some(p) = self.persistence.as_mut() {
            p.flush();
        }
    }

    /// Replay the attached log and rebuild the page catalog from it:
    /// every recovered name becomes durable (payload stays on disk until
    /// fetched) and per-stream high-water marks resume at the highest
    /// recovered sequence. Returns the replay summary, or `None` without
    /// persistence.
    pub fn rehydrate(&mut self) -> Option<Rehydrated> {
        let summary = self.persistence.as_mut()?.rehydrate();
        for name in &summary.names {
            let s = self.streams.entry((name.source, name.page)).or_default();
            s.durable.insert(name.seq);
            if s.highest_known.is_none_or(|h| name.seq > h) {
                s.highest_known = Some(name.seq);
            }
        }
        Some(summary)
    }

    /// Insert a payload under `name`. Returns `true` if it was new.
    ///
    /// Re-insertion under the same name is idempotent and keeps the first
    /// payload: "the name always refers to the same data". A name already
    /// durable on disk (even if evicted from RAM) counts as held.
    pub fn insert(&mut self, name: AduName, payload: Bytes) -> bool {
        let cache_limit = match (&self.persistence, self.cache_per_stream) {
            (Some(_), Some(cache)) => Some(cache),
            _ => self.retention_per_stream,
        };
        let has_persistence = self.persistence.is_some();
        let s = self.streams.entry((name.source, name.page)).or_default();
        let fresh = !s.data.contains_key(&name.seq) && !s.durable.contains(&name.seq);
        if fresh {
            if let Some(p) = self.persistence.as_mut() {
                if p.persist(name, &payload) {
                    s.durable.insert(name.seq);
                }
            }
            s.data.insert(name.seq, payload);
            if s.highest_known.is_none_or(|h| name.seq > h) {
                s.highest_known = Some(name.seq);
            }
            if let Some(limit) = cache_limit {
                while s.data.len() > limit {
                    let oldest = *s.data.keys().next().expect("nonempty");
                    s.data.remove(&oldest);
                    if has_persistence {
                        self.evictions += 1;
                    }
                }
            }
        }
        fresh
    }

    /// Do we hold the payload for `name` — in RAM or durably on disk?
    pub fn has(&self, name: &AduName) -> bool {
        self.streams
            .get(&(name.source, name.page))
            .is_some_and(|s| s.holds(&name.seq))
    }

    /// Retrieve the payload for `name` from RAM, if cached. Does not touch
    /// the durability layer; use [`AduStore::fetch`] to read through.
    pub fn get(&self, name: &AduName) -> Option<Bytes> {
        self.streams
            .get(&(name.source, name.page))
            .and_then(|s| s.data.get(&name.seq))
            .cloned()
    }

    /// Retrieve the payload for `name`, reading through to the durability
    /// layer when it has been evicted from (or never entered) RAM. Fetched
    /// payloads are returned without re-warming the cache: repair sends are
    /// one-shot and re-caching would churn the eviction window.
    pub fn fetch(&mut self, name: &AduName) -> Option<Bytes> {
        if let Some(b) = self.get(name) {
            return Some(b);
        }
        let durable = self
            .streams
            .get(&(name.source, name.page))
            .is_some_and(|s| s.durable.contains(&name.seq));
        if !durable {
            return None;
        }
        let b = self.persistence.as_mut()?.read(name)?;
        self.disk_fetches += 1;
        Some(b)
    }

    /// Record that sequence numbers up to `seq` exist on `(source, page)`
    /// (learned from a data arrival or a session message). Returns the list
    /// of sequence numbers that are now known missing — i.e. the newly
    /// detected gap, ascending.
    ///
    /// Jumps larger than [`AduStore::gap_cap`] report only the newest
    /// `gap_cap` holes (bounded resource use under corruption; see the
    /// field's documentation).
    pub fn note_exists(&mut self, source: SourceId, page: PageId, seq: SeqNo) -> Vec<AduName> {
        let s = self.streams.entry((source, page)).or_default();
        let prev = s.highest_known;
        if prev.is_none_or(|h| seq > h) {
            s.highest_known = Some(seq);
        }
        // Newly discovered names: (prev, seq]; missing = those not held.
        let mut start = match prev {
            None => 0,
            Some(h) => h.0.saturating_add(1),
        };
        if start > seq.0 {
            return Vec::new();
        }
        let span = seq.0 - start + 1;
        if span > self.gap_cap {
            start = seq.0 - self.gap_cap + 1;
        }
        (start..=seq.0)
            .map(SeqNo)
            .filter(|q| !s.holds(q))
            .map(|q| AduName::new(source, page, q))
            .collect()
    }

    /// Highest sequence number known to exist on `(source, page)`.
    pub fn highest_known(&self, source: SourceId, page: PageId) -> Option<SeqNo> {
        self.streams.get(&(source, page)).and_then(|s| s.highest_known)
    }

    /// Every name known to exist but not held, across all streams of `page`
    /// (the newest [`AduStore::gap_cap`] per stream, for bounded output).
    pub fn missing_on_page(&self, page: PageId) -> Vec<AduName> {
        let mut out = Vec::new();
        for ((src, pg), s) in &self.streams {
            if *pg != page {
                continue;
            }
            if let Some(h) = s.highest_known {
                let start = (h.0 + 1).saturating_sub(self.gap_cap);
                for q in start..=h.0 {
                    if !s.holds(&SeqNo(q)) {
                        out.push(AduName::new(*src, *pg, SeqNo(q)));
                    }
                }
            }
        }
        out
    }

    /// The session-message state report for `page`: highest sequence known
    /// per active source (Section III-A). Sorted by source.
    pub fn page_state(&self, page: PageId) -> Vec<(SourceId, SeqNo)> {
        self.streams
            .iter()
            .filter(|((_, pg), _)| *pg == page)
            .filter_map(|((src, _), s)| s.highest_known.map(|h| (*src, h)))
            .collect()
    }

    /// All pages this store has streams for, ascending, deduplicated.
    pub fn known_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.streams.keys().map(|&(_, p)| p).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Count of ADUs held in RAM across all streams.
    pub fn len(&self) -> usize {
        self.streams.values().map(|s| s.data.len()).sum()
    }

    /// Count of ADUs recoverable across all streams: cached in RAM or
    /// durable on disk (union, not sum — cached ADUs are usually durable
    /// too).
    pub fn recoverable_len(&self) -> usize {
        self.streams
            .values()
            .map(|s| s.data.keys().filter(|q| !s.durable.contains(q)).count() + s.durable.len())
            .sum()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: SourceId = SourceId(1);

    fn page() -> PageId {
        PageId::new(SRC, 0)
    }

    fn n(seq: u64) -> AduName {
        AduName::new(SRC, page(), SeqNo(seq))
    }

    /// Minimal in-memory Persistence for unit-testing the store's
    /// read-through and eviction plumbing (the real WAL lives in
    /// `srm-store`).
    #[derive(Debug, Default)]
    struct FakeLog {
        records: BTreeMap<AduName, Bytes>,
        stats: PersistenceStats,
    }

    impl Persistence for FakeLog {
        fn persist(&mut self, name: AduName, payload: &Bytes) -> bool {
            self.records.insert(name, payload.clone());
            self.stats.appends += 1;
            true
        }
        fn read(&mut self, name: &AduName) -> Option<Bytes> {
            self.stats.reads += 1;
            self.records.get(name).cloned()
        }
        fn flush(&mut self) {}
        fn crash(&mut self) {}
        fn rehydrate(&mut self) -> Rehydrated {
            Rehydrated {
                names: self.records.keys().copied().collect(),
                truncated_bytes: 0,
                segments: 1,
                last_appended: self.records.keys().next_back().copied(),
            }
        }
        fn stats(&self) -> PersistenceStats {
            self.stats
        }
    }

    #[test]
    fn insert_and_get() {
        let mut st = AduStore::new();
        assert!(st.insert(n(0), Bytes::from_static(b"a")));
        assert!(st.has(&n(0)));
        assert_eq!(st.get(&n(0)).unwrap(), Bytes::from_static(b"a"));
        assert!(!st.has(&n(1)));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn reinsert_is_idempotent_and_keeps_first() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::from_static(b"first"));
        assert!(!st.insert(n(0), Bytes::from_static(b"second")));
        assert_eq!(st.get(&n(0)).unwrap(), Bytes::from_static(b"first"));
    }

    #[test]
    fn gap_detection_on_data_arrival() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::new());
        let missing = st.note_exists(SRC, page(), SeqNo(3));
        assert_eq!(missing, vec![n(1), n(2), n(3)]);
        // A later note for the same high water mark reports nothing new.
        assert!(st.note_exists(SRC, page(), SeqNo(3)).is_empty());
    }

    #[test]
    fn gap_detection_from_scratch_includes_seq_zero() {
        let mut st = AduStore::new();
        // Session message says seq 2 exists; we have nothing.
        let missing = st.note_exists(SRC, page(), SeqNo(2));
        assert_eq!(missing, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn missing_on_page_reflects_holes() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::new());
        st.insert(n(2), Bytes::new());
        st.note_exists(SRC, page(), SeqNo(4));
        assert_eq!(st.missing_on_page(page()), vec![n(1), n(3), n(4)]);
    }

    #[test]
    fn page_state_reports_highest_known() {
        let mut st = AduStore::new();
        st.insert(n(0), Bytes::new());
        st.note_exists(SRC, page(), SeqNo(5));
        let other = SourceId(2);
        st.insert(AduName::new(other, page(), SeqNo(7)), Bytes::new());
        let mut state = st.page_state(page());
        state.sort();
        assert_eq!(state, vec![(SRC, SeqNo(5)), (other, SeqNo(7))]);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut st = AduStore::new();
        st.retention_per_stream = Some(2);
        st.insert(n(0), Bytes::new());
        st.insert(n(1), Bytes::new());
        st.insert(n(2), Bytes::new());
        assert!(!st.has(&n(0)));
        assert!(st.has(&n(1)));
        assert!(st.has(&n(2)));
        // highest_known is unaffected by eviction.
        assert_eq!(st.highest_known(SRC, page()), Some(SeqNo(2)));
    }

    #[test]
    fn gap_cap_bounds_enumeration() {
        let mut st = AduStore::new();
        st.gap_cap = 10;
        // A corrupt claim of seq 2^40 yields only the newest 10 names.
        let missing = st.note_exists(SRC, page(), SeqNo(1 << 40));
        assert_eq!(missing.len(), 10);
        assert_eq!(missing.last().unwrap().seq, SeqNo(1 << 40));
        assert_eq!(missing.first().unwrap().seq, SeqNo((1 << 40) - 9));
        // missing_on_page is bounded the same way.
        assert_eq!(st.missing_on_page(page()).len(), 10);
        // Subsequent small jumps behave normally.
        let more = st.note_exists(SRC, page(), SeqNo((1 << 40) + 2));
        assert_eq!(more.len(), 2);
    }

    #[test]
    fn known_pages_lists_all() {
        let mut st = AduStore::new();
        let p0 = PageId::new(SRC, 0);
        let p1 = PageId::new(SRC, 1);
        st.insert(AduName::new(SRC, p0, SeqNo(0)), Bytes::new());
        st.insert(AduName::new(SRC, p1, SeqNo(0)), Bytes::new());
        st.insert(AduName::new(SourceId(9), p1, SeqNo(0)), Bytes::new());
        assert_eq!(st.known_pages(), vec![p0, p1]);
    }

    #[test]
    fn spill_eviction_keeps_name_and_fetch_reads_through() {
        let mut st = AduStore::new();
        st.cache_per_stream = Some(2);
        st.attach_persistence(Box::<FakeLog>::default());
        st.insert(n(0), Bytes::from_static(b"zero"));
        st.insert(n(1), Bytes::from_static(b"one"));
        st.insert(n(2), Bytes::from_static(b"two"));
        // Seq 0 spilled: not in RAM, but still *held* and fetchable.
        assert_eq!(st.get(&n(0)), None);
        assert!(st.has(&n(0)));
        assert_eq!(st.fetch(&n(0)).unwrap(), Bytes::from_static(b"zero"));
        assert_eq!(st.evictions(), 1);
        assert_eq!(st.disk_fetches(), 1);
        // Gap detection does not consider a spilled ADU missing.
        assert!(st.note_exists(SRC, page(), SeqNo(2)).is_empty());
        assert!(st.missing_on_page(page()).is_empty());
        // A repair arriving for a spilled name is a duplicate, not fresh.
        assert!(!st.insert(n(0), Bytes::from_static(b"imposter")));
        assert_eq!(st.len(), 2);
        assert_eq!(st.recoverable_len(), 3);
    }

    #[test]
    fn rehydrate_rebuilds_catalog_without_warming_cache() {
        let mut log = FakeLog::default();
        log.records.insert(n(0), Bytes::from_static(b"zero"));
        log.records.insert(n(3), Bytes::from_static(b"three"));
        let mut st = AduStore::new();
        st.attach_persistence(Box::new(log));
        let summary = st.rehydrate().unwrap();
        assert_eq!(summary.names, vec![n(0), n(3)]);
        // Catalog is back (names + high water), payloads stay on disk.
        assert!(st.has(&n(0)) && st.has(&n(3)));
        assert_eq!(st.len(), 0);
        assert_eq!(st.recoverable_len(), 2);
        assert_eq!(st.highest_known(SRC, page()), Some(SeqNo(3)));
        // The holes between recovered names are still chased.
        assert_eq!(st.missing_on_page(page()), vec![n(1), n(2)]);
        assert_eq!(st.fetch(&n(3)).unwrap(), Bytes::from_static(b"three"));
    }
}

//! Request and repair timer intervals (Section III-B).
//!
//! A member missing data draws its request timer uniformly from
//! `[C1·d_SA, (C1+C2)·d_SA]`, where `d_SA` is its estimated one-way
//! distance to the data's original source. A member able to answer a
//! request draws its repair timer from `[D1·d_AB, (D1+D2)·d_AB]`, with
//! `d_AB` the distance to the requestor. On suppression the request
//! interval is backed off by the configured multiplier ("the backed-off
//! timer is randomly chosen from the uniform distribution on
//! `[2·C1·d, 2·(C1+C2)·d]`"; the adaptive simulations use ×3).

use netsim::SimDuration;
use rand::Rng;

/// A uniform timer interval `[lo, hi]` in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimerInterval {
    /// Interval start, seconds.
    pub lo: f64,
    /// Interval end, seconds.
    pub hi: f64,
}

impl TimerInterval {
    /// The request interval `[c1·d, (c1+c2)·d]`.
    pub fn request(c1: f64, c2: f64, dist: SimDuration) -> Self {
        let d = dist.as_secs_f64();
        TimerInterval {
            lo: c1 * d,
            hi: (c1 + c2) * d,
        }
    }

    /// The repair interval `[d1·d, (d1+d2)·d]`.
    pub fn repair(d1: f64, d2: f64, dist: SimDuration) -> Self {
        let d = dist.as_secs_f64();
        TimerInterval {
            lo: d1 * d,
            hi: (d1 + d2) * d,
        }
    }

    /// The interval after `k` exponential backoffs with multiplier `m`:
    /// `[m^k·lo, m^k·hi]`.
    pub fn backed_off(self, m: f64, k: u32) -> Self {
        let f = m.powi(k as i32);
        TimerInterval {
            lo: self.lo * f,
            hi: self.hi * f,
        }
    }

    /// Draw a delay uniformly from the interval.
    ///
    /// A degenerate interval (`lo == hi`, e.g. distance 0 or C2 = 0) yields
    /// exactly `lo`.
    pub fn draw<R: Rng>(self, rng: &mut R) -> SimDuration {
        debug_assert!(self.lo <= self.hi + 1e-12, "inverted interval");
        let v = if self.hi > self.lo {
            rng.random_range(self.lo..self.hi)
        } else {
            self.lo
        };
        SimDuration::from_secs_f64(v)
    }

    /// Interval width in seconds.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn request_interval_scales_with_distance() {
        let i = TimerInterval::request(2.0, 10.0, SimDuration::from_secs(3));
        assert_eq!(i.lo, 6.0);
        assert_eq!(i.hi, 36.0);
        assert_eq!(i.width(), 30.0);
    }

    #[test]
    fn repair_interval_scales_with_distance() {
        let i = TimerInterval::repair(1.0, 4.0, SimDuration::from_secs(2));
        assert_eq!(i.lo, 2.0);
        assert_eq!(i.hi, 10.0);
    }

    #[test]
    fn backoff_doubles_both_ends() {
        let i = TimerInterval { lo: 2.0, hi: 4.0 };
        let b = i.backed_off(2.0, 1);
        assert_eq!(b, TimerInterval { lo: 4.0, hi: 8.0 });
        let b3 = i.backed_off(3.0, 2);
        assert_eq!(b3, TimerInterval { lo: 18.0, hi: 36.0 });
        // k = 0 leaves the interval unchanged.
        assert_eq!(i.backed_off(2.0, 0), i);
    }

    #[test]
    fn draws_stay_in_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let i = TimerInterval { lo: 1.0, hi: 5.0 };
        for _ in 0..1000 {
            let d = i.draw(&mut rng).as_secs_f64();
            assert!((1.0..5.0 + 1e-9).contains(&d));
        }
    }

    #[test]
    fn draws_cover_the_interval() {
        // Sanity that the draw is not constant: min and max over many draws
        // approach the endpoints.
        let mut rng = StdRng::seed_from_u64(2);
        let i = TimerInterval { lo: 0.0, hi: 1.0 };
        let draws: Vec<f64> = (0..2000).map(|_| i.draw(&mut rng).as_secs_f64()).collect();
        let min = draws.iter().cloned().fold(f64::MAX, f64::min);
        let max = draws.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 0.01);
        assert!(max > 0.99);
    }

    #[test]
    fn degenerate_interval_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        // Distance 0, or C2 = 0 for the chain's deterministic algorithm
        // (Section IV-A): the draw is exactly C1·d.
        let i = TimerInterval::request(1.0, 0.0, SimDuration::from_secs(4));
        assert_eq!(i.draw(&mut rng), SimDuration::from_secs(4));
        let z = TimerInterval::request(1.0, 1.0, SimDuration::ZERO);
        assert_eq!(z.draw(&mut rng), SimDuration::ZERO);
    }
}

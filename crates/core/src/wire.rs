//! Binary wire format for SRM messages.
//!
//! ALF says framing belongs to the application, so SRM defines its own
//! compact encoding rather than inheriting one from a transport. Every
//! message starts with a common header — "All packets for that group,
//! including session packets, include a Source-ID and a timestamp"
//! (Section III-A) — followed by a type-tagged body.
//!
//! All integers are big-endian. Distances are `f64` seconds. The format is
//! self-describing enough for robust decoding: decoders validate tags and
//! lengths and fail with [`WireError`] rather than panicking, so a corrupt
//! packet cannot take an agent down.

use crate::fec::Parity;
use crate::name::{AduName, PageId, SeqNo, SourceId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use netsim::{SimDuration, SimTime};
use std::fmt;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Unknown message-type tag.
    BadTag(u8),
    /// A length field exceeds sane bounds.
    BadLength(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadLength(l) => write!(f, "implausible length field {l}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Common per-message header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Header {
    /// The transmitting member.
    pub sender: SourceId,
    /// The sender's clock at transmission time (used for NTP-style distance
    /// estimation; clocks need not be synchronized).
    pub timestamp: SimTime,
}

/// One timestamp echo inside a session message (Section III-A).
///
/// "host B generates a session packet marked with (t1, Δ)", where t1 is the
/// time peer `peer` sent its last session packet and Δ is the time between
/// B receiving it and B sending this message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Echo {
    /// The peer whose timestamp is echoed.
    pub peer: SourceId,
    /// The peer's send timestamp being echoed (t1).
    pub their_ts: SimTime,
    /// Time elapsed at the echoer between receipt and this send (Δ).
    pub delay: SimDuration,
}

/// Original data or a repair (retransmission by any holder).
#[derive(Clone, Debug, PartialEq)]
pub struct DataBody {
    /// The unique persistent name of the ADU.
    pub name: AduName,
    /// True for retransmissions.
    pub is_repair: bool,
    /// For two-step local recovery (Section VII-B3): the requestor this
    /// repair answers, so that requestor can re-multicast it.
    pub answering: Option<SourceId>,
    /// The replier's estimated distance (seconds) to the requestor it is
    /// answering; used by the adaptive algorithm's "duplicate from farther
    /// away" rule. Zero for original data.
    pub dist_to_requestor: f64,
    /// Application payload.
    pub payload: Bytes,
}

/// A repair request (Section III-B). Not addressed to any specific member.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestBody {
    /// The missing ADU.
    pub name: AduName,
    /// Requestor's estimated distance (seconds) to the ADU's original
    /// source. "requests include the requestor's estimated distance from
    /// the original source of the requested packet" (Section VII-A).
    pub dist_to_source: f64,
}

/// Periodic state announcement (Section III-A).
#[derive(Clone, Debug, PartialEq)]
pub struct SessionBody {
    /// The page whose state is being reported ("each member only reports
    /// the state of the page it is currently viewing").
    pub page: PageId,
    /// Highest sequence number received from each active source on `page`.
    pub state: Vec<(SourceId, SeqNo)>,
    /// Timestamp echoes for distance estimation.
    pub echoes: Vec<Echo>,
    /// Fraction of data for which a request timer was set (Section VII-B:
    /// "session messages could report a member's loss rate").
    pub loss_rate: f32,
    /// "the names of the last few local losses" — the loss fingerprint used
    /// to identify shared loss neighborhoods.
    pub loss_fingerprint: Vec<AduName>,
}

/// A request for the sequence-number state of a page ("a receiver browsing
/// over previous pages may issue page requests", Section III-A). Answered
/// with a [`SessionBody`] for that page.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRequestBody {
    /// The page whose state is wanted.
    pub page: PageId,
}

/// Any SRM message: header plus body.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Common header.
    pub header: Header,
    /// Type-specific body.
    pub body: Body,
}

/// Message bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    /// Data or repair.
    Data(DataBody),
    /// Repair request.
    Request(RequestBody),
    /// Session message.
    Session(SessionBody),
    /// Page-state request.
    PageRequest(PageRequestBody),
    /// Proactive XOR parity over a block of data ADUs (the FEC extension
    /// of Section VII-B / \[38\]).
    Parity(Parity),
    /// Invitation to join a separate local-recovery multicast group
    /// (Section VII-B2): "the initial requestor creates a separate
    /// multicast group for local recovery and invites other nearby members
    /// to join". Sent with limited scope; "nearby" is whoever the scoped
    /// invite reaches.
    RecoveryInvite(RecoveryInviteBody),
    /// A late joiner asking which pages exist ("If a receiver joins late,
    /// it may issue page requests to learn the existence of previous
    /// pages", Section III-A).
    PageCatalogRequest,
    /// Answer to a catalog request: the pages this member knows of.
    PageCatalog(Vec<PageId>),
}

/// Body of a recovery-group invitation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryInviteBody {
    /// The multicast group allocated for local recovery.
    pub group: u32,
}

const TAG_DATA: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_SESSION: u8 = 3;
const TAG_PAGE_REQUEST: u8 = 4;
const TAG_PARITY: u8 = 5;
const TAG_RECOVERY_INVITE: u8 = 6;
const TAG_PAGE_CATALOG_REQUEST: u8 = 7;
const TAG_PAGE_CATALOG: u8 = 8;

/// Refuse list lengths beyond this in decoding (corruption guard).
const MAX_LIST: usize = 1 << 20;

impl Message {
    /// Encode to bytes.
    ///
    /// Allocates exactly [`Message::encoded_len`] bytes. Hot paths that
    /// send repeatedly should prefer [`Message::encode_into`] with a
    /// reused scratch buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Exact size of the encoding, without encoding it.
    pub fn encoded_len(&self) -> usize {
        const HEADER: usize = 16; // sender u64 + timestamp u64
        const NAME: usize = 28; // source u64 + page (u64 + u32) + seq u64
        const PAGE: usize = 12; // creator u64 + number u32
        HEADER
            + 1 // tag
            + match &self.body {
                Body::Data(d) => {
                    NAME + 1
                        + match d.answering {
                            Some(_) => 9,
                            None => 1,
                        }
                        + 8
                        + 4
                        + d.payload.len()
                }
                Body::Request(_) => NAME + 8,
                Body::Session(s) => {
                    PAGE + 4
                        + 16 * s.state.len()
                        + 4
                        + 24 * s.echoes.len()
                        + 4
                        + 4
                        + NAME * s.loss_fingerprint.len()
                }
                Body::PageRequest(_) => PAGE,
                Body::Parity(p) => 8 + PAGE + 8 + 1 + 4 + 4 + p.xor_payload.len(),
                Body::RecoveryInvite(_) => 4,
                Body::PageCatalogRequest => 0,
                Body::PageCatalog(pages) => 4 + PAGE * pages.len(),
            }
    }

    /// Encode by appending to any [`BufMut`] (e.g. a reused `Vec<u8>`
    /// scratch buffer cleared between sends, avoiding a fresh allocation
    /// per message).
    pub fn encode_into<B: BufMut>(&self, b: &mut B) {
        put_header(b, &self.header);
        match &self.body {
            Body::Data(d) => {
                b.put_u8(TAG_DATA);
                put_name(b, &d.name);
                b.put_u8(d.is_repair as u8);
                match d.answering {
                    Some(s) => {
                        b.put_u8(1);
                        b.put_u64(s.0);
                    }
                    None => b.put_u8(0),
                }
                b.put_f64(d.dist_to_requestor);
                b.put_u32(d.payload.len() as u32);
                b.put_slice(&d.payload);
            }
            Body::Request(r) => {
                b.put_u8(TAG_REQUEST);
                put_name(b, &r.name);
                b.put_f64(r.dist_to_source);
            }
            Body::Session(s) => {
                b.put_u8(TAG_SESSION);
                put_page(b, &s.page);
                b.put_u32(s.state.len() as u32);
                for (src, seq) in &s.state {
                    b.put_u64(src.0);
                    b.put_u64(seq.0);
                }
                b.put_u32(s.echoes.len() as u32);
                for e in &s.echoes {
                    b.put_u64(e.peer.0);
                    b.put_u64(e.their_ts.as_nanos());
                    b.put_u64(e.delay.as_nanos());
                }
                b.put_f32(s.loss_rate);
                b.put_u32(s.loss_fingerprint.len() as u32);
                for n in &s.loss_fingerprint {
                    put_name(b, n);
                }
            }
            Body::PageRequest(p) => {
                b.put_u8(TAG_PAGE_REQUEST);
                put_page(b, &p.page);
            }
            Body::Parity(p) => {
                b.put_u8(TAG_PARITY);
                b.put_u64(p.source.0);
                put_page(b, &p.page);
                b.put_u64(p.block_start.0);
                b.put_u8(p.k);
                b.put_u32(p.xor_len);
                b.put_u32(p.xor_payload.len() as u32);
                b.put_slice(&p.xor_payload);
            }
            Body::RecoveryInvite(i) => {
                b.put_u8(TAG_RECOVERY_INVITE);
                b.put_u32(i.group);
            }
            Body::PageCatalogRequest => {
                b.put_u8(TAG_PAGE_CATALOG_REQUEST);
            }
            Body::PageCatalog(pages) => {
                b.put_u8(TAG_PAGE_CATALOG);
                b.put_u32(pages.len() as u32);
                for p in pages {
                    put_page(b, p);
                }
            }
        }
    }

    /// Decode from bytes.
    pub fn decode(mut buf: Bytes) -> Result<Message, WireError> {
        let header = get_header(&mut buf)?;
        let tag = get_u8(&mut buf)?;
        let body = match tag {
            TAG_DATA => {
                let name = get_name(&mut buf)?;
                let is_repair = get_u8(&mut buf)? != 0;
                let answering = match get_u8(&mut buf)? {
                    0 => None,
                    _ => Some(SourceId(get_u64(&mut buf)?)),
                };
                let dist_to_requestor = get_f64(&mut buf)?;
                let len = get_u32(&mut buf)? as usize;
                if len > buf.len() {
                    return Err(WireError::Truncated);
                }
                let payload = buf.split_to(len);
                Body::Data(DataBody {
                    name,
                    is_repair,
                    answering,
                    dist_to_requestor,
                    payload,
                })
            }
            TAG_REQUEST => {
                let name = get_name(&mut buf)?;
                let dist_to_source = get_f64(&mut buf)?;
                Body::Request(RequestBody {
                    name,
                    dist_to_source,
                })
            }
            TAG_SESSION => {
                let page = get_page(&mut buf)?;
                let n = checked_len(get_u32(&mut buf)? as usize)?;
                let mut state = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let src = SourceId(get_u64(&mut buf)?);
                    let seq = SeqNo(get_u64(&mut buf)?);
                    state.push((src, seq));
                }
                let n = checked_len(get_u32(&mut buf)? as usize)?;
                let mut echoes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    echoes.push(Echo {
                        peer: SourceId(get_u64(&mut buf)?),
                        their_ts: SimTime::from_secs_f64(get_u64(&mut buf)? as f64 / 1e9),
                        delay: SimDuration::from_secs_f64(get_u64(&mut buf)? as f64 / 1e9),
                    });
                }
                let loss_rate = get_f32(&mut buf)?;
                let n = checked_len(get_u32(&mut buf)? as usize)?;
                let mut loss_fingerprint = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    loss_fingerprint.push(get_name(&mut buf)?);
                }
                Body::Session(SessionBody {
                    page,
                    state,
                    echoes,
                    loss_rate,
                    loss_fingerprint,
                })
            }
            TAG_PAGE_REQUEST => Body::PageRequest(PageRequestBody {
                page: get_page(&mut buf)?,
            }),
            TAG_PARITY => {
                let source = SourceId(get_u64(&mut buf)?);
                let page = get_page(&mut buf)?;
                let block_start = SeqNo(get_u64(&mut buf)?);
                let k = get_u8(&mut buf)?;
                let xor_len = get_u32(&mut buf)?;
                let len = get_u32(&mut buf)? as usize;
                if len > buf.len() {
                    return Err(WireError::Truncated);
                }
                let xor_payload = buf.split_to(len);
                Body::Parity(Parity {
                    source,
                    page,
                    block_start,
                    k,
                    xor_len,
                    xor_payload,
                })
            }
            TAG_RECOVERY_INVITE => Body::RecoveryInvite(RecoveryInviteBody {
                group: get_u32(&mut buf)?,
            }),
            TAG_PAGE_CATALOG_REQUEST => Body::PageCatalogRequest,
            TAG_PAGE_CATALOG => {
                let n = checked_len(get_u32(&mut buf)? as usize)?;
                let mut pages = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    pages.push(get_page(&mut buf)?);
                }
                Body::PageCatalog(pages)
            }
            t => return Err(WireError::BadTag(t)),
        };
        Ok(Message { header, body })
    }

}

fn put_header<B: BufMut>(b: &mut B, h: &Header) {
    b.put_u64(h.sender.0);
    b.put_u64(h.timestamp.as_nanos());
}

fn get_header(buf: &mut Bytes) -> Result<Header, WireError> {
    Ok(Header {
        sender: SourceId(get_u64(buf)?),
        timestamp: SimTime::from_secs_f64(get_u64(buf)? as f64 / 1e9),
    })
}

fn put_name<B: BufMut>(b: &mut B, n: &AduName) {
    b.put_u64(n.source.0);
    put_page(b, &n.page);
    b.put_u64(n.seq.0);
}

fn get_name(buf: &mut Bytes) -> Result<AduName, WireError> {
    Ok(AduName {
        source: SourceId(get_u64(buf)?),
        page: get_page(buf)?,
        seq: SeqNo(get_u64(buf)?),
    })
}

fn put_page<B: BufMut>(b: &mut B, p: &PageId) {
    b.put_u64(p.creator.0);
    b.put_u32(p.number);
}

fn get_page(buf: &mut Bytes) -> Result<PageId, WireError> {
    Ok(PageId {
        creator: SourceId(get_u64(buf)?),
        number: get_u32(buf)?,
    })
}

fn checked_len(n: usize) -> Result<usize, WireError> {
    if n > MAX_LIST {
        Err(WireError::BadLength(n))
    } else {
        Ok(n)
    }
}

macro_rules! getter {
    ($name:ident, $ty:ty, $take:ident, $size:expr) => {
        fn $name(buf: &mut Bytes) -> Result<$ty, WireError> {
            if buf.len() < $size {
                return Err(WireError::Truncated);
            }
            Ok(buf.$take())
        }
    };
}

getter!(get_u8, u8, get_u8, 1);
getter!(get_u32, u32, get_u32, 4);
getter!(get_u64, u64, get_u64, 8);
getter!(get_f32, f32, get_f32, 4);
getter!(get_f64, f64, get_f64, 8);

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: u64, p: u32, q: u64) -> AduName {
        AduName::new(SourceId(s), PageId::new(SourceId(s), p), SeqNo(q))
    }

    fn header() -> Header {
        Header {
            sender: SourceId(9),
            timestamp: SimTime::from_secs_f64(1.25),
        }
    }

    fn roundtrip(m: &Message) {
        let enc = m.encode();
        assert_eq!(
            enc.len(),
            m.encoded_len(),
            "encoded_len must be exact for {m:?}"
        );
        // Encoding into a plain Vec scratch buffer yields the same bytes.
        let mut scratch = Vec::new();
        m.encode_into(&mut scratch);
        assert_eq!(&scratch[..], &enc[..]);
        let dec = Message::decode(enc).expect("decode");
        assert_eq!(&dec, m);
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::Data(DataBody {
                name: name(1, 2, 3),
                is_repair: false,
                answering: None,
                dist_to_requestor: 0.0,
                payload: Bytes::from_static(b"a blue line"),
            }),
        });
    }

    #[test]
    fn repair_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::Data(DataBody {
                name: name(1, 2, 3),
                is_repair: true,
                answering: Some(SourceId(4)),
                dist_to_requestor: 2.5,
                payload: Bytes::from_static(b"sector 5"),
            }),
        });
    }

    #[test]
    fn request_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::Request(RequestBody {
                name: name(7, 0, 99),
                dist_to_source: 4.0,
            }),
        });
    }

    #[test]
    fn session_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::Session(SessionBody {
                page: PageId::new(SourceId(1), 4),
                state: vec![(SourceId(1), SeqNo(10)), (SourceId(2), SeqNo(0))],
                echoes: vec![Echo {
                    peer: SourceId(2),
                    their_ts: SimTime::from_secs(5),
                    delay: SimDuration::from_millis(250),
                }],
                loss_rate: 0.125,
                loss_fingerprint: vec![name(1, 4, 9), name(2, 4, 3)],
            }),
        });
    }

    #[test]
    fn page_catalog_roundtrips() {
        roundtrip(&Message {
            header: header(),
            body: Body::PageCatalogRequest,
        });
        roundtrip(&Message {
            header: header(),
            body: Body::PageCatalog(vec![
                PageId::new(SourceId(1), 0),
                PageId::new(SourceId(2), 7),
            ]),
        });
        roundtrip(&Message {
            header: header(),
            body: Body::PageCatalog(vec![]),
        });
    }

    #[test]
    fn recovery_invite_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::RecoveryInvite(RecoveryInviteBody { group: 77 }),
        });
    }

    #[test]
    fn parity_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::Parity(Parity {
                source: SourceId(3),
                page: PageId::new(SourceId(3), 1),
                block_start: SeqNo(8),
                k: 4,
                xor_len: 17,
                xor_payload: Bytes::from_static(b"\x01\x02\x03"),
            }),
        });
    }

    #[test]
    fn page_request_roundtrip() {
        roundtrip(&Message {
            header: header(),
            body: Body::PageRequest(PageRequestBody {
                page: PageId::new(SourceId(3), 2),
            }),
        });
    }

    #[test]
    fn truncated_fails_cleanly() {
        let m = Message {
            header: header(),
            body: Body::Request(RequestBody {
                name: name(7, 0, 99),
                dist_to_source: 4.0,
            }),
        };
        let enc = m.encode();
        for cut in 0..enc.len() {
            let r = Message::decode(enc.slice(0..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let m = Message {
            header: header(),
            body: Body::PageRequest(PageRequestBody {
                page: PageId::new(SourceId(3), 2),
            }),
        };
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc[16] = 200; // corrupt the tag byte (after the 16-byte header)
        assert_eq!(
            Message::decode(enc.freeze()),
            Err(WireError::BadTag(200))
        );
    }

    #[test]
    fn payload_length_is_validated() {
        let m = Message {
            header: header(),
            body: Body::Data(DataBody {
                name: name(1, 2, 3),
                is_repair: false,
                answering: None,
                dist_to_requestor: 0.0,
                payload: Bytes::from_static(b"xyz"),
            }),
        };
        let enc = m.encode();
        // Strip the final payload byte: the length field now overruns.
        let r = Message::decode(enc.slice(0..enc.len() - 1));
        assert_eq!(r, Err(WireError::Truncated));
    }
}

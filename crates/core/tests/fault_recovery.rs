//! SRM recovery under injected host faults.
//!
//! The paper claims the framework "is robust to host failures and network
//! partition" because recovery is receiver-initiated and any member holding
//! the data can answer a repair request. These integration tests inject
//! crashes through netsim's scripted [`FaultPlan`] and check both halves of
//! that claim:
//!
//! - a **non-source** member answers outstanding repairs after the source
//!   crashes (requests name the data, not the sender), and
//! - a crashed-and-restarted source recovers its *own* pre-crash stream from
//!   the group as a late joiner (§III-A page catalog + page state).

use bytes::Bytes;
use netsim::generators::chain;
use netsim::loss::OneShotLinkDrop;
use netsim::{flow, FaultPlan, GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

const GROUP: GroupId = GroupId(7);

fn page(src: u64) -> PageId {
    PageId::new(SourceId(src), 0)
}

/// A chain of SRM agents with sessions disabled and distances pre-warmed to
/// the true values (the standard clean-room recovery harness).
fn chain_session(n: usize, cfg: &SrmConfig) -> Simulator<SrmAgent> {
    let topo = chain(n);
    let mut sim = Simulator::new(topo, 99);
    for i in 0..n {
        let mut a = SrmAgent::new(SourceId(i as u64), GROUP, cfg.clone());
        a.session_enabled = false;
        a.set_current_page(page(0));
        for j in 0..n {
            if i != j {
                a.distances_mut().set_distance(
                    SourceId(j as u64),
                    SimDuration::from_secs((i as i64 - j as i64).unsigned_abs()),
                );
            }
        }
        sim.install(NodeId(i as u32), a);
        sim.join(NodeId(i as u32), GROUP);
    }
    sim
}

/// The source crashes while a downstream member still has an outstanding
/// loss. A non-source member that holds the data must answer the repair —
/// the source is not needed for recovery.
#[test]
fn non_source_member_answers_repair_after_source_crash() {
    let mut sim = chain_session(4, &SrmConfig::fixed(4));
    let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
    sim.set_loss_model(Box::new(OneShotLinkDrop::new(l23, NodeId(0), flow::DATA)));
    // Packet 0 is dropped on (2,3) — nodes 1 and 2 hold it, node 3 does not.
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page(0), Bytes::from_static(b"p0"));
    });
    sim.run_until(SimTime::from_secs(1));
    // Packet 1 exposes the gap at node 3 (detection at ~t=4s; its request
    // timer draws from [2d, 4d] with d=3, so the first request fires well
    // after the crash below).
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page(0), Bytes::from_static(b"p1"));
    });
    // Crash the source before any request can fire.
    sim.set_fault_plan(FaultPlan::new().crash(SimTime::from_secs(5), NodeId(0)));
    assert!(sim.run_until_idle(SimTime::from_secs(1000)));
    assert!(!sim.node_is_up(NodeId(0)));
    assert_eq!(sim.app(NodeId(0)).unwrap().metrics.crashes, 1);

    // Node 3 recovered without the source.
    let a3 = sim.app(NodeId(3)).unwrap();
    assert!(a3.metrics.all_recovered(), "node 3 must recover");
    assert_eq!(a3.store().len(), 2, "node 3 holds both ADUs");
    // The repair came from a non-source member (1 or 2), not from node 0.
    let peer_repairs: u64 = [1u32, 2]
        .iter()
        .map(|&i| sim.app(NodeId(i)).unwrap().metrics.repairs_sent)
        .sum();
    assert!(peer_repairs >= 1, "a non-source member sent the repair");
}

/// A crashed member loses all state; on restart it must request the page
/// catalog, chase page state, and recover even its own pre-crash stream
/// from its peers (late-joiner machinery, §III-A).
#[test]
fn restarted_source_recovers_own_stream_from_peers() {
    let mut sim = chain_session(4, &SrmConfig::fixed(4));
    // The source publishes three ADUs that everyone receives.
    for (i, payload) in [&b"a0"[..], b"a1", b"a2"].iter().enumerate() {
        sim.exec(NodeId(0), |a, ctx| {
            a.send_data(ctx, page(0), Bytes::copy_from_slice(payload));
        });
        sim.run_until(SimTime::from_secs(1 + i as u64));
    }
    sim.run_until(SimTime::from_secs(20));
    assert_eq!(sim.app(NodeId(0)).unwrap().store().len(), 3);

    // Crash, then restart. The restart fires SrmAgent::on_restart, which
    // requests the page catalog and then per-page state.
    sim.set_fault_plan(
        FaultPlan::new()
            .crash(SimTime::from_secs(25), NodeId(0))
            .restart(SimTime::from_secs(30), NodeId(0)),
    );
    sim.run_until(SimTime::from_secs(26));
    assert_eq!(
        sim.app(NodeId(0)).unwrap().store().len(),
        0,
        "crash wipes the store"
    );
    assert!(sim.run_until_idle(SimTime::from_secs(1000)));

    let a0 = sim.app(NodeId(0)).unwrap();
    assert_eq!(a0.metrics.crashes, 1);
    assert_eq!(
        a0.store().len(),
        3,
        "restarted source recovered its own pre-crash ADUs"
    );
    assert!(a0.metrics.all_recovered());

    // New data from the restarted source must not collide with recovered
    // sequence numbers: peers (which never crashed) see it as fresh.
    let before = sim.app(NodeId(3)).unwrap().store().len();
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page(0), Bytes::from_static(b"post-restart"));
    });
    assert!(sim.run_until_idle(SimTime::from_secs(2000)));
    let a3 = sim.app(NodeId(3)).unwrap();
    assert_eq!(
        a3.store().len(),
        before + 1,
        "post-restart ADU got a fresh sequence number"
    );
}

/// Clock skew on one member distorts its one-way delay readings but must
/// not break recovery: timers stretch, the algorithm still converges.
#[test]
fn recovery_survives_clock_skew_on_requestor() {
    let mut sim = chain_session(4, &SrmConfig::fixed(4));
    let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
    sim.set_loss_model(Box::new(OneShotLinkDrop::new(l23, NodeId(0), flow::DATA)));
    // Node 3's clock runs 2 s ahead of true time for the whole run.
    sim.set_fault_plan(FaultPlan::new().clock_skew(SimTime::ZERO, NodeId(3), 2.0));
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page(0), Bytes::from_static(b"p0"));
    });
    sim.run_until(SimTime::from_secs(1));
    sim.exec(NodeId(0), |a, ctx| {
        a.send_data(ctx, page(0), Bytes::from_static(b"p1"));
    });
    assert!(sim.run_until_idle(SimTime::from_secs(1000)));
    let a3 = sim.app(NodeId(3)).unwrap();
    assert!(a3.metrics.all_recovered(), "skewed node still recovers");
    assert_eq!(a3.store().len(), 2);
}

//! Sample trajectories of the adaptive timer parameters (Section VII-A:
//! "Sample trajectories of the loss recovery algorithms confirm that the
//! variations from the random component of the timer algorithms dominate
//! the behavior of the algorithms, minimizing the effect of oscillations").
//!
//! We run the Fig 13 scenario and log, per round, the median C1/C2/D1/D2
//! across the downstream members (the ones adapting), alongside that
//! round's duplicate counts — showing the parameters walking toward their
//! equilibrium and then wandering gently instead of oscillating.

use crate::fig4;
use crate::fig12::GROUP;
use crate::round::run_round;
use crate::table::{f, Table};
use crate::RunOpts;
use srm::SrmConfig;

/// One round's snapshot.
#[derive(Clone, Copy, Debug)]
pub struct TraceRow {
    /// Round number (1-based).
    pub round: usize,
    /// Median request-interval start multiplier across adapting members.
    pub c1: f64,
    /// Median request-interval width multiplier.
    pub c2: f64,
    /// Median repair-interval start multiplier.
    pub d1: f64,
    /// Median repair-interval width multiplier.
    pub d2: f64,
    /// Requests this round.
    pub requests: u64,
    /// Repairs this round.
    pub repairs: u64,
}

/// Run one trajectory.
pub fn trace(opts: &RunOpts) -> Vec<TraceRow> {
    let rounds = if opts.quick { 30 } else { 100 };
    let mut spec = fig4::spec(GROUP, 3, SrmConfig::adaptive(GROUP));
    spec.timer_seed = Some(0xadab);
    let mut s = spec.build();
    (1..=rounds)
        .map(|round| {
            let r = run_round(&mut s, 100_000.0);
            assert!(r.all_recovered);
            let median = |sel: &dyn Fn(srm::TimerParams) -> f64| -> f64 {
                let mut v: Vec<f64> = s
                    .downstream_members
                    .iter()
                    .map(|&m| sel(s.sim.app(m).unwrap().params()))
                    .collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v.get(v.len() / 2).copied().unwrap_or(0.0)
            };
            TraceRow {
                round,
                c1: median(&|p| p.c1),
                c2: median(&|p| p.c2),
                d1: median(&|p| p.d1),
                d2: median(&|p| p.d2),
                requests: r.requests,
                repairs: r.repairs,
            }
        })
        .collect()
}

/// The trajectory table.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut t = Table::new(
        "adaptive-trace: median timer parameters per round (Fig 13 scenario)",
        &["round", "C1", "C2", "D1", "D2", "requests", "repairs"],
    );
    for r in trace(opts) {
        t.row(vec![
            r.round.to_string(),
            f(r.c1),
            f(r.c2),
            f(r.d1),
            f(r.d2),
            r.requests.to_string(),
            r.repairs.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_converge_without_oscillating() {
        let rows = trace(&RunOpts {
            quick: true,
            threads: 1,
        });
        // Parameters stay clamped at all times.
        for r in &rows {
            assert!(r.c1 >= 0.5 && r.c1 <= 2.0 + 1e-9, "round {}: C1={}", r.round, r.c1);
            assert!(r.c2 >= 1.0 && r.c2 <= 64.0 + 1e-9, "round {}: C2={}", r.round, r.c2);
        }
        // Late-phase C2 moves are small per round (no oscillation): compare
        // consecutive deltas over the last third.
        let tail = &rows[rows.len() * 2 / 3..];
        for w in tail.windows(2) {
            let delta = (w[1].c2 - w[0].c2).abs();
            assert!(delta <= 1.0, "C2 step {delta} at round {}", w[1].round);
        }
        // Duplicates in the tail are controlled.
        let tail_requests: f64 =
            tail.iter().map(|r| r.requests as f64).sum::<f64>() / tail.len() as f64;
        assert!(tail_requests <= 4.0, "tail requests {tail_requests}");
    }
}

//! Head-to-head: SRM vs the Section II-A baselines on a shared-loss star.
//!
//! Three protocols recover the same loss — the first packet from the
//! source dropped on its access link of a G-member star — and we count
//! control messages converging on the source and total control-traffic
//! link crossings (the paper's bandwidth proxy):
//!
//! - **sender-based ACK** (TCP-style): G−1 ACKs per packet arrive at the
//!   source *even without loss* (ACK implosion), plus per-receiver unicast
//!   retransmissions;
//! - **unicast NACK** \[29\]: the shared loss draws G−1 NACKs and G−1 unicast
//!   retransmissions;
//! - **SRM**: multicast requests suppress each other (≈ 1 + (G−2)/C2) and
//!   one multicast repair serves everyone.

use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use netsim::generators::star;
use netsim::loss::OneShotLinkDrop;
use netsim::{GroupId, NodeId, SimDuration, SimTime, Simulator};
use srm::{SrmConfig, TimerParams};
use srm_baselines::{wire, AckApp, AckReceiver, AckSender, NackApp, NackReceiver, NackSender};
use std::collections::BTreeSet;

const GROUP: GroupId = GroupId(9);

/// Measured costs of one protocol on one scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cost {
    /// Control messages that arrived at the source.
    pub control_at_source: u64,
    /// Link crossings of control traffic (ACK/NACK/request + retx/repair).
    pub control_hops: u64,
}

/// Run the ACK baseline: 1 data packet, loss toward one receiver.
pub fn ack_cost(g: usize, seed: u64) -> Cost {
    let mut sim = Simulator::new(star(g), seed);
    let sender = NodeId(1);
    let receivers: BTreeSet<NodeId> = (2..=g as u32).map(NodeId).collect();
    sim.install(
        sender,
        AckApp::Sender(AckSender::new(GROUP, receivers, SimDuration::from_secs(20))),
    );
    sim.join(sender, GROUP);
    for i in 2..=g as u32 {
        sim.install(NodeId(i), AckApp::Receiver(AckReceiver::new(sender)));
        sim.join(NodeId(i), GROUP);
    }
    // Loss toward receiver 2 (any single receiver).
    let l = sim.topology().link_between(NodeId(0), NodeId(2)).unwrap();
    sim.set_loss_model(Box::new(OneShotLinkDrop::new(l, sender, wire::flow::DATA)));
    sim.exec(sender, |a, ctx| {
        let AckApp::Sender(s) = a else { unreachable!() };
        s.send_data(ctx);
    });
    assert!(sim.run_until_idle(SimTime::from_secs(100_000)));
    let AckApp::Sender(s) = sim.app(sender).unwrap() else {
        unreachable!()
    };
    assert!(s.all_acked());
    Cost {
        control_at_source: s.acks_received,
        control_hops: sim.stats.hops_for(wire::flow::ACK) + sim.stats.hops_for(wire::flow::RETX),
    }
}

/// Run the unicast-NACK baseline: shared loss at the source's access link.
pub fn nack_cost(g: usize, seed: u64) -> Cost {
    let mut sim = Simulator::new(star(g), seed);
    let sender = NodeId(1);
    sim.install(sender, NackApp::Sender(NackSender::new(GROUP)));
    sim.join(sender, GROUP);
    for i in 2..=g as u32 {
        sim.install(
            NodeId(i),
            NackApp::Receiver(NackReceiver::new(sender, SimDuration::from_secs(60))),
        );
        sim.join(NodeId(i), GROUP);
    }
    let l = sim.topology().link_between(NodeId(0), sender).unwrap();
    sim.set_loss_model(Box::new(OneShotLinkDrop::new(l, sender, wire::flow::DATA)));
    sim.exec(sender, |a, ctx| {
        let NackApp::Sender(s) = a else { unreachable!() };
        s.send_data(ctx);
    });
    sim.run_until(SimTime::from_secs(1));
    sim.exec(sender, |a, ctx| {
        let NackApp::Sender(s) = a else { unreachable!() };
        s.send_data(ctx);
    });
    assert!(sim.run_until_idle(SimTime::from_secs(100_000)));
    let NackApp::Sender(s) = sim.app(sender).unwrap() else {
        unreachable!()
    };
    Cost {
        control_at_source: s.nacks_received,
        control_hops: sim.stats.hops_for(wire::flow::NACK) + sim.stats.hops_for(wire::flow::RETX),
    }
}

/// Run SRM on the same shared loss with request-interval width `c2`.
///
/// The Section VI comparison with \[29\] turns on `c2`: "the random interval
/// over which NACK timers were set would have to be at least 10 times [the
/// one-way delay] for the multicasting of NACKs to result in bandwidth
/// savings over a scheme of unicasting NACKs". At `C2 = √G` multicast
/// requests win on *implosion* but can lose on raw bandwidth in a star; at
/// large `C2` they win on both.
pub fn srm_cost(g: usize, c2: f64, seed: u64) -> Cost {
    let spec = ScenarioSpec {
        topo: TopoSpec::Star { leaves: g },
        group_size: None,
        drop: DropSpec::AdjacentToSource,
        cfg: SrmConfig {
            timers: TimerParams {
                c1: 2.0,
                c2,
                d1: 1.0,
                d2: 1.0,
            },
            ..SrmConfig::default()
        },
        seed,
        timer_seed: None,
    };
    let mut s = spec.build();
    let r = run_round(&mut s, 100_000.0);
    assert!(r.all_recovered);
    Cost {
        control_at_source: r.requests, // every multicast request reaches the source
        control_hops: s.sim.stats.hops_for(netsim::flow::REQUEST)
            + s.sim.stats.hops_for(netsim::flow::REPAIR),
    }
}

/// The comparison table.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let sizes: Vec<usize> = if opts.quick {
        vec![10, 30]
    } else {
        vec![10, 30, 100, 200]
    };
    let sims = if opts.quick { 3 } else { 10 };
    let mut t = Table::new(
        "baseline-compare: recovering a shared loss on a G-member star (means over sims)",
        &[
            "G",
            "ack_ctrl_at_src",
            "ack_ctrl_hops",
            "unack_nacks_at_src",
            "unack_ctrl_hops",
            "srm_reqs(C2=sqrtG)",
            "srm_hops(C2=sqrtG)",
            "srm_reqs(C2=2G)",
            "srm_hops(C2=2G)",
        ],
    );
    for g in sizes {
        let mut acc = [0.0f64; 8];
        for rep in 0..sims {
            let seed = 0xbc_0000 ^ ((g as u64) << 8) ^ rep;
            let a = ack_cost(g, seed);
            let n = nack_cost(g, seed);
            let s1 = srm_cost(g, (g as f64).sqrt(), seed);
            let s2 = srm_cost(g, 2.0 * g as f64, seed);
            acc[0] += a.control_at_source as f64;
            acc[1] += a.control_hops as f64;
            acc[2] += n.control_at_source as f64;
            acc[3] += n.control_hops as f64;
            acc[4] += s1.control_at_source as f64;
            acc[5] += s1.control_hops as f64;
            acc[6] += s2.control_at_source as f64;
            acc[7] += s2.control_hops as f64;
        }
        for v in &mut acc {
            *v /= sims as f64;
        }
        t.row(vec![
            g.to_string(),
            f(acc[0]),
            f(acc[1]),
            f(acc[2]),
            f(acc[3]),
            f(acc[4]),
            f(acc[5]),
            f(acc[6]),
            f(acc[7]),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srm_beats_baselines_at_scale() {
        let g = 60;
        let a = ack_cost(g, 1);
        let n = nack_cost(g, 1);
        let s_sqrt = srm_cost(g, (g as f64).sqrt(), 1);
        let s_wide = srm_cost(g, 2.0 * g as f64, 1);
        // ACK implosion: control at source equals the receiver count even
        // though only one receiver lost the packet.
        assert_eq!(a.control_at_source, (g - 1) as u64);
        // Unicast NACKs: one per receiver for the shared loss.
        assert_eq!(n.control_at_source, (g - 1) as u64);
        // SRM: suppression collapses implosion at any C2.
        assert!(
            s_sqrt.control_at_source * 4 < n.control_at_source,
            "SRM {} vs unicast-NACK {}",
            s_sqrt.control_at_source,
            n.control_at_source
        );
        // The [29] bandwidth crossover: with a wide enough interval,
        // multicast NACKs also win on raw link crossings.
        assert!(
            s_wide.control_hops < n.control_hops,
            "SRM-wide hops {} vs NACK hops {}",
            s_wide.control_hops,
            n.control_hops
        );
        let _ = srm_baselines::ack::AckSender::new(GROUP, Default::default(), SimDuration::from_secs(1));
        let _ = srm_baselines::nack::NackSender::new(GROUP);
    }
}

//! Analytic-vs-simulation validation tables for Section IV ("the tools
//! that we used to verify that our simulator is correctly implementing the
//! loss recovery algorithms").

use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::{SrmConfig, TimerParams};
use srm_analysis::{chain, star};

/// Chain check: deterministic timers (`C1 = D1 = 1`, `C2 = D2 = 0`) must
/// produce exactly one request and one repair, with recovery delays
/// matching the closed form of Section IV-A.
pub fn chain_check(_opts: &RunOpts) -> Table {
    let mut t = Table::new(
        "chain-check: deterministic recovery vs closed form (C1=D1=1, C2=D2=0)",
        &[
            "src_hops",
            "sim_requests",
            "sim_repairs",
            "sim_last_delay/RTT",
            "analysis_delay/RTT",
        ],
    );
    for hops in [1u32, 2, 5, 10] {
        let spec = ScenarioSpec {
            topo: TopoSpec::Chain { n: 40 },
            group_size: None,
            drop: DropSpec::HopsFromSource(hops),
            cfg: SrmConfig {
                timers: TimerParams {
                    c1: 1.0,
                    c2: 0.0,
                    d1: 1.0,
                    d2: 0.0,
                },
                // Section IV-A's walkthrough assumes the requestor's
                // retransmit timer never races the repair; with tiny
                // deterministic timers and a failure adjacent to the
                // source, backoff ×2 *does* race (the very problem
                // Section VII-A cites when switching to ×3). Back off far
                // enough to isolate deterministic suppression.
                backoff: 4.0,
                ..SrmConfig::default()
            },
            seed: 0xc4a1 ^ hops as u64,
            timer_seed: None,
        };
        let mut s = spec.build();
        // Identify the deepest downstream member for the analytic column.
        let deepest = s
            .downstream_members
            .iter()
            .map(|&m| s.dist_from_source[m.index()])
            .fold(0.0f64, f64::max);
        let r = run_round(&mut s, 100_000.0);
        let i = (deepest - hops as f64) as u32; // hops below the failure
        let ana = chain::recovery_delay_over_rtt(1.0, 1.0, hops - 1, i);
        t.row(vec![
            hops.to_string(),
            r.requests.to_string(),
            r.repairs.to_string(),
            f(r.recovery_over_rtt
                .iter()
                .map(|&(n, d)| (s.rtt_to_source(n), d))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .map(|(_, d)| d)
                .unwrap_or(0.0)),
            f(ana),
        ]);
    }
    t
}

/// Star check: simulated request counts vs the `1 + (G−2)/C2` model.
pub fn star_check(opts: &RunOpts) -> Table {
    let g = if opts.quick { 30 } else { 100 };
    let sims = if opts.quick { 5 } else { 20 };
    let mut t = Table::new(
        format!("star-check: {g}-member star, E[#requests] vs 1+(G-2)/C2"),
        &["C2", "sim_mean_requests", "analysis"],
    );
    for c2 in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
        let mut total = 0u64;
        for rep in 0..sims {
            let spec = ScenarioSpec {
                topo: TopoSpec::Star { leaves: g },
                group_size: None,
                drop: DropSpec::AdjacentToSource,
                cfg: SrmConfig {
                    timers: TimerParams {
                        c1: 2.0,
                        c2,
                        d1: 1.0,
                        d2: 1.0,
                    },
                    ..SrmConfig::default()
                },
                seed: 0x57a2 ^ ((c2 as u64) << 8) ^ rep,
                timer_seed: None,
            };
            let mut s = spec.build();
            total += run_round(&mut s, 100_000.0).requests;
        }
        t.row(vec![
            f(c2),
            f(total as f64 / sims as f64),
            f(star::expected_requests(g, c2)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_check_is_exact() {
        let t = chain_check(&RunOpts {
            quick: true,
            threads: 2,
        });
        for row in &t.rows {
            assert_eq!(row[1], "1", "one request");
            assert_eq!(row[2], "1", "one repair");
        }
    }

    #[test]
    fn star_check_tracks_model() {
        let t = star_check(&RunOpts {
            quick: true,
            threads: 4,
        });
        for row in &t.rows {
            let sim: f64 = row[1].parse().unwrap();
            let ana: f64 = row[2].parse().unwrap();
            // Within a factor of ~2 plus slack for second-iteration
            // requests from backed-off timers.
            assert!(
                sim <= ana * 2.5 + 2.0 && sim >= ana * 0.3 - 1.0,
                "C2={} sim={sim} ana={ana}",
                row[0]
            );
        }
    }
}

//! Fault-injection scenarios: SRM recovery across link failures,
//! partitions, source crashes, and flaky links.
//!
//! The paper's robustness claim (§I, §III): "The algorithms … are robust to
//! host failures and network partition" because recovery is
//! receiver-initiated and *any* member holding the data can answer a repair
//! request. These scenarios inject scripted faults through netsim's
//! [`FaultPlan`] and measure what the paper only argues qualitatively:
//!
//! - **partition-heal** — a chain splits for ≥ 30 s with both halves still
//!   publishing; after the heal, session messages expose the cross-partition
//!   gaps and the request/repair machinery must close them with a bounded
//!   request storm (median requests per lost ADU stays small).
//! - **source-crash** — the source dies with a loss outstanding downstream;
//!   a non-source member answers the repair.
//! - **flaky-link** — repeated Bernoulli loss bursts on one link while the
//!   source streams; retry backoff plus session-driven detection recovers
//!   every ADU once the link settles.
//! - **durable-rejoin** — a mid-chain member logs every ADU to a durable
//!   store ([`srm_store::DurableStore`] over the deterministic
//!   [`srm_store::MemBackend`]), then crashes together with the source
//!   while the downstream half is partitioned off. After the member
//!   restarts it rehydrates the log and is the *only* live holder of the
//!   pre-crash data: the downstream members must recover everything up to
//!   the last fsync from its disk, through the same rehydrate code the
//!   wall-clock `srm-node --store` runs. Parameters come from
//!   `scenarios/durable_rejoin.json` when present.
//!
//! All scenarios are single deterministic runs (fixed seeds), so the
//! output tables double as a regression oracle.

use crate::quartiles::summarize;
use crate::scenario::GROUP;
use crate::table::{f, Table};
use crate::RunOpts;
use bytes::Bytes;
use netsim::generators::chain;
use netsim::loss::OneShotLinkDrop;
use netsim::{flow, partition_cut, FaultPlan, NodeId, SimDuration, SimTime, Simulator};
use srm::{AduName, FaultEpisode, PageId, SourceId, SrmAgent, SrmConfig};
use std::collections::BTreeMap;

/// The shared whiteboard page all scenarios draw on.
fn page0() -> PageId {
    PageId::new(SourceId(0), 0)
}

/// A chain of SRM agents with **sessions enabled** (the fault scenarios
/// lean on session messages for post-fault gap detection) and distances
/// pre-warmed to the true hop counts.
fn fault_chain(n: usize, seed: u64) -> Simulator<SrmAgent> {
    let topo = chain(n);
    let mut sim = Simulator::new(topo, seed);
    let cfg = SrmConfig::fixed(n);
    for i in 0..n {
        let mut a = SrmAgent::new(SourceId(i as u64), GROUP, cfg.clone());
        a.set_current_page(page0());
        for j in 0..n {
            if i != j {
                a.distances_mut().set_distance(
                    SourceId(j as u64),
                    SimDuration::from_secs((i as i64 - j as i64).unsigned_abs()),
                );
            }
        }
        sim.install(NodeId(i as u32), a);
        sim.join(NodeId(i as u32), GROUP);
    }
    sim
}

fn send(sim: &mut Simulator<SrmAgent>, node: NodeId, payload: &'static [u8]) {
    sim.exec(node, |a, ctx| {
        a.send_data(ctx, page0(), Bytes::from_static(payload));
    });
}

/// A finished scenario simulation plus the fault windows it injected —
/// enough to derive either the summary [`Outcome`] (figure table) or a full
/// observability timeline (`trace`/`report` CLI).
pub struct FaultRun {
    /// The simulator, run to its horizon.
    pub sim: Simulator<SrmAgent>,
    /// Scenario label (also the table row name).
    pub label: &'static str,
    /// When the (first) fault was injected.
    pub started_at: SimTime,
    /// The fault windows, for nesting recovery spans in trace output.
    pub spans: Vec<obs::FaultSpan>,
}

impl FaultRun {
    /// Summarize the run's episode logs (the figure-table numbers).
    pub fn outcome(&self) -> Outcome {
        collect(&self.sim, self.label, self.started_at)
    }

    /// Drain every agent's recorder into a merged timeline with the fault
    /// windows attached.  Only meaningful for runs built with `traced =
    /// true`.
    pub fn timeline(&mut self) -> obs::Timeline {
        srm::harvest_timeline(&mut self.sim, self.spans.clone())
    }

    /// Fold every live member's metrics into a run summary.
    pub fn summary(&self) -> obs::RunSummary {
        srm::harvest_summary(&self.sim)
    }
}

/// What one scenario run produced.
pub struct Outcome {
    /// Per-episode fault metrics.
    pub episode: FaultEpisode,
    /// Live members at collection time.
    pub members: usize,
    /// Detected losses still unrecovered at the horizon.
    pub unrecovered: u64,
    /// Median over lost ADUs of total requests multicast for that ADU.
    pub req_per_loss_median: f64,
}

impl Outcome {
    /// True when every live member closed every detected gap.
    pub fn all_recovered(&self) -> bool {
        self.unrecovered == 0
    }
}

/// Sum up the recovery/repair episode logs of every live member.
fn collect(sim: &Simulator<SrmAgent>, label: &str, started_at: SimTime) -> Outcome {
    let mut per_adu: BTreeMap<AduName, u64> = BTreeMap::new();
    let mut episode = FaultEpisode {
        label: label.to_string(),
        started_at,
        reconsistent_at: Some(started_at),
        losses: 0,
        dup_requests: 0,
        dup_repairs: 0,
    };
    let mut members = 0usize;
    let mut unrecovered = 0u64;
    for node in sim.app_nodes() {
        if !sim.node_is_up(node) {
            continue;
        }
        members += 1;
        let m = &sim.app(node).expect("installed").metrics;
        for (name, r) in &m.recoveries {
            episode.losses += 1;
            episode.dup_requests += u64::from(r.requests_sent);
            *per_adu.entry(*name).or_insert(0) += u64::from(r.requests_sent);
            episode.reconsistent_at = match (episode.reconsistent_at, r.recovered_at) {
                (Some(cur), Some(t)) => Some(cur.max(t)),
                _ => None,
            };
            if r.recovered_at.is_none() {
                unrecovered += 1;
            }
        }
        episode.dup_repairs += m.repairs.values().filter(|r| r.sent).count() as u64;
    }
    let per_adu: Vec<f64> = per_adu.values().map(|&c| c as f64).collect();
    Outcome {
        episode,
        members,
        unrecovered,
        req_per_loss_median: summarize(&per_adu).map_or(0.0, |s| s.median),
    }
}

/// Partition an 8-node chain for 35 s with both halves publishing, heal,
/// and let session messages drive cross-partition recovery.  With `traced`,
/// every agent records its recovery-episode events.
pub fn partition_heal_run(seed: u64, traced: bool) -> FaultRun {
    let n = 8;
    let mut sim = fault_chain(n, seed);
    if traced {
        srm::enable_tracing(&mut sim);
    }
    let left: Vec<NodeId> = (0..4).map(NodeId).collect();
    let cut = partition_cut(sim.topology(), &left);
    let split_at = SimTime::from_secs(10);
    let heal_at = SimTime::from_secs(45); // 35 s split, ≥ the 30 s floor
    sim.set_fault_plan(FaultPlan::new().partition(split_at, cut).heal(heal_at));

    // Pre-fault traffic so every member shares the page before the split.
    send(&mut sim, NodeId(0), b"pre");
    sim.run_until(split_at);
    for node in sim.app_nodes() {
        sim.app_mut(node).expect("installed").metrics.clear_episodes();
    }

    // Data keeps flowing on both sides of the cut during the split.
    for k in 0..4u64 {
        sim.run_until(SimTime::from_secs(14 + 7 * k));
        send(&mut sim, NodeId(0), b"left");
        send(&mut sim, NodeId((n - 1) as u32), b"right");
    }
    sim.run_until(heal_at);
    sim.run_until(SimTime::from_secs(400));
    FaultRun {
        sim,
        label: "partition-heal",
        started_at: split_at,
        spans: vec![obs::FaultSpan {
            label: "partition".into(),
            start: split_at,
            end: Some(heal_at),
        }],
    }
}

/// Summary-only variant of [`partition_heal_run`].
pub fn partition_heal(seed: u64) -> Outcome {
    partition_heal_run(seed, false).outcome()
}

/// The source crashes with a downstream loss outstanding; peers repair it.
pub fn source_crash_run(seed: u64, traced: bool) -> FaultRun {
    let n = 6;
    let mut sim = fault_chain(n, seed);
    if traced {
        srm::enable_tracing(&mut sim);
    }
    let l34 = sim
        .topology()
        .link_between(NodeId(3), NodeId(4))
        .expect("chain link");
    sim.set_loss_model(Box::new(OneShotLinkDrop::new(l34, NodeId(0), flow::DATA)));
    // p0 is dropped on (3,4): nodes 4 and 5 miss it, nodes 1–3 hold it.
    send(&mut sim, NodeId(0), b"p0");
    sim.run_until(SimTime::from_secs(1));
    // p1 exposes the gap; request timers fire well after the crash below.
    send(&mut sim, NodeId(0), b"p1");
    let crash_at = SimTime::from_secs(6);
    sim.set_fault_plan(FaultPlan::new().crash(crash_at, NodeId(0)));
    sim.run_until(SimTime::from_secs(300));
    FaultRun {
        sim,
        label: "source-crash",
        started_at: crash_at,
        spans: vec![obs::FaultSpan {
            label: "crash".into(),
            start: crash_at,
            end: None, // the source never restarts
        }],
    }
}

/// Summary-only variant of [`source_crash_run`].
pub fn source_crash(seed: u64) -> Outcome {
    source_crash_run(seed, false).outcome()
}

/// Repeated Bernoulli loss bursts on a mid-chain link while the source
/// streams 30 ADUs; everything recovers once the link settles.
pub fn flaky_link_run(seed: u64, traced: bool) -> FaultRun {
    let n = 6;
    let mut sim = fault_chain(n, seed);
    if traced {
        srm::enable_tracing(&mut sim);
    }
    let l23 = sim
        .topology()
        .link_between(NodeId(2), NodeId(3))
        .expect("chain link");
    let first_burst = SimTime::from_secs(5);
    let burst_len = SimDuration::from_secs(5);
    let mut plan = FaultPlan::new();
    let mut spans = Vec::new();
    for k in 0..3u64 {
        let start = SimTime::from_secs(5 + 15 * k);
        plan = plan.loss_burst(start, Some(l23), 0.4, burst_len);
        spans.push(obs::FaultSpan {
            label: "loss-burst".into(),
            start,
            end: Some(start + burst_len),
        });
    }
    sim.set_fault_plan(plan);
    for k in 1..=30u64 {
        sim.run_until(SimTime::from_secs(k));
        send(&mut sim, NodeId(0), b"adu");
    }
    sim.run_until(SimTime::from_secs(400));
    FaultRun {
        sim,
        label: "flaky-link",
        started_at: first_burst,
        spans,
    }
}

/// Summary-only variant of [`flaky_link_run`].
pub fn flaky_link(seed: u64) -> Outcome {
    flaky_link_run(seed, false).outcome()
}

/// Knobs for the durable-rejoin scenario. Defaults mirror
/// `scenarios/durable_rejoin.json`; [`DurableRejoinParams::from_scenario_file`]
/// overlays that file when it exists, so the JSON is the single place to
/// retune the scenario without recompiling.
#[derive(Clone, Debug)]
pub struct DurableRejoinParams {
    /// Chain length (≥ 4: source, durable member, ≥ 2 downstream).
    pub nodes: usize,
    /// ADUs the source publishes before the crash.
    pub adus: u64,
    /// Durable member's in-RAM payload cap per stream (rest spill to log).
    pub cache_per_stream: usize,
    /// WAL fsync cadence: sync every N appends. The `adus % N` unsynced
    /// tail is *expected* to die with the crash.
    pub fsync_every: u64,
    /// When the source and the durable member crash (seconds).
    pub crash_at_secs: u64,
    /// When the durable member restarts and rehydrates (seconds).
    pub restart_at_secs: u64,
    /// Simulation horizon (seconds).
    pub horizon_secs: u64,
    /// Timer seed.
    pub seed: u64,
}

impl Default for DurableRejoinParams {
    fn default() -> Self {
        DurableRejoinParams {
            nodes: 4,
            adus: 7,
            cache_per_stream: 2,
            fsync_every: 2,
            crash_at_secs: 30,
            restart_at_secs: 60,
            horizon_secs: 400,
            seed: 0xFA17_0004,
        }
    }
}

impl DurableRejoinParams {
    /// Overlay `path` onto the defaults. The file doubles as a plain
    /// `srm-sim` scenario: chain size comes from `topology.n`, the
    /// pre-crash workload from `workload.adus`, the timer seed from
    /// `seed`, and the durable knobs from the extra `durability` object
    /// (which `srm-sim` ignores). A missing file, unparsable JSON, or
    /// absent field silently keeps the default — the scenario must run
    /// from a bare checkout.
    pub fn from_scenario_file(path: &str) -> Self {
        use srm_sim::json::Json;
        let mut p = Self::default();
        let Ok(text) = std::fs::read_to_string(path) else {
            return p;
        };
        let Ok(json) = Json::parse(&text) else {
            return p;
        };
        if let Some(v) = json
            .get("topology")
            .and_then(|t| t.get("n"))
            .and_then(Json::as_u64)
        {
            p.nodes = v as usize;
        }
        if let Some(v) = json
            .get("workload")
            .and_then(|w| w.get("adus"))
            .and_then(Json::as_u64)
        {
            p.adus = v;
        }
        if let Some(v) = json.get("seed").and_then(Json::as_u64) {
            p.seed = v;
        }
        let dur = |k: &str| json.get("durability").and_then(|d| d.get(k)).and_then(Json::as_u64);
        if let Some(v) = dur("cache_per_stream") {
            p.cache_per_stream = v as usize;
        }
        if let Some(v) = dur("fsync_every") {
            p.fsync_every = v;
        }
        if let Some(v) = dur("crash_at_secs") {
            p.crash_at_secs = v;
        }
        if let Some(v) = dur("restart_at_secs") {
            p.restart_at_secs = v;
        }
        if let Some(v) = dur("horizon_secs") {
            p.horizon_secs = v;
        }
        p
    }

    fn sanitized(&self) -> Self {
        let mut p = self.clone();
        p.nodes = p.nodes.max(4);
        p.adus = p.adus.max(1);
        p.cache_per_stream = p.cache_per_stream.max(1);
        p.fsync_every = p.fsync_every.max(1);
        // Leave room to publish everything before the crash, and to crash
        // before the heal/restart.
        p.crash_at_secs = p.crash_at_secs.max(3 + p.adus);
        p.restart_at_secs = p.restart_at_secs.max(p.crash_at_secs + 10);
        p.horizon_secs = p.horizon_secs.max(p.restart_at_secs + 100);
        p
    }
}

/// The WAL-side numbers of a durable-rejoin run (the second table).
pub struct DurableStats {
    /// ADUs the source published pre-crash.
    pub adus_sent: u64,
    /// ADUs that survived the crash (durable up to the last fsync).
    pub rehydrated: u64,
    /// Repairs the restarted member served from the log (cache misses).
    pub disk_fetches: u64,
    /// Payloads spilled from RAM during the pre-crash phase and after.
    pub evictions: u64,
    /// The durability layer's own counters.
    pub wal: srm::PersistenceStats,
}

/// A mid-chain durable member crashes with the source while downstream is
/// partitioned off; after restart its rehydrated log is the only live copy
/// and must serve every repair from disk.
pub fn durable_rejoin_run(params: &DurableRejoinParams, traced: bool) -> FaultRun {
    let p = params.sanitized();
    let n = p.nodes;
    let mut sim = fault_chain(n, p.seed);
    if traced {
        srm::enable_tracing(&mut sim);
    }
    let durable = NodeId(1);
    // Same attach-and-rehydrate entry point `srm-node --store` uses; the
    // in-memory backend stands in for the directory so the run is
    // deterministic and the crash hooks are scriptable.
    sim.app_mut(durable).expect("installed").attach_durable_store(
        Box::new(srm_store::DurableStore::new(
            Box::new(srm_store::MemBackend::new()),
            srm_store::StoreConfig {
                fsync: srm_store::FsyncPolicy::EveryN(p.fsync_every),
                ..srm_store::StoreConfig::default()
            },
        )),
        Some(p.cache_per_stream),
    );

    // Cut downstream off *before* any data flows: nodes 2.. learn of the
    // pre-crash ADUs only from the restarted member's session messages.
    let left: Vec<NodeId> = [NodeId(0), durable].into();
    let cut = partition_cut(sim.topology(), &left);
    let split_at = SimTime::from_secs(1);
    let crash_at = SimTime::from_secs(p.crash_at_secs);
    let heal_at = crash_at + SimDuration::from_secs(5);
    let restart_at = SimTime::from_secs(p.restart_at_secs);
    sim.set_fault_plan(
        FaultPlan::new()
            .partition(split_at, cut)
            .crash(crash_at, NodeId(0))
            .crash(crash_at, durable)
            .heal(heal_at)
            .restart(restart_at, durable),
    );

    // The source streams one ADU per second behind the cut; only the
    // durable member hears them, logging each and spilling past its cache.
    for k in 0..p.adus {
        sim.run_until(SimTime::from_secs(2 + k));
        send(&mut sim, NodeId(0), b"durable");
    }
    sim.run_until(SimTime::from_secs(p.horizon_secs));
    FaultRun {
        sim,
        label: "durable-rejoin",
        started_at: crash_at,
        spans: vec![
            obs::FaultSpan {
                label: "partition".into(),
                start: split_at,
                end: Some(heal_at),
            },
            obs::FaultSpan {
                label: "crash".into(),
                start: crash_at,
                end: Some(restart_at), // the durable member's outage
            },
        ],
    }
}

/// Summary-only variant of [`durable_rejoin_run`], plus the WAL numbers.
pub fn durable_rejoin(params: &DurableRejoinParams) -> (Outcome, DurableStats) {
    let run = durable_rejoin_run(params, false);
    let p = params.sanitized();
    let agent = run.sim.app(NodeId(1)).expect("installed");
    let st = agent.store();
    let stats = DurableStats {
        adus_sent: p.adus,
        rehydrated: st.recoverable_len() as u64,
        disk_fetches: st.disk_fetches(),
        evictions: st.evictions(),
        wal: st.persistence_stats().expect("persistence attached"),
    };
    (run.outcome(), stats)
}

/// Default location of the scenario file, relative to the repo root.
pub const DURABLE_REJOIN_SCENARIO: &str = "scenarios/durable_rejoin.json";

/// Run all four scenarios and render the recovery table plus the
/// durable-rejoin WAL table.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let _ = opts; // single deterministic runs; no quick/full split needed
    let mut t = Table::new(
        "faults: SRM recovery under injected failures (chain topologies, sessions on)",
        &[
            "scenario",
            "members",
            "losses",
            "unrecovered",
            "req/loss_med",
            "req/loss_mean",
            "repairs",
            "t_reconsist_s",
        ],
    );
    let (dr_out, dr_stats) =
        durable_rejoin(&DurableRejoinParams::from_scenario_file(DURABLE_REJOIN_SCENARIO));
    for out in [
        partition_heal(0xFA17_0001),
        source_crash(0xFA17_0002),
        flaky_link(0xFA17_0003),
        dr_out,
    ] {
        t.row(vec![
            out.episode.label.clone(),
            out.members.to_string(),
            out.episode.losses.to_string(),
            out.unrecovered.to_string(),
            f(out.req_per_loss_median),
            f(out.episode.dup_requests_per_loss()),
            out.episode.dup_repairs.to_string(),
            out.episode
                .time_to_reconsistency()
                .map_or_else(|| "-".into(), |d| f(d.as_secs_f64())),
        ]);
    }
    let mut wal = Table::new(
        "durable-rejoin: write-ahead log (crash-surviving repair state)",
        &[
            "adus_sent",
            "durable",
            "lost_unsynced",
            "disk_repairs",
            "evictions",
            "wal_appends",
            "fsyncs",
            "segments",
        ],
    );
    wal.row(vec![
        dr_stats.adus_sent.to_string(),
        dr_stats.rehydrated.to_string(),
        dr_stats.adus_sent.saturating_sub(dr_stats.rehydrated).to_string(),
        dr_stats.disk_fetches.to_string(),
        dr_stats.evictions.to_string(),
        dr_stats.wal.appends.to_string(),
        dr_stats.wal.fsyncs.to_string(),
        dr_stats.wal.segments.to_string(),
    ]);
    vec![t, wal]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The issue's acceptance scenario: a ≥ 30 s split with data flowing on
    /// both sides must end with every member fully recovered and the
    /// post-heal request storm bounded (median ≤ 4 requests per loss).
    #[test]
    fn partition_heal_recovers_everyone_with_bounded_requests() {
        let out = partition_heal(0xFA17_0001);
        assert_eq!(out.members, 8);
        // 4 ADUs per side, each missed by the 4 members of the other side.
        assert_eq!(out.episode.losses, 32, "every cross-partition ADU detected");
        assert!(out.all_recovered(), "every member reconverged after heal");
        assert!(
            out.req_per_loss_median <= 4.0,
            "post-heal duplicate requests bounded: median {} > 4",
            out.req_per_loss_median
        );
        assert!(out.episode.time_to_reconsistency().is_some());
    }

    #[test]
    fn source_crash_is_repaired_by_peers() {
        let out = source_crash(0xFA17_0002);
        assert_eq!(out.members, 5, "the source stays down");
        assert!(out.episode.losses >= 2, "nodes 4 and 5 both detected p0");
        assert!(out.all_recovered(), "peers repaired the dead source's data");
        assert!(out.episode.dup_repairs >= 1, "a repair was multicast");
    }

    #[test]
    fn flaky_link_recovers_after_bursts_settle() {
        let out = flaky_link(0xFA17_0003);
        assert!(out.episode.losses >= 1, "the bursts caused losses");
        assert!(out.all_recovered());
        assert!(out.episode.time_to_reconsistency().is_some());
    }

    /// The durable member is killed alongside the source while downstream
    /// is cut off; after restart its rehydrated WAL is the only live copy,
    /// so every ADU up to the last fsync must come back — from disk.
    #[test]
    fn durable_rejoin_serves_fsynced_prefix_from_disk() {
        let p = DurableRejoinParams::default();
        let (out, stats) = durable_rejoin(&p);
        assert_eq!(out.members, 3, "source stays down, durable member is back");
        let durable = p.adus - p.adus % p.fsync_every;
        assert!(durable < p.adus, "scenario leaves an unsynced tail to lose");
        assert_eq!(
            stats.rehydrated, durable,
            "exactly the fsynced prefix survived the crash"
        );
        assert_eq!(
            out.episode.losses,
            2 * durable,
            "both downstream members detected every durable ADU"
        );
        assert!(out.all_recovered(), "zero loss up to the last fsync");
        assert!(
            stats.disk_fetches >= durable,
            "repairs were served from the log, not RAM: {} < {durable}",
            stats.disk_fetches
        );
        assert!(stats.evictions > 0, "the bounded cache actually spilled");
        assert_eq!(stats.wal.appends, p.adus, "every ADU hit the WAL once");
    }

    /// The scenario file overlays the compiled-in defaults, so retuning
    /// the run is a JSON edit, not a rebuild.
    #[test]
    fn durable_rejoin_params_overlay_from_json() {
        let dir = std::env::temp_dir().join(format!(
            "srm-durable-rejoin-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.json");
        std::fs::write(
            &path,
            r#"{
              "topology": {"kind": "chain", "n": 6},
              "seed": 9,
              "members": "all",
              "workload": {"adus": 11, "interval_secs": 1.0, "payload_bytes": 7},
              "durability": {"cache_per_stream": 3, "fsync_every": 4, "crash_at_secs": 40}
            }"#,
        )
        .unwrap();
        let p = DurableRejoinParams::from_scenario_file(path.to_str().unwrap());
        assert_eq!(p.nodes, 6);
        assert_eq!(p.adus, 11);
        assert_eq!(p.seed, 9);
        assert_eq!(p.cache_per_stream, 3);
        assert_eq!(p.fsync_every, 4);
        assert_eq!(p.crash_at_secs, 40);
        assert_eq!(p.restart_at_secs, DurableRejoinParams::default().restart_at_secs);
        let missing = DurableRejoinParams::from_scenario_file("/nonexistent/params.json");
        assert_eq!(missing.nodes, DurableRejoinParams::default().nodes);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Two runs with the same parameters agree bit-for-bit on both the
    /// recovery outcome and the WAL counters: the in-memory backend keeps
    /// the durability path inside the simulator's determinism envelope.
    #[test]
    fn durable_rejoin_is_deterministic() {
        let p = DurableRejoinParams::default();
        let (a, sa) = durable_rejoin(&p);
        let (b, sb) = durable_rejoin(&p);
        assert_eq!(a.episode.losses, b.episode.losses);
        assert_eq!(a.episode.dup_requests, b.episode.dup_requests);
        assert_eq!(a.episode.reconsistent_at, b.episode.reconsistent_at);
        assert_eq!(sa.rehydrated, sb.rehydrated);
        assert_eq!(sa.disk_fetches, sb.disk_fetches);
        assert_eq!(sa.evictions, sb.evictions);
        assert_eq!(sa.wal, sb.wal);
    }

    /// Two runs with the same seed produce identical episode numbers — the
    /// table is a regression oracle, not a sample.
    #[test]
    fn scenarios_are_deterministic() {
        let a = flaky_link(7);
        let b = flaky_link(7);
        assert_eq!(a.episode.losses, b.episode.losses);
        assert_eq!(a.episode.dup_requests, b.episode.dup_requests);
        assert_eq!(a.episode.reconsistent_at, b.episode.reconsistent_at);
    }
}

//! Figs 12 & 13: repeated loss-recovery rounds on one duplicate-prone
//! scenario — non-adaptive (Fig 12) versus adaptive (Fig 13) timers.
//!
//! "From the simulation set in Fig. 4, we chose a network topology, session
//! membership, and drop scenario that resulted in a large number of
//! duplicate requests with the nonadaptive algorithm. The network topology
//! is a bounded-degree tree of 1000 nodes with degree 4 … 50 members. Each
//! of the two figures shows ten runs of the simulation, with 100 loss
//! recovery rounds in each run. The same topology and loss scenario is used
//! for each of the ten runs, but each run uses a new seed for the
//! pseudo-random number generator."
//!
//! Paper shape: "the adaptive algorithms quickly reduce the average number
//! of repairs, reaching steady state after about forty iterations … also …
//! a small reduction in delay."

use crate::fig4;
use crate::par::parallel_map;
use crate::quartiles::summarize;
use crate::round::run_round;
use crate::table::{f, Table};
use crate::RunOpts;
use srm::SrmConfig;

/// Session size of the chosen scenario.
pub const GROUP: usize = 50;

/// Per-round medians across runs.
#[derive(Clone, Debug)]
pub struct RoundSeries {
    /// Round index (1-based).
    pub round: usize,
    /// Requests per round: median, q1, q3 across runs.
    pub requests: (f64, f64, f64),
    /// Repairs per round: median, q1, q3 across runs.
    pub repairs: (f64, f64, f64),
    /// Last-member delay/RTT: median, q1, q3 across runs.
    pub delay: (f64, f64, f64),
}

/// Pick the duplicate-prone scenario: scan Fig 4 seeds at G = 50 and keep
/// the one with the most requests + repairs in a single non-adaptive round.
pub fn pick_bad_seed(opts: &RunOpts) -> u64 {
    let candidates: Vec<u64> = (0..if opts.quick { 6 } else { 20 }).collect();
    let scored = parallel_map(candidates, opts.threads, |rep| {
        let mut s = fig4::spec(GROUP, rep, SrmConfig::fixed(GROUP)).build();
        let r = run_round(&mut s, 100_000.0);
        (rep, r.requests + r.repairs)
    });
    scored
        .into_iter()
        .max_by_key(|&(_, dups)| dups)
        .map(|(rep, _)| rep)
        .unwrap()
}

/// Run `runs` independent runs of `rounds` rounds each with the given
/// config on the chosen scenario, and summarize per round.
pub fn series(opts: &RunOpts, cfg: SrmConfig, bad_rep: u64) -> Vec<RoundSeries> {
    let runs: Vec<u64> = (0..if opts.quick { 4 } else { 10 }).collect();
    let rounds = if opts.quick { 20 } else { 100 };
    // Each run: same scenario seed, fresh timer seed.
    let per_run: Vec<Vec<(u64, u64, f64)>> = parallel_map(runs, opts.threads, |run| {
        let mut spec = fig4::spec(GROUP, bad_rep, cfg.clone());
        spec.timer_seed = Some(0x12_0000 + run * 7919);
        let mut s = spec.build();
        (0..rounds)
            .map(|_| {
                let r = run_round(&mut s, 100_000.0);
                assert!(r.all_recovered);
                (
                    r.requests,
                    r.repairs,
                    r.last_member_delay_over_rtt(&s).unwrap_or(0.0),
                )
            })
            .collect()
    });
    (0..rounds)
        .map(|i| {
            let req: Vec<f64> = per_run.iter().map(|r| r[i].0 as f64).collect();
            let rep: Vec<f64> = per_run.iter().map(|r| r[i].1 as f64).collect();
            let del: Vec<f64> = per_run.iter().map(|r| r[i].2).collect();
            let s3 = |v: &[f64]| {
                let s = summarize(v).unwrap();
                (s.median, s.q1, s.q3)
            };
            RoundSeries {
                round: i + 1,
                requests: s3(&req),
                repairs: s3(&rep),
                delay: s3(&del),
            }
        })
        .collect()
}

fn render(tag: &str, desc: &str, rows: &[RoundSeries]) -> Table {
    let mut t = Table::new(
        format!("{tag}: {desc} — per-round medians [q1,q3] over runs"),
        &[
            "round",
            "requests_med",
            "requests_q1",
            "requests_q3",
            "repairs_med",
            "delay_med",
            "delay_q1",
            "delay_q3",
        ],
    );
    for r in rows {
        t.row(vec![
            r.round.to_string(),
            f(r.requests.0),
            f(r.requests.1),
            f(r.requests.2),
            f(r.repairs.0),
            f(r.delay.0),
            f(r.delay.1),
            f(r.delay.2),
        ]);
    }
    t
}

/// Fig 12: the non-adaptive algorithm.
pub fn run_fig12(opts: &RunOpts) -> Vec<Table> {
    let bad = pick_bad_seed(opts);
    let rows = series(opts, SrmConfig::fixed(GROUP), bad);
    vec![render(
        "fig12",
        "non-adaptive (C1=D1=2, C2=D2=sqrt(G))",
        &rows,
    )]
}

/// Fig 13: the adaptive algorithm on the same scenario.
pub fn run_fig13(opts: &RunOpts) -> Vec<Table> {
    let bad = pick_bad_seed(opts);
    let rows = series(opts, SrmConfig::adaptive(GROUP), bad);
    vec![render("fig13", "adaptive timer algorithm", &rows)]
}

/// Mean requests+repairs over the last `k` rounds of a series (for the
/// comparison tests and EXPERIMENTS.md).
pub fn tail_mean_dups(rows: &[RoundSeries], k: usize) -> f64 {
    let tail = &rows[rows.len().saturating_sub(k)..];
    tail.iter()
        .map(|r| r.requests.0 + r.repairs.0)
        .sum::<f64>()
        / tail.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_nonadaptive_on_duplicates() {
        let opts = RunOpts {
            quick: true,
            threads: 8,
        };
        let bad = pick_bad_seed(&opts);
        let fixed = series(&opts, SrmConfig::fixed(GROUP), bad);
        let adapt = series(&opts, SrmConfig::adaptive(GROUP), bad);
        let fixed_tail = tail_mean_dups(&fixed, 5);
        let adapt_tail = tail_mean_dups(&adapt, 5);
        // The adaptive algorithm must end with no more (and typically
        // fewer) duplicates than the fixed one started with.
        let fixed_head = tail_mean_dups(&fixed[..5.min(fixed.len())].to_vec(), 5);
        assert!(
            adapt_tail <= fixed_head + 0.5,
            "adaptive tail {adapt_tail} vs fixed head {fixed_head}"
        );
        // And it should not blow up relative to the fixed steady state.
        assert!(
            adapt_tail <= fixed_tail * 1.5 + 1.0,
            "adaptive {adapt_tail} vs fixed {fixed_tail}"
        );
    }
}

//! Fig 14: the adaptive algorithm at round 40, across the same scenario
//! sweep as Fig 4 (1000-node degree-4 tree, sparse sessions, random
//! congested link).
//!
//! "For each scenario … the adaptive algorithm is run repeatedly for 40
//! loss recovery rounds, and Fig. 14 shows the results from the 40th loss
//! recovery round. Comparing Figs. 4 and 14 shows that the adaptive
//! algorithm is effective in controlling the number of duplicates over a
//! range of scenarios."

use crate::fig3::{tables, Sample};
use crate::fig4;
use crate::par::parallel_map;
use crate::round::run_round;
use crate::table::Table;
use crate::RunOpts;
use srm::SrmConfig;

/// Rounds of adaptation before the measured round.
pub fn rounds(opts: &RunOpts) -> usize {
    if opts.quick {
        15
    } else {
        40
    }
}

/// Run all simulations: each scenario runs `rounds` rounds and reports the
/// last one.
pub fn samples(opts: &RunOpts) -> Vec<Sample> {
    let sims = if opts.quick { 4 } else { 20 };
    let n_rounds = rounds(opts);
    let mut inputs = Vec::new();
    for size in fig4::sizes(opts) {
        for rep in 0..sims {
            inputs.push((size, rep as u64));
        }
    }
    parallel_map(inputs, opts.threads, move |(size, rep)| {
        let mut s = fig4::spec(size, rep, SrmConfig::adaptive(size)).build();
        let mut last = None;
        for _ in 0..n_rounds {
            let r = run_round(&mut s, 100_000.0);
            assert!(r.all_recovered);
            let delay = r.last_member_delay_over_rtt(&s).unwrap_or(0.0);
            last = Some(Sample {
                size,
                requests: r.requests,
                repairs: r.repairs,
                delay_over_rtt: delay,
            });
        }
        last.expect("at least one round")
    })
}

/// Produce the figure's panels.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let all = samples(opts);
    tables(
        "fig14",
        "adaptive algorithm, round 40, sparse sessions in 1000-node tree",
        &all,
        &fig4::sizes(opts),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_controls_duplicates_across_sweep() {
        let opts = RunOpts {
            quick: true,
            threads: 8,
        };
        let adapted = samples(&opts);
        let baseline = fig4::samples(&opts);
        let mean = |v: &[Sample], sel: &dyn Fn(&Sample) -> f64| {
            v.iter().map(sel).sum::<f64>() / v.len().max(1) as f64
        };
        let adapted_dups = mean(&adapted, &|s| (s.requests + s.repairs) as f64);
        let baseline_dups = mean(&baseline, &|s| (s.requests + s.repairs) as f64);
        assert!(
            adapted_dups <= baseline_dups + 0.5,
            "round-40 adaptive dups {adapted_dups} vs fixed {baseline_dups}"
        );
    }
}

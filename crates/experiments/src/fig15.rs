//! Fig 15: TTL-based local recovery with two-step repairs — the "optimal
//! execution" study of Section VII-B3.
//!
//! "To explore the optimal possible performance, we assume that the loss
//! neighborhood is stable, and that members have some method for estimating
//! \[t_low\] and \[t_high\] … Further, we assume that for each loss recovery
//! event … there is a single request and a single repair, and that both
//! come from the members closest to the point of failure. We restrict
//! attention to scenarios where the loss neighborhood contains at most
//! 1/10th of the session members."
//!
//! The computation is exact reachability over the threshold graph (no
//! timer randomness is involved in the optimal execution), per the paper's
//! definition of TTL forwarding. A one-step-repair column is included for
//! the comparison the paper draws ("one-step repairs are fairly inefficient
//! in their use of bandwidth").

use crate::par::parallel_map;
use crate::quartiles::summarize;
use crate::table::{f, Table};
use crate::RunOpts;
use netsim::generators;
use netsim::routing::SpTree;
use netsim::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

/// One accepted scenario's outcome.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Session size.
    pub size: usize,
    /// Loss-neighborhood size (members sharing the loss).
    pub loss_members: usize,
    /// Fraction of session members reached by the two-step repair.
    pub frac_reached_two_step: f64,
    /// Members reached by the two-step repair / loss-neighborhood size.
    pub ratio_two_step: f64,
    /// Fraction reached by a one-step repair.
    pub frac_reached_one_step: f64,
    /// Ratio for the one-step repair.
    pub ratio_one_step: f64,
}

/// Session sizes (x-axis).
pub fn sizes(opts: &RunOpts) -> Vec<usize> {
    if opts.quick {
        vec![50, 100]
    } else {
        vec![20, 50, 100, 150, 200]
    }
}

/// Evaluate one accepted scenario. With `varied_thresholds`, link
/// thresholds are drawn from {1, 2, 4, 8} instead of all-ones — the
/// "networks with a range of … link thresholds" the paper reports work
/// equally well.
fn evaluate(seed: u64, g: usize, n: usize, degree: usize, varied_thresholds: bool) -> Option<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = generators::bounded_degree_tree(n, degree);
    if varied_thresholds {
        use rand::seq::IndexedRandom as _;
        let choices = [1u8, 2, 4, 8];
        let links: Vec<netsim::LinkId> = topo.links().map(|(l, _)| l).collect();
        for l in links {
            topo.set_threshold(l, *choices.choose(&mut rng).expect("nonempty"));
        }
    }
    let members = generators::random_members(&topo, g, &mut rng);
    let source = *members.choose(&mut rng)?;
    let spt_src = SpTree::compute(&topo, source);
    // Candidate congested links: on the tree toward some member.
    let mut links: Vec<LinkId> = Vec::new();
    for &m in &members {
        for l in spt_src.path_links(m) {
            if !links.contains(&l) {
                links.push(l);
            }
        }
    }
    links.sort_unstable();
    let link = *links.choose(&mut rng)?;
    let downstream = spt_src.downstream_of(link);
    let loss_nbhd: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| downstream.contains(m))
        .collect();
    // Paper constraint: the loss neighborhood holds at most 1/10 of the
    // members (and at least one, and not everyone must be lost).
    if loss_nbhd.is_empty() || loss_nbhd.len() * 10 > g || loss_nbhd.len() == members.len() {
        return None;
    }

    // The requestor A: the loss-neighborhood member closest to the failure
    // (fewest hops from the link's downstream end).
    let down_end = {
        let l = topo.link(link);
        if downstream.contains(&l.a) {
            l.a
        } else {
            l.b
        }
    };
    let spt_down = SpTree::compute(&topo, down_end);
    let a = *loss_nbhd
        .iter()
        .min_by_key(|&&m| (spt_down.hop_count(m), m))
        .expect("nonempty loss neighborhood");

    let spt_a = SpTree::compute(&topo, a);
    // t_low: minimum TTL for A to reach every loss-neighborhood member.
    let t_low = loss_nbhd
        .iter()
        .filter_map(|&m| spt_a.min_ttl_to_reach(&topo, m))
        .max()
        .unwrap_or(0);
    // t_high: minimum TTL for A to reach some member outside the loss
    // neighborhood (a potential repairer).
    let (b, t_high) = members
        .iter()
        .copied()
        .filter(|m| !loss_nbhd.contains(m) && *m != a)
        .filter_map(|m| spt_a.min_ttl_to_reach(&topo, m).map(|t| (m, t)))
        .min_by_key(|&(m, t)| (t, m))?;
    let t = t_low.max(t_high);

    // Two-step: B answers with TTL t (the request's TTL); A re-multicasts
    // with TTL t. Reached = union.
    let spt_b = SpTree::compute(&topo, b);
    let r1 = spt_b.ttl_reach(&topo, t);
    let r2 = spt_a.ttl_reach(&topo, t);
    let reached_two: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| r1.contains(m) || r2.contains(m))
        .collect();

    // One-step: B answers with TTL t + hops(B→A), guaranteed to cover
    // everything the request reached.
    let hops_ba = spt_b.hop_count(a) as u8;
    let r_one = spt_b.ttl_reach(&topo, t.saturating_add(hops_ba));
    let reached_one: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| r_one.contains(m))
        .collect();

    Some(Sample {
        size: g,
        loss_members: loss_nbhd.len(),
        frac_reached_two_step: reached_two.len() as f64 / g as f64,
        ratio_two_step: reached_two.len() as f64 / loss_nbhd.len() as f64,
        frac_reached_one_step: reached_one.len() as f64 / g as f64,
        ratio_one_step: reached_one.len() as f64 / loss_nbhd.len() as f64,
    })
}

/// Run all accepted scenarios.
pub fn samples(opts: &RunOpts) -> Vec<Sample> {
    samples_with(opts, false)
}

/// As [`samples`], optionally with heterogeneous link thresholds.
pub fn samples_with(opts: &RunOpts, varied_thresholds: bool) -> Vec<Sample> {
    let sims = if opts.quick { 8 } else { 20 };
    let n = if opts.quick { 500 } else { 1000 };
    let mut inputs = Vec::new();
    for g in sizes(opts) {
        for rep in 0..sims {
            inputs.push((g, rep as u64));
        }
    }
    parallel_map(inputs, opts.threads, move |(g, rep)| {
        // Rejection-sample seeds until the loss-neighborhood constraint
        // holds.
        for attempt in 0..1000u64 {
            let seed = 0x0f00_0000 ^ ((g as u64) << 24) ^ (rep << 12) ^ attempt;
            if let Some(s) = evaluate(seed, g, n, 4, varied_thresholds) {
                return s;
            }
        }
        panic!("no acceptable fig15 scenario for g={g} rep={rep}");
    })
}

/// The figure: fraction reached and repair-neighborhood ratio vs session
/// size, two-step and one-step — plus the varied-threshold variant the
/// paper mentions ("can work well in networks with a range of topologies
/// and link thresholds").
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut out = panels(opts, false, "fig15");
    out.extend(panels(opts, true, "fig15-thresholds{1,2,4,8}"));
    out
}

fn panels(opts: &RunOpts, varied: bool, tag: &str) -> Vec<Table> {
    let all = samples_with(opts, varied);
    let mut t1 = Table::new(
        format!("{tag} (top): fraction of session members reached by the repair"),
        &["session_size", "two_step_med", "two_step_q1", "two_step_q3", "one_step_med"],
    );
    let mut t2 = Table::new(
        format!("{tag} (bottom): members reached / loss-neighborhood size"),
        &["session_size", "two_step_med", "two_step_q1", "two_step_q3", "one_step_med"],
    );
    for g in sizes(opts) {
        let sel: Vec<&Sample> = all.iter().filter(|s| s.size == g).collect();
        let col = |f2: &dyn Fn(&Sample) -> f64| -> Vec<f64> { sel.iter().map(|s| f2(s)).collect() };
        let two_frac = summarize(&col(&|s| s.frac_reached_two_step)).unwrap();
        let one_frac = summarize(&col(&|s| s.frac_reached_one_step)).unwrap();
        t1.row(vec![
            g.to_string(),
            f(two_frac.median),
            f(two_frac.q1),
            f(two_frac.q3),
            f(one_frac.median),
        ]);
        let two_ratio = summarize(&col(&|s| s.ratio_two_step)).unwrap();
        let one_ratio = summarize(&col(&|s| s.ratio_one_step)).unwrap();
        t2.row(vec![
            g.to_string(),
            f(two_ratio.median),
            f(two_ratio.q1),
            f(two_ratio.q3),
            f(one_ratio.median),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_recovery_limits_repair_scope() {
        let opts = RunOpts {
            quick: true,
            threads: 8,
        };
        let all = samples(&opts);
        assert!(!all.is_empty());
        for s in &all {
            // The repair must cover the whole loss neighborhood…
            assert!(s.ratio_two_step >= 1.0, "coverage: {s:?}");
            // …while reaching well under the full session on average.
            assert!(s.frac_reached_two_step <= 1.0);
            // One-step reaches at least as many members as step one of
            // two-step-from-B alone would (it has a strictly larger TTL).
            assert!(s.frac_reached_one_step >= 0.0);
        }
        let mean_two = all.iter().map(|s| s.frac_reached_two_step).sum::<f64>() / all.len() as f64;
        let mean_one = all.iter().map(|s| s.frac_reached_one_step).sum::<f64>() / all.len() as f64;
        assert!(
            mean_two < 1.0,
            "two-step should usually not flood the whole session: {mean_two}"
        );
        assert!(
            mean_two <= mean_one + 1e-9,
            "two-step ({mean_two}) is no worse than one-step ({mean_one})"
        );
    }

    #[test]
    fn varied_thresholds_preserve_coverage() {
        // "local recovery with two-step repairs can work well in networks
        // with a range of … link thresholds."
        let opts = RunOpts {
            quick: true,
            threads: 8,
        };
        let all = samples_with(&opts, true);
        assert!(!all.is_empty());
        for s in &all {
            assert!(
                s.ratio_two_step >= 1.0,
                "loss neighborhood fully covered under mixed thresholds: {s:?}"
            );
        }
        let mean = all.iter().map(|s| s.frac_reached_two_step).sum::<f64>() / all.len() as f64;
        assert!(mean < 1.0, "still local, not a session flood: {mean}");
    }
}

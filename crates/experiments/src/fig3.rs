//! Fig 3: loss recovery on random labeled trees where *all* nodes are
//! session members (density 1), fixed timer parameters `C1 = D1 = 2`,
//! `C2 = D2 = √G`, a single random packet drop per simulation.
//!
//! Paper shape: median ≈ 1 request and ≈ 1 repair at every session size;
//! the last member's recovery delay is under ≈ 2 RTT.

use crate::par::parallel_map;
use crate::quartiles::summarize;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::SrmConfig;

/// One simulation's harvest.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Session size.
    pub size: usize,
    /// Requests sent in the round.
    pub requests: u64,
    /// Repairs sent in the round.
    pub repairs: u64,
    /// Last member's recovery delay over its RTT to the source.
    pub delay_over_rtt: f64,
}

/// Session sizes exercised.
pub fn sizes(opts: &RunOpts) -> Vec<usize> {
    if opts.quick {
        vec![10, 20, 40]
    } else {
        vec![10, 20, 30, 40, 60, 80, 100]
    }
}

/// Run all simulations for the figure.
pub fn samples(opts: &RunOpts) -> Vec<Sample> {
    let sims = if opts.quick { 5 } else { 20 };
    let mut inputs = Vec::new();
    for size in sizes(opts) {
        for rep in 0..sims {
            inputs.push((size, rep as u64));
        }
    }
    parallel_map(inputs, opts.threads, |(size, rep)| {
        let spec = ScenarioSpec {
            topo: TopoSpec::RandomTree { n: size },
            group_size: None, // density 1
            drop: DropSpec::RandomTreeLink,
            cfg: SrmConfig::fixed(size),
            seed: 0x0300_0000 ^ ((size as u64) << 20) ^ rep,
            timer_seed: None,
        };
        let mut s = spec.build();
        let r = run_round(&mut s, 100_000.0);
        assert!(r.all_recovered, "fig3 round failed to recover");
        Sample {
            size,
            requests: r.requests,
            repairs: r.repairs,
            delay_over_rtt: r.last_member_delay_over_rtt(&s).unwrap_or(0.0),
        }
    })
}

/// Produce the three panels of the figure as tables.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let all = samples(opts);
    tables("fig3", "random trees, density 1", &all, &sizes(opts))
}

/// Shared table builder for Fig 3/4/14-style panels.
pub fn tables(tag: &str, desc: &str, all: &[Sample], sizes: &[usize]) -> Vec<Table> {
    let mut t_req = Table::new(
        format!("{tag} (a): requests per loss — {desc}"),
        &["session_size", "median", "q1", "q3", "mean", "max"],
    );
    let mut t_rep = Table::new(
        format!("{tag} (b): repairs per loss — {desc}"),
        &["session_size", "median", "q1", "q3", "mean", "max"],
    );
    let mut t_del = Table::new(
        format!("{tag} (c): last-member recovery delay / RTT — {desc}"),
        &["session_size", "median", "q1", "q3", "mean", "max"],
    );
    for &size in sizes {
        let of = |sel: &dyn Fn(&Sample) -> f64| -> Vec<f64> {
            all.iter().filter(|s| s.size == size).map(sel).collect()
        };
        for (t, vals) in [
            (&mut t_req, of(&|s| s.requests as f64)),
            (&mut t_rep, of(&|s| s.repairs as f64)),
            (&mut t_del, of(&|s| s.delay_over_rtt)),
        ] {
            if let Some(s) = summarize(&vals) {
                t.row(vec![
                    size.to_string(),
                    f(s.median),
                    f(s.q1),
                    f(s.q3),
                    f(s.mean),
                    f(s.max),
                ]);
            }
        }
    }
    vec![t_req, t_rep, t_del]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let all = samples(&opts);
        assert!(!all.is_empty());
        // Dense random trees: requests and repairs stay near 1.
        let reqs: Vec<f64> = all.iter().map(|s| s.requests as f64).collect();
        let m = crate::quartiles::summarize(&reqs).unwrap();
        assert!(m.median <= 2.0, "median requests {} should be ~1", m.median);
        let reps: Vec<f64> = all.iter().map(|s| s.repairs as f64).collect();
        let m = crate::quartiles::summarize(&reps).unwrap();
        assert!(m.median <= 2.0, "median repairs {} should be ~1", m.median);
    }

    #[test]
    fn tables_have_all_sizes() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.rows.len(), sizes(&opts).len());
        }
    }
}

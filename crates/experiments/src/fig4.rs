//! Fig 4: sparse sessions in a large bounded-degree tree (1000 nodes,
//! interior degree 4), fixed timer parameters, random congested link.
//!
//! Paper shape: "the average number of repairs for each loss is somewhat
//! high" — duplicate repairs grow well above 1 because the members near the
//! congested link may be far apart, weakening deterministic suppression.

use crate::fig3::{tables, Sample};
use crate::par::parallel_map;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::Table;
use crate::RunOpts;
use srm::SrmConfig;

/// Underlying network size (paper: 1000 nodes, degree 4).
pub const NET_NODES: usize = 1000;
/// Interior node degree.
pub const NET_DEGREE: usize = 4;

/// Session sizes exercised.
pub fn sizes(opts: &RunOpts) -> Vec<usize> {
    if opts.quick {
        vec![10, 20, 50]
    } else {
        vec![10, 20, 50, 100, 150, 200]
    }
}

/// The scenario for (session size, replicate) — shared with Fig 14.
pub fn spec(size: usize, rep: u64, cfg: SrmConfig) -> ScenarioSpec {
    ScenarioSpec {
        topo: TopoSpec::BoundedTree {
            n: NET_NODES,
            degree: NET_DEGREE,
        },
        group_size: Some(size),
        drop: DropSpec::RandomTreeLink,
        cfg,
        seed: 0x0400_0000 ^ ((size as u64) << 20) ^ rep,
        timer_seed: None,
    }
}

/// Run all simulations for the figure.
pub fn samples(opts: &RunOpts) -> Vec<Sample> {
    let sims = if opts.quick { 5 } else { 20 };
    let mut inputs = Vec::new();
    for size in sizes(opts) {
        for rep in 0..sims {
            inputs.push((size, rep as u64));
        }
    }
    parallel_map(inputs, opts.threads, |(size, rep)| {
        let mut s = spec(size, rep, SrmConfig::fixed(size)).build();
        let r = run_round(&mut s, 100_000.0);
        assert!(r.all_recovered, "fig4 round failed to recover");
        Sample {
            size,
            requests: r.requests,
            repairs: r.repairs,
            delay_over_rtt: r.last_member_delay_over_rtt(&s).unwrap_or(0.0),
        }
    })
}

/// Produce the figure's panels.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let all = samples(opts);
    tables(
        "fig4",
        "1000-node degree-4 tree, sparse sessions, fixed timers",
        &all,
        &sizes(opts),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_sessions_recover_with_more_duplicates_than_dense() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let sparse = samples(&opts);
        assert!(!sparse.is_empty());
        // Everything recovered (asserted inside), and there is at least one
        // scenario with duplicate repairs or requests — sparse sessions are
        // where fixed timers struggle (that is the figure's point).
        let max_total = sparse
            .iter()
            .map(|s| s.requests + s.repairs)
            .max()
            .unwrap();
        assert!(
            max_total >= 3,
            "expected some duplicate-heavy sparse round, max requests+repairs = {max_total}"
        );
    }
}

//! Fig 5: the delay-vs-duplicates tradeoff in a star as the request
//! interval width `C2` sweeps 0..100, with the analysis of Section IV-B
//! overlaid.
//!
//! Setup: a 100-member star (non-member hub), the congested link adjacent
//! to the source, `C1 = 2`. Increasing `C2` raises the expected request
//! delay slightly (`+C2·d/G`) while cutting the expected number of requests
//! roughly as `1 + (G−2)/C2`.
//!
//! Repair timers use `D1 = D2 = 1` so the single repairer (only the source
//! holds the data) answers promptly; the paper leaves the D-parameters of
//! this section unspecified (see DESIGN.md §6).

use crate::par::parallel_map;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::{SrmConfig, TimerParams};
use srm_analysis::star;

/// Star size (paper: 100).
pub fn group_size(opts: &RunOpts) -> usize {
    if opts.quick {
        30
    } else {
        100
    }
}

/// The C2 sweep.
pub fn c2_values(opts: &RunOpts) -> Vec<f64> {
    if opts.quick {
        vec![0.0, 2.0, 5.0, 10.0, 30.0, 100.0]
    } else {
        let mut v: Vec<f64> = (0..=20).map(|i| i as f64).collect();
        v.extend((5..=20).map(|i| (i * 5) as f64));
        v.dedup();
        v
    }
}

/// One sweep point's aggregate.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Interval width parameter.
    pub c2: f64,
    /// Mean request delay over RTT (closest affected member).
    pub sim_delay: f64,
    /// Mean number of requests.
    pub sim_requests: f64,
    /// Analytic delay (Section IV-B).
    pub ana_delay: f64,
    /// Analytic request count.
    pub ana_requests: f64,
}

/// Run the sweep.
pub fn points(opts: &RunOpts) -> Vec<Point> {
    let g = group_size(opts);
    let sims = if opts.quick { 5 } else { 20 };
    let inputs: Vec<f64> = c2_values(opts);
    parallel_map(inputs, opts.threads, |c2| {
        let mut delays = Vec::new();
        let mut requests = Vec::new();
        for rep in 0..sims {
            let spec = ScenarioSpec {
                topo: TopoSpec::Star { leaves: g },
                group_size: None,
                drop: DropSpec::AdjacentToSource,
                cfg: SrmConfig {
                    timers: TimerParams {
                        c1: 2.0,
                        c2,
                        d1: 1.0,
                        d2: 1.0,
                    },
                    ..SrmConfig::default()
                },
                seed: 0x0500_0000 ^ ((c2 as u64) << 16) ^ rep,
                timer_seed: None,
            };
            let mut s = spec.build();
            let r = run_round(&mut s, 100_000.0);
            assert!(r.all_recovered);
            requests.push(r.requests as f64);
            if let Some(d) = r.closest_member_request_delay(&s) {
                delays.push(d);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (ana_delay, ana_requests) = star::fig5_point(g, 2.0, c2);
        Point {
            c2,
            sim_delay: mean(&delays),
            sim_requests: mean(&requests),
            ana_delay,
            ana_requests,
        }
    })
}

/// The figure as a table: simulation next to analysis.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let g = group_size(opts);
    let mut t = Table::new(
        format!("fig5: star of {g} members — delay vs duplicate requests as C2 varies (C1=2)"),
        &[
            "C2",
            "sim_delay/RTT",
            "sim_requests",
            "analysis_delay/RTT",
            "analysis_requests",
        ],
    );
    for p in points(opts) {
        t.row(vec![
            f(p.c2),
            f(p.sim_delay),
            f(p.sim_requests),
            f(p.ana_delay),
            f(p.ana_requests),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_shape_holds() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let pts = points(&opts);
        let first = pts.first().unwrap(); // C2 = 0
        let last = pts.last().unwrap(); // C2 = 100
        // Many requests at C2=0 (everyone fires), few at C2=100.
        assert!(
            first.sim_requests > last.sim_requests * 3.0,
            "requests must fall sharply: {} -> {}",
            first.sim_requests,
            last.sim_requests
        );
        // Delay rises with C2.
        assert!(last.sim_delay > first.sim_delay);
        // Simulation tracks analysis on the request count within ~2x.
        for p in &pts {
            if p.ana_requests > 2.0 {
                let ratio = p.sim_requests / p.ana_requests;
                assert!(
                    (0.4..=2.5).contains(&ratio),
                    "c2={} sim={} ana={}",
                    p.c2,
                    p.sim_requests,
                    p.ana_requests
                );
            }
        }
    }
}

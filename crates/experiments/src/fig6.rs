//! Fig 6: the delay-vs-duplicates tradeoff in a chain, with the failed edge
//! 1, 2, 5, or 10 hops from the source.
//!
//! Paper shape: "with a chain topology, setting C2 to zero gives the
//! optimal behavior both in terms of delay and in the number of duplicates
//! … While increasing C2 can increase the number of duplicates, the
//! magnitude of the increase is quite small."

use crate::par::parallel_map;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::{SrmConfig, TimerParams};

/// Chain length (all nodes are members).
pub fn chain_len(opts: &RunOpts) -> usize {
    if opts.quick {
        30
    } else {
        100
    }
}

/// Hops from the source to the failed edge — the figure's four lines.
pub const HOPS: [u32; 4] = [1, 2, 5, 10];

/// The C2 sweep: "C2 ranges from 0 to 10 in increments of 1, and then from
/// 10 to 100 in increments of 10".
pub fn c2_values(opts: &RunOpts) -> Vec<f64> {
    if opts.quick {
        vec![0.0, 1.0, 5.0, 20.0, 100.0]
    } else {
        let mut v: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        v.extend((2..=10).map(|i| (i * 10) as f64));
        v
    }
}

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Failed-edge distance from the source.
    pub hops: u32,
    /// Interval width parameter.
    pub c2: f64,
    /// Mean request delay over RTT of the closest affected member.
    pub delay: f64,
    /// Mean number of requests.
    pub requests: f64,
}

/// Run the sweep.
pub fn points(opts: &RunOpts) -> Vec<Point> {
    let n = chain_len(opts);
    let sims = if opts.quick { 4 } else { 20 };
    let mut inputs = Vec::new();
    for &hops in &HOPS {
        for c2 in c2_values(opts) {
            inputs.push((hops, c2));
        }
    }
    parallel_map(inputs, opts.threads, |(hops, c2)| {
        let mut delays = Vec::new();
        let mut requests = Vec::new();
        for rep in 0..sims {
            let spec = ScenarioSpec {
                topo: TopoSpec::Chain { n },
                group_size: None,
                drop: DropSpec::HopsFromSource(hops),
                cfg: SrmConfig {
                    timers: TimerParams {
                        c1: 2.0,
                        c2,
                        d1: 1.0,
                        d2: 1.0,
                    },
                    ..SrmConfig::default()
                },
                seed: 0x0600_0000 ^ ((hops as u64) << 24) ^ ((c2 as u64) << 8) ^ rep,
                timer_seed: None,
            };
            let mut s = spec.build();
            let r = run_round(&mut s, 100_000.0);
            assert!(r.all_recovered);
            requests.push(r.requests as f64);
            if let Some(d) = r.closest_member_request_delay(&s) {
                delays.push(d);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        Point {
            hops,
            c2,
            delay: mean(&delays),
            requests: mean(&requests),
        }
    })
}

/// The figure as one table per failed-edge distance.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let pts = points(opts);
    HOPS.iter()
        .map(|&h| {
            let mut t = Table::new(
                format!("fig6: chain, failed edge {h} hop(s) from source (C1=2)"),
                &["C2", "delay/RTT", "requests"],
            );
            for p in pts.iter().filter(|p| p.hops == h) {
                t.row(vec![f(p.c2), f(p.delay), f(p.requests)]);
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2_zero_is_optimal_on_a_chain() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let pts = points(&opts);
        for &h in &HOPS {
            let line: Vec<&Point> = pts.iter().filter(|p| p.hops == h).collect();
            let at0 = line.iter().find(|p| p.c2 == 0.0).unwrap();
            // Exactly one request with deterministic timers.
            assert!(
                (at0.requests - 1.0).abs() < 1e-9,
                "hops={h}: C2=0 gives one request, got {}",
                at0.requests
            );
            // Duplicate growth with C2 is small (the paper: "quite small").
            let worst = line.iter().map(|p| p.requests).fold(0.0, f64::max);
            assert!(worst <= 4.0, "hops={h}: worst requests {worst} stays small");
            // Delay at C2=0 is minimal for the line.
            let min_delay = line.iter().map(|p| p.delay).fold(f64::MAX, f64::min);
            assert!(at0.delay <= min_delay + 1e-9);
        }
    }
}

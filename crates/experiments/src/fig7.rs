//! Fig 7: the delay-vs-duplicates tradeoff for *dense* sessions in tree
//! topologies as `C2` varies, one line per failed-edge distance (1–4 hops
//! from the source).
//!
//! Paper shape: "For a dense session in a tree topology, a small value for
//! C2 gives good performance in terms of both delay and duplicates", and
//! for the near-source drop lines the duplicate count peaks at an
//! *intermediate* C2.

use crate::par::parallel_map;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::{SrmConfig, TimerParams};

/// Failed-edge distances, as in the paper's four lines.
pub const HOPS: [u32; 4] = [1, 2, 3, 4];

/// The C2 sweep 0..100.
pub fn c2_values(opts: &RunOpts) -> Vec<f64> {
    if opts.quick {
        vec![0.0, 1.0, 3.0, 10.0, 40.0, 100.0]
    } else {
        let mut v: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        v.extend((2..=10).map(|i| (i * 10) as f64));
        v
    }
}

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Failed-edge distance from the source.
    pub hops: u32,
    /// Interval width parameter.
    pub c2: f64,
    /// Mean request delay over RTT of the closest affected member.
    pub delay: f64,
    /// Mean number of requests.
    pub requests: f64,
}

/// Run the sweep on the given topology spec with the given density.
pub fn points(opts: &RunOpts, topo: TopoSpec, group_size: Option<usize>, tag: u64) -> Vec<Point> {
    let sims = if opts.quick { 4 } else { 20 };
    let mut inputs = Vec::new();
    for &hops in &HOPS {
        for c2 in c2_values(opts) {
            inputs.push((hops, c2));
        }
    }
    parallel_map(inputs, opts.threads, move |(hops, c2)| {
        let mut delays = Vec::new();
        let mut requests = Vec::new();
        for rep in 0..sims {
            let g = group_size.unwrap_or(match topo {
                TopoSpec::RandomTree { n } | TopoSpec::BoundedTree { n, .. } => n,
                _ => 100,
            });
            let spec = ScenarioSpec {
                topo,
                group_size,
                drop: DropSpec::HopsFromSource(hops),
                cfg: SrmConfig {
                    timers: TimerParams {
                        c1: 2.0,
                        c2,
                        d1: 1.0,
                        d2: (g as f64).sqrt(),
                    },
                    ..SrmConfig::default()
                },
                seed: tag ^ ((hops as u64) << 24) ^ ((c2 as u64) << 8) ^ rep,
                timer_seed: None,
            };
            let mut s = spec.build();
            let r = run_round(&mut s, 100_000.0);
            assert!(r.all_recovered);
            requests.push(r.requests as f64);
            if let Some(d) = r.closest_member_request_delay(&s) {
                delays.push(d);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        Point {
            hops,
            c2,
            delay: mean(&delays),
            requests: mean(&requests),
        }
    })
}

/// Render the sweep as one table per failed-edge distance.
pub fn render(title: &str, pts: &[Point]) -> Vec<Table> {
    HOPS.iter()
        .map(|&h| {
            let mut t = Table::new(
                format!("{title}, failed edge {h} hop(s) from source"),
                &["C2", "delay/RTT", "requests"],
            );
            for p in pts.iter().filter(|p| p.hops == h) {
                t.row(vec![f(p.c2), f(p.delay), f(p.requests)]);
            }
            t
        })
        .collect()
}

/// The figure: dense sessions on a density-1 random tree (top panel) and a
/// half-density bounded-degree tree (bottom panel).
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let n = if opts.quick { 50 } else { 100 };
    let top = points(opts, TopoSpec::RandomTree { n }, None, 0x0700_0000);
    let bn = if opts.quick { 100 } else { 200 };
    let bottom = points(
        opts,
        TopoSpec::BoundedTree { n: bn, degree: 4 },
        Some(bn / 2),
        0x0701_0000,
    );
    let mut out = render("fig7 (top): random tree, density 1", &top);
    out.extend(render(
        "fig7 (bottom): degree-4 tree, density 0.5",
        &bottom,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_trees_do_well_with_small_c2() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let pts = points(&opts, TopoSpec::RandomTree { n: 50 }, None, 0x0700_0000);
        // At small C2 the request count is modest in a dense tree (distance
        // diversity provides deterministic suppression).
        let small: Vec<&Point> = pts.iter().filter(|p| p.c2 <= 1.0).collect();
        let worst = small.iter().map(|p| p.requests).fold(0.0, f64::max);
        assert!(
            worst <= 8.0,
            "dense tree at small C2 should not implode: {worst}"
        );
        // Delay grows with C2 on every line.
        for &h in &HOPS {
            let line: Vec<&Point> = pts.iter().filter(|p| p.hops == h).collect();
            let d0 = line.iter().find(|p| p.c2 == 0.0).unwrap().delay;
            let d100 = line.iter().find(|p| p.c2 == 100.0).unwrap().delay;
            assert!(d100 > d0, "hops={h}: delay rises with C2");
        }
    }
}

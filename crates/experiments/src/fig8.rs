//! Fig 8: the delay-vs-duplicates tradeoff for a *sparse* session in a tree
//! topology — 100 members scattered in a 1000-node degree-4 tree.
//!
//! Paper shape: "The only simulations … that give unacceptably large
//! numbers of requests are those with small values for C2 on stars or for
//! sparse sessions on trees. For these scenarios, increasing C2 reduces the
//! number of duplicate requests, accompanied by moderate increases in the
//! loss recovery delay."

use crate::fig7::{points, render, Point};
use crate::scenario::TopoSpec;
use crate::table::Table;
use crate::RunOpts;

/// Run the sweep.
pub fn sparse_points(opts: &RunOpts) -> Vec<Point> {
    let (n, g) = if opts.quick { (300, 30) } else { (1000, 100) };
    points(
        opts,
        TopoSpec::BoundedTree { n, degree: 4 },
        Some(g),
        0x0800_0000,
    )
}

/// The figure as tables.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    render(
        "fig8: sparse session (G=100 in 1000-node degree-4 tree)",
        &sparse_points(opts),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig7::HOPS;

    #[test]
    fn increasing_c2_cuts_requests_in_sparse_trees() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let pts = sparse_points(&opts);
        for &h in &HOPS {
            let line: Vec<&Point> = pts.iter().filter(|p| p.hops == h).collect();
            let lo = line
                .iter()
                .filter(|p| p.c2 <= 1.0)
                .map(|p| p.requests)
                .fold(0.0, f64::max);
            let hi = line
                .iter()
                .filter(|p| p.c2 >= 40.0)
                .map(|p| p.requests)
                .fold(f64::MAX, f64::min);
            assert!(
                hi <= lo,
                "hops={h}: requests at large C2 ({hi}) <= at small C2 ({lo})"
            );
        }
    }
}

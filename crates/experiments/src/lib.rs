//! # srm-experiments — the figure-regeneration harness
//!
//! One module per reproduced figure of the SRM paper's evaluation
//! (Sections V–VII), plus the analytic validation checks of Section IV.
//! Each module exposes `run(&RunOpts) -> Vec<Table>`; the `srm-experiments`
//! binary prints the tables and writes CSVs.
//!
//! | module | paper figure | claim it reproduces |
//! |--------|--------------|---------------------|
//! | [`fig3`]  | Fig 3  | dense random trees: ~1 request, ~1 repair, delay < 2 RTT |
//! | [`fig4`]  | Fig 4  | sparse sessions: duplicate repairs grow |
//! | [`fig5`]  | Fig 5  | star: delay/duplicates tradeoff + analysis overlay |
//! | [`fig6`]  | Fig 6  | chain: C2 = 0 optimal |
//! | [`fig7`]  | Fig 7  | dense trees: small C2 good on both axes |
//! | [`fig8`]  | Fig 8  | sparse trees: C2 buys fewer requests for more delay |
//! | [`fig12`] | Fig 12/13 | non-adaptive vs adaptive over 100 rounds |
//! | [`fig14`] | Fig 14 | adaptive at round 40 across the Fig 4 sweep |
//! | [`fig15`] | Fig 15 | two-step TTL local recovery coverage (+ mixed-threshold variant) |
//! | [`checks`] | §IV   | chain/star closed forms vs simulation |
//! | [`baseline_compare`] | §II-A / §VI \[29\] | ACK implosion; unicast vs multicast NACK bandwidth |
//! | [`robustness`] | §V-B / §VII-A | topology-variation sweep |
//! | [`faults`] | §I / §III robustness claim | partition/crash/flaky-link recovery |
//! | [`repair_sweep`] | §VI | duplicate repairs vs delay as D2 varies |
//! | [`adaptive_trace`] | §VII-A | timer-parameter trajectories |
//!
//! Besides the figures, the binary exposes two observability subcommands
//! backed by [`trace_cmd`]: `trace` dumps JSONL recovery-episode timelines
//! and `report` prints counter/histogram summaries (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive_trace;
pub mod baseline_compare;
pub mod checks;
pub mod faults;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod monitor_cmd;
pub mod par;
pub mod quartiles;
pub mod repair_sweep;
pub mod robustness;
pub mod round;
pub mod scenario;
pub mod table;
pub mod trace_cmd;

pub use round::{run_round, RoundResult};
pub use scenario::{DropSpec, ScenarioSpec, Session, TopoSpec};
pub use table::Table;

/// Global options for every figure driver.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Reduced sizes/replicates for CI and benches.
    pub quick: bool,
    /// Worker threads for independent simulations.
    pub threads: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            quick: false,
            threads: par::default_threads(),
        }
    }
}

/// Every figure id the harness knows, in presentation order.
pub const FIGURES: &[&str] = &[
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig12", "fig13", "fig14", "fig15",
    "chain-check", "star-check", "baseline-compare", "robustness", "repair-sweep",
    "adaptive-trace", "faults",
];

/// Dispatch a figure by name.
pub fn run_figure(name: &str, opts: &RunOpts) -> Option<Vec<Table>> {
    Some(match name {
        "fig3" => fig3::run(opts),
        "fig4" => fig4::run(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig12" => fig12::run_fig12(opts),
        "fig13" => fig12::run_fig13(opts),
        "fig14" => fig14::run(opts),
        "fig15" => fig15::run(opts),
        "chain-check" => vec![checks::chain_check(opts)],
        "star-check" => vec![checks::star_check(opts)],
        "baseline-compare" => baseline_compare::run(opts),
        "robustness" => robustness::run(opts),
        "repair-sweep" => repair_sweep::run(opts),
        "adaptive-trace" => adaptive_trace::run(opts),
        "faults" => faults::run(opts),
        _ => return None,
    })
}

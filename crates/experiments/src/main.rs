//! CLI: regenerate the SRM paper's figures.
//!
//! ```text
//! srm-experiments all [--quick] [--out results/]
//! srm-experiments fig3 fig5 --quick
//! srm-experiments list
//! ```

use srm_experiments::{run_figure, RunOpts, FIGURES};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOpts::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut figures: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--threads" | "-j" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(opts.threads);
            }
            "--out" | "-o" => {
                out_dir = it.next().map(PathBuf::from);
            }
            "list" => {
                for f in FIGURES {
                    println!("{f}");
                }
                return;
            }
            "all" => figures.extend(FIGURES.iter().map(|s| s.to_string())),
            other if FIGURES.contains(&other) => figures.push(other.to_string()),
            other => {
                eprintln!("unknown figure or flag: {other}");
                eprintln!("usage: srm-experiments <all|list|{}> [--quick] [--threads N] [--out DIR]",
                          FIGURES.join("|"));
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures.extend(FIGURES.iter().map(|s| s.to_string()));
    }
    figures.dedup();

    for fig in &figures {
        let t0 = Instant::now();
        eprintln!("--- running {fig}{} ---", if opts.quick { " (quick)" } else { "" });
        let tables = run_figure(fig, &opts).expect("figure name pre-validated");
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &out_dir {
                let name = if tables.len() == 1 {
                    fig.clone()
                } else {
                    format!("{fig}_{}", (b'a' + i as u8) as char)
                };
                if let Err(e) = t.write_csv(dir, &name) {
                    eprintln!("warning: could not write {name}.csv: {e}");
                }
            }
        }
        eprintln!("--- {fig} done in {:.1}s ---", t0.elapsed().as_secs_f64());
    }
}

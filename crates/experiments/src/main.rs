//! CLI: regenerate the SRM paper's figures, dump recovery-episode traces,
//! and print observability reports.
//!
//! ```text
//! srm-experiments all [--quick] [--out results/]
//! srm-experiments fig3 fig5 --quick
//! srm-experiments list
//! srm-experiments trace --scenario chain-drop [--member N] [--adu ADU]
//!                       [--fault LABEL] [--chains] [--out FILE]
//! srm-experiments report [--scenario NAME]
//! srm-experiments monitor --monitor FILE [--stats FILE]... [--validate]
//! ```

use srm_experiments::monitor_cmd;
use srm_experiments::trace_cmd::{run_traced, TRACE_SCENARIOS};
use srm_experiments::{run_figure, RunOpts, FIGURES};
use std::path::PathBuf;
use std::time::Instant;

/// `trace`: print (or write) a scenario's JSONL timeline, optionally
/// filtered; `--chains` renders reconstructed recovery chains instead.
fn cmd_trace(args: &[String]) -> ! {
    let mut scenario: Option<String> = None;
    let mut member: Option<u64> = None;
    let mut adu: Option<String> = None;
    let mut fault: Option<String> = None;
    let mut chains = false;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" | "-s" => scenario = it.next().cloned(),
            "--member" | "-m" => member = it.next().and_then(|v| v.parse().ok()),
            "--adu" => adu = it.next().cloned(),
            "--fault" => fault = it.next().cloned(),
            "--chains" => chains = true,
            "--out" | "-o" => out = it.next().map(PathBuf::from),
            other => trace_usage(&format!("unknown trace flag: {other}")),
        }
    }
    let Some(name) = scenario else {
        trace_usage("trace requires --scenario");
    };
    let Some(run) = run_traced(&name) else {
        trace_usage(&format!("unknown scenario: {name}"));
    };
    let tl = run.timeline.filter(member, adu.as_deref(), fault.as_deref());
    let text = if chains {
        let mut s = String::new();
        for c in tl.chains() {
            s.push_str(&c.render());
            s.push('\n');
        }
        s
    } else {
        tl.to_jsonl()
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("could not write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {} ({} events)", path.display(), tl.len());
        }
        None => print!("{text}"),
    }
    std::process::exit(0);
}

/// `report`: print counter/histogram summary tables for one scenario (or,
/// with no `--scenario`, all of them).
fn cmd_report(args: &[String]) -> ! {
    let mut scenario: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" | "-s" => scenario = it.next().cloned(),
            other => trace_usage(&format!("unknown report flag: {other}")),
        }
    }
    let names: Vec<&str> = match &scenario {
        Some(n) if TRACE_SCENARIOS.contains(&n.as_str()) => vec![n.as_str()],
        Some(n) => trace_usage(&format!("unknown scenario: {n}")),
        None => TRACE_SCENARIOS.to_vec(),
    };
    for name in names {
        let run = run_traced(name).expect("name pre-validated");
        println!("{}", run.summary.render(name));
    }
    std::process::exit(0);
}

/// `monitor`: validate and aggregate the wall-clock transport's JSONL
/// streams — `srm-node monitor --out` files and `--stats-file` snapshots —
/// into one report.  With `--validate`, any schema violation exits 1 (the
/// CI hook for the snapshot formats).
fn cmd_monitor(args: &[String]) -> ! {
    let mut monitor_path: Option<String> = None;
    let mut stats_paths: Vec<String> = Vec::new();
    let mut validate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--monitor" | "-m" => monitor_path = it.next().cloned(),
            "--stats" => stats_paths.extend(it.next().cloned()),
            "--validate" => validate = true,
            other => monitor_usage(&format!("unknown monitor flag: {other}")),
        }
    }
    if monitor_path.is_none() && stats_paths.is_empty() {
        monitor_usage("monitor needs --monitor FILE and/or --stats FILE");
    }
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read {path}: {e}");
            std::process::exit(1);
        })
    };
    let mut failed = false;
    let monitor = monitor_path.as_deref().map(|p| {
        monitor_cmd::digest_monitor(&read(p)).unwrap_or_else(|e| {
            eprintln!("{p}: {e}");
            std::process::exit(1);
        })
    });
    let mut stats = Vec::new();
    for p in &stats_paths {
        match monitor_cmd::digest_stats(&read(p)) {
            Ok(d) => {
                if validate && !d.non_monotone.is_empty() {
                    eprintln!("{p}: counters regressed: {}", d.non_monotone.join(","));
                    failed = true;
                }
                stats.push((p.clone(), d));
            }
            Err(e) => {
                eprintln!("{p}: {e}");
                std::process::exit(1);
            }
        }
    }
    print!("{}", monitor_cmd::render(monitor.as_ref(), &stats));
    if validate && !failed {
        eprintln!("monitor: all files valid");
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn monitor_usage(err: &str) -> ! {
    eprintln!("{err}");
    eprintln!(
        "usage: srm-experiments monitor --monitor FILE [--stats FILE]... [--validate]"
    );
    std::process::exit(2);
}

fn trace_usage(err: &str) -> ! {
    eprintln!("{err}");
    eprintln!(
        "usage: srm-experiments trace --scenario <{0}> \
         [--member N] [--adu ADU] [--fault LABEL] [--chains] [--out FILE]\n\
         \x20      srm-experiments report [--scenario <{0}>]",
        TRACE_SCENARIOS.join("|")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => cmd_trace(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        _ => {}
    }
    let mut opts = RunOpts::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut figures: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => opts.quick = true,
            "--threads" | "-j" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(opts.threads);
            }
            "--out" | "-o" => {
                out_dir = it.next().map(PathBuf::from);
            }
            "list" => {
                for f in FIGURES {
                    println!("{f}");
                }
                return;
            }
            "all" => figures.extend(FIGURES.iter().map(|s| s.to_string())),
            other if FIGURES.contains(&other) => figures.push(other.to_string()),
            other => {
                eprintln!("unknown figure or flag: {other}");
                eprintln!("usage: srm-experiments <all|list|trace|report|{}> [--quick] [--threads N] [--out DIR]",
                          FIGURES.join("|"));
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures.extend(FIGURES.iter().map(|s| s.to_string()));
    }
    figures.dedup();

    for fig in &figures {
        let t0 = Instant::now();
        eprintln!("--- running {fig}{} ---", if opts.quick { " (quick)" } else { "" });
        let tables = run_figure(fig, &opts).expect("figure name pre-validated");
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &out_dir {
                let name = if tables.len() == 1 {
                    fig.clone()
                } else {
                    format!("{fig}_{}", (b'a' + i as u8) as char)
                };
                if let Err(e) = t.write_csv(dir, &name) {
                    eprintln!("warning: could not write {name}.csv: {e}");
                }
            }
        }
        eprintln!("--- {fig} done in {:.1}s ---", t0.elapsed().as_secs_f64());
    }
}

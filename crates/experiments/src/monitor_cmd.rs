//! `srm-experiments monitor` — aggregate and validate the observability
//! JSONL streams the wall-clock transport emits: `srm-node monitor --out`
//! group-health snapshots and `srm-node --stats-file` metrics snapshots.
//!
//! The two files describe the same run from opposite ends of the wire —
//! the monitor reconstructs group health passively from session messages,
//! the stats file records what a member's own reactor measured — so the
//! aggregator's job is (a) schema validation for CI, and (b) a post-hoc
//! diff: per-member trajectories from the monitor's view next to the
//! sender's own counters.
//!
//! Both formats are versioned (`"v":1`); unknown versions fail validation
//! rather than being misread.

use srm_sim::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A validation failure: which line (1-based) and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number in the offending file.
    pub line: usize,
    /// What was wrong.
    pub why: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.why)
    }
}

fn err(line: usize, why: impl Into<String>) -> SchemaError {
    SchemaError { line, why: why.into() }
}

/// One member's trajectory folded over every monitor snapshot.
#[derive(Debug, Clone, Default)]
pub struct MemberTrajectory {
    /// Last reported liveness state.
    pub last_state: String,
    /// Session messages heard, as of the final snapshot.
    pub sessions: u64,
    /// Frames heard, as of the final snapshot.
    pub frames: u64,
    /// Worst highest-seq lag observed in any snapshot.
    pub peak_lag: u64,
    /// Longest silence observed in any snapshot (seconds).
    pub peak_silence: f64,
    /// Last RTT estimate (seconds), if one was ever reported.
    pub rtt: Option<f64>,
    /// State transitions as `(snapshot seq, new state)`, first snapshot
    /// included.
    pub transitions: Vec<(u64, String)>,
}

/// Everything extracted from one monitor JSONL file.
#[derive(Debug, Clone, Default)]
pub struct MonitorDigest {
    /// Snapshots seen.
    pub snapshots: u64,
    /// Monitor-clock span `(first, last)` of the snapshots.
    pub span: (f64, f64),
    /// Per-member trajectories, in member-id order.
    pub members: BTreeMap<u64, MemberTrajectory>,
}

/// Parse and validate a monitor JSONL stream (`srm-node monitor --out`).
pub fn digest_monitor(text: &str) -> Result<MonitorDigest, SchemaError> {
    let mut digest = MonitorDigest::default();
    let mut last_seq: Option<u64> = None;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| err(ln, format!("unparseable: {e:?}")))?;
        let v = j.get("v").and_then(Json::as_u64);
        if v != Some(1) {
            return Err(err(ln, format!("unsupported snapshot version {v:?}")));
        }
        if j.get("kind").and_then(Json::as_str) != Some("monitor") {
            return Err(err(ln, "kind is not \"monitor\""));
        }
        let seq = j
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| err(ln, "missing seq"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(err(ln, format!("seq {seq} does not advance past {prev}")));
            }
        }
        last_seq = Some(seq);
        let at = j
            .get("at")
            .and_then(Json::as_f64)
            .ok_or_else(|| err(ln, "missing at"))?;
        if digest.snapshots == 0 {
            digest.span.0 = at;
        }
        digest.span.1 = at;
        digest.snapshots += 1;
        let members = j
            .get("members")
            .and_then(Json::as_arr)
            .ok_or_else(|| err(ln, "missing members array"))?;
        for m in members {
            let id = m
                .get("member")
                .and_then(Json::as_u64)
                .ok_or_else(|| err(ln, "member entry without id"))?;
            let state = m
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| err(ln, "member entry without state"))?;
            if !matches!(state, "alive" | "suspect" | "dead") {
                return Err(err(ln, format!("unknown state {state:?}")));
            }
            for key in ["silence", "sessions", "frames", "max_lag", "reported_loss"] {
                if m.get(key).and_then(Json::as_f64).is_none() {
                    return Err(err(ln, format!("member {id} missing {key}")));
                }
            }
            if m.get("lag").and_then(Json::as_arr).is_none() {
                return Err(err(ln, format!("member {id} missing lag array")));
            }
            let t = digest.members.entry(id).or_default();
            if t.transitions.last().map(|(_, s)| s.as_str()) != Some(state) {
                t.transitions.push((seq, state.to_string()));
            }
            t.last_state = state.to_string();
            t.sessions = m.get("sessions").and_then(Json::as_u64).unwrap_or(0);
            t.frames = m.get("frames").and_then(Json::as_u64).unwrap_or(0);
            t.peak_lag = t.peak_lag.max(m.get("max_lag").and_then(Json::as_u64).unwrap_or(0));
            t.peak_silence =
                t.peak_silence.max(m.get("silence").and_then(Json::as_f64).unwrap_or(0.0));
            if let Some(r) = m.get("rtt").and_then(Json::as_f64) {
                t.rtt = Some(r);
            }
        }
    }
    if digest.snapshots == 0 {
        return Err(err(0, "no snapshots in file"));
    }
    Ok(digest)
}

/// Everything extracted from one metrics-snapshot JSONL file
/// (`srm-node --stats-file`).
#[derive(Debug, Clone, Default)]
pub struct StatsDigest {
    /// Snapshots seen.
    pub snapshots: u64,
    /// Node-clock span `(first, last)` of the snapshots.
    pub span: (f64, f64),
    /// Counter values from the first snapshot.
    pub first: BTreeMap<String, u64>,
    /// Counter values from the last snapshot.
    pub last: BTreeMap<String, u64>,
    /// Gauge values from the last snapshot.
    pub gauges: BTreeMap<String, u64>,
    /// Counters that ever decreased between consecutive snapshots (a
    /// restart, or a bug — reported either way).
    pub non_monotone: Vec<String>,
}

impl StatsDigest {
    /// Whole-file delta for a counter (0 if absent).
    pub fn delta(&self, name: &str) -> u64 {
        let first = self.first.get(name).copied().unwrap_or(0);
        let last = self.last.get(name).copied().unwrap_or(0);
        last.saturating_sub(first)
    }

    /// Whole-file rate for a counter, per second of snapshot span.
    pub fn rate(&self, name: &str) -> Option<f64> {
        let dt = self.span.1 - self.span.0;
        (dt > 0.0).then(|| self.delta(name) as f64 / dt)
    }
}

/// Parse and validate a metrics-snapshot JSONL stream.
pub fn digest_stats(text: &str) -> Result<StatsDigest, SchemaError> {
    let mut digest = StatsDigest::default();
    let mut prev: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| err(ln, format!("unparseable: {e:?}")))?;
        let v = j.get("v").and_then(Json::as_u64);
        if v != Some(1) {
            return Err(err(ln, format!("unsupported snapshot version {v:?}")));
        }
        let seq = j
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| err(ln, "missing seq"))?;
        if let Some(p) = last_seq {
            if seq <= p {
                return Err(err(ln, format!("seq {seq} does not advance past {p}")));
            }
        }
        last_seq = Some(seq);
        let at = j
            .get("at")
            .and_then(Json::as_f64)
            .ok_or_else(|| err(ln, "missing at"))?;
        if digest.snapshots == 0 {
            digest.span.0 = at;
        }
        digest.span.1 = at;
        digest.snapshots += 1;
        let counters = j
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or_else(|| err(ln, "missing counters object"))?;
        let mut these = BTreeMap::new();
        for (name, val) in counters {
            let val = val
                .as_u64()
                .ok_or_else(|| err(ln, format!("counter {name} is not a u64")))?;
            if let Some(&p) = prev.get(name) {
                if val < p && !digest.non_monotone.contains(name) {
                    digest.non_monotone.push(name.clone());
                }
            }
            these.insert(name.clone(), val);
        }
        let gauges = j
            .get("gauges")
            .and_then(Json::as_obj)
            .ok_or_else(|| err(ln, "missing gauges object"))?;
        for (name, val) in gauges {
            let val = val
                .as_u64()
                .ok_or_else(|| err(ln, format!("gauge {name} is not a u64")))?;
            digest.gauges.insert(name.clone(), val);
        }
        let hists = j
            .get("hists")
            .and_then(Json::as_obj)
            .ok_or_else(|| err(ln, "missing hists object"))?;
        for (name, h) in hists {
            for key in ["count", "buckets"] {
                if h.get(key).is_none() {
                    return Err(err(ln, format!("hist {name} missing {key}")));
                }
            }
        }
        if digest.first.is_empty() {
            digest.first = these.clone();
        }
        prev = these.clone();
        digest.last = these;
    }
    if digest.snapshots == 0 {
        return Err(err(0, "no snapshots in file"));
    }
    Ok(digest)
}

/// Render the combined report: monitor trajectories, then each stats
/// file's headline counters, then the cross-view diff when both exist.
pub fn render(monitor: Option<&MonitorDigest>, stats: &[(String, StatsDigest)]) -> String {
    let mut out = String::new();
    if let Some(d) = monitor {
        let _ = writeln!(
            out,
            "# monitor: {} snapshot(s) over {:.1}s, {} member(s)",
            d.snapshots,
            d.span.1 - d.span.0,
            d.members.len()
        );
        let _ = writeln!(
            out,
            "{:>7}  {:>8}  {:>8}  {:>7}  {:>9}  {:>8}  transitions",
            "member", "state", "sessions", "peaklag", "silence_s", "rtt_ms"
        );
        for (id, t) in &d.members {
            let rtt = t
                .rtt
                .map(|r| format!("{:.2}", r * 1e3))
                .unwrap_or_else(|| "-".to_string());
            let transitions: Vec<String> =
                t.transitions.iter().map(|(s, st)| format!("{st}@{s}")).collect();
            let _ = writeln!(
                out,
                "{:>7}  {:>8}  {:>8}  {:>7}  {:>9.2}  {:>8}  {}",
                format!("m{id}"),
                t.last_state,
                t.sessions,
                t.peak_lag,
                t.peak_silence,
                rtt,
                transitions.join(" -> "),
            );
        }
    }
    for (name, d) in stats {
        let _ = writeln!(
            out,
            "# stats {name}: {} snapshot(s) over {:.1}s{}",
            d.snapshots,
            d.span.1 - d.span.0,
            if d.non_monotone.is_empty() {
                String::new()
            } else {
                format!(" (non-monotone: {})", d.non_monotone.join(","))
            }
        );
        for c in ["frames.sent", "frames.received", "tx.frames.session", "rx.frames.session"] {
            let rate = d
                .rate(c)
                .map(|r| format!(" ({r:.2}/s)"))
                .unwrap_or_default();
            let _ = writeln!(out, "  {c}: {}{rate}", d.delta(c));
        }
        for g in ["wheel.high_water", "delayq.high_water"] {
            if let Some(v) = d.gauges.get(g) {
                let _ = writeln!(out, "  {g}: {v}");
            }
        }
    }
    // The cross-view diff: sessions the members put on the wire versus
    // sessions the monitor heard.  On a healthy loopback group these agree
    // closely; the gap is the monitor's own loss.
    if let (Some(m), false) = (monitor, stats.is_empty()) {
        let sent: u64 = stats.iter().map(|(_, d)| d.delta("tx.frames.session")).sum();
        let heard: u64 = m.members.values().map(|t| t.sessions).sum();
        if sent > 0 {
            let _ = writeln!(
                out,
                "# cross-view: {heard} session(s) heard by monitor, {sent} sent by {} instrumented node(s)",
                stats.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MON: &str = "\
{\"v\":1,\"kind\":\"monitor\",\"seq\":0,\"at\":1.0,\"group_size\":2,\"members\":[{\"member\":1,\"state\":\"alive\",\"silence\":0.1,\"sessions\":2,\"frames\":3,\"max_lag\":1,\"reported_loss\":0.0,\"rtt\":0.004,\"lag\":[{\"page\":\"1.0\",\"source\":1,\"lag\":1}]},{\"member\":2,\"state\":\"alive\",\"silence\":0.2,\"sessions\":1,\"frames\":1,\"max_lag\":0,\"reported_loss\":0.0,\"lag\":[]}]}
{\"v\":1,\"kind\":\"monitor\",\"seq\":1,\"at\":2.0,\"group_size\":2,\"members\":[{\"member\":1,\"state\":\"alive\",\"silence\":0.3,\"sessions\":3,\"frames\":5,\"max_lag\":0,\"reported_loss\":0.0,\"rtt\":0.005,\"lag\":[]},{\"member\":2,\"state\":\"suspect\",\"silence\":3.1,\"sessions\":1,\"frames\":1,\"max_lag\":0,\"reported_loss\":0.0,\"lag\":[]}]}
";

    const STATS: &str = "\
{\"v\":1,\"seq\":0,\"at\":1.0,\"counters\":{\"frames.sent\":4,\"tx.frames.session\":2},\"gauges\":{\"wheel.high_water\":3},\"hists\":{\"stage.send_s\":{\"count\":4,\"zeros\":0,\"sum\":0.001,\"min\":0.0001,\"max\":0.0005,\"buckets\":[[-50,4]]}}}
{\"v\":1,\"seq\":2,\"at\":3.0,\"counters\":{\"frames.sent\":10,\"tx.frames.session\":4},\"gauges\":{\"wheel.high_water\":5},\"hists\":{\"stage.send_s\":{\"count\":10,\"zeros\":0,\"sum\":0.002,\"min\":0.0001,\"max\":0.0005,\"buckets\":[[-50,10]]}}}
";

    #[test]
    fn monitor_digest_tracks_trajectories() {
        let d = digest_monitor(MON).expect("valid");
        assert_eq!(d.snapshots, 2);
        assert_eq!(d.span, (1.0, 2.0));
        let m1 = &d.members[&1];
        assert_eq!(m1.last_state, "alive");
        assert_eq!(m1.sessions, 3);
        assert_eq!(m1.peak_lag, 1, "peak lag survives later improvement");
        assert_eq!(m1.rtt, Some(0.005), "latest rtt wins");
        assert_eq!(m1.transitions, vec![(0, "alive".to_string())]);
        let m2 = &d.members[&2];
        assert_eq!(
            m2.transitions,
            vec![(0, "alive".to_string()), (1, "suspect".to_string())]
        );
    }

    #[test]
    fn stats_digest_deltas_and_rates() {
        let d = digest_stats(STATS).expect("valid");
        assert_eq!(d.snapshots, 2);
        assert_eq!(d.delta("frames.sent"), 6);
        assert_eq!(d.delta("tx.frames.session"), 2);
        assert!((d.rate("frames.sent").unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(d.gauges["wheel.high_water"], 5);
        assert!(d.non_monotone.is_empty());
    }

    #[test]
    fn schema_violations_are_rejected_with_line_numbers() {
        let bad_version = MON.replace("\"v\":1", "\"v\":9");
        assert_eq!(digest_monitor(&bad_version).unwrap_err().line, 1);

        let mut lines: Vec<&str> = MON.lines().collect();
        let swapped = format!("{}\n{}\n", lines[1], lines[0]);
        let e = digest_monitor(&swapped).unwrap_err();
        assert_eq!(e.line, 2, "seq regression pinned to its line");
        assert!(e.why.contains("does not advance"));

        lines[1] = "{\"v\":1,\"kind\":\"monitor\",\"seq\":1,\"at\":2.0,\"group_size\":0}";
        let missing = format!("{}\n{}\n", lines[0], lines[1]);
        assert!(digest_monitor(&missing).unwrap_err().why.contains("members"));

        assert!(digest_monitor("").is_err(), "empty file is not a valid stream");
        assert!(digest_stats("not json\n").is_err());

        let bad_state = MON.replace("\"state\":\"suspect\"", "\"state\":\"zombie\"");
        assert!(digest_monitor(&bad_state).unwrap_err().why.contains("zombie"));
    }

    #[test]
    fn stats_non_monotone_counters_are_flagged_not_fatal() {
        let regressed = STATS.replace("\"frames.sent\":10", "\"frames.sent\":1");
        let d = digest_stats(&regressed).expect("still parses");
        assert_eq!(d.non_monotone, vec!["frames.sent".to_string()]);
        assert_eq!(d.delta("frames.sent"), 0, "saturating delta");
    }

    #[test]
    fn render_combines_both_views() {
        let mon = digest_monitor(MON).unwrap();
        let stats = vec![("node1".to_string(), digest_stats(STATS).unwrap())];
        let text = render(Some(&mon), &stats);
        assert!(text.contains("m1"), "{text}");
        assert!(text.contains("suspect@1"), "{text}");
        assert!(text.contains("tx.frames.session: 2"), "{text}");
        assert!(text.contains("cross-view"), "{text}");
    }
}

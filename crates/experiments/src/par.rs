//! Parallel execution of independent simulations.
//!
//! Each simulation is single-threaded and not `Send` (it holds `Rc`-cached
//! routing trees), so parallelism works at the granularity of whole runs:
//! every worker thread *constructs* its own sessions from a `Send` input.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `inputs` on up to `threads` worker threads, preserving
/// input order in the output.
pub fn parallel_map<I, T, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return inputs.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let input = inputs[i].lock().unwrap().take().expect("claimed once");
                let out = f(input);
                *outputs[i].lock().unwrap() = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// A sensible default worker count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |x: i32| x);
        assert_eq!(out, vec![5]);
    }
}

//! Parallel execution of independent simulations.
//!
//! Each simulation is single-threaded and not `Send` (it holds `Rc`-cached
//! routing trees), so parallelism works at the granularity of whole runs:
//! every worker thread *constructs* its own sessions from a `Send` input.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `inputs` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// A panic inside `f` (e.g. an assertion in a figure closure) is caught in
/// the worker and re-raised **once, on the calling thread, with the original
/// payload** after all workers drain. Without this, the panicking worker
/// would poison the slot mutexes and every sibling thread — plus the parent
/// — would die with opaque `PoisonError` unwinds that bury the real failure
/// (the "harness poisoning" failure mode).
pub fn parallel_map<I, T, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return inputs.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Tolerate poison when claiming work: another worker
                // panicking while holding an unrelated slot must not
                // cascade. `take()` is still claim-once via the shared
                // `next` counter.
                let input = inputs[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("claimed once");
                match catch_unwind(AssertUnwindSafe(|| f(input))) {
                    Ok(out) => {
                        *outputs[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                    Err(payload) => {
                        let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                        // First panic wins; later ones are dropped.
                        slot.get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled every slot")
        })
        .collect()
}

/// A sensible default worker count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |x: i32| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn worker_panic_reaches_parent_with_original_message() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..50).collect(), 8, |x: i32| {
                assert!(x != 23, "item {x} exploded");
                x
            })
        }))
        .expect_err("the worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("item 23 exploded"),
            "original panic message survives, got: {msg}"
        );
    }

    #[test]
    fn panic_does_not_poison_siblings() {
        // All non-panicking items still complete even when one worker dies
        // mid-sweep; the parent then re-panics. If poisoning cascaded, the
        // sibling workers would abort early with PoisonError instead.
        let done = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..40).collect(), 4, |x: i32| {
                if x == 0 {
                    panic!("first item dies");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(r.is_err());
        assert!(
            done.load(Ordering::Relaxed) >= 30,
            "siblings kept draining the queue"
        );
    }
}

//! Median / quartile summaries. The paper's scatter plots draw "the median
//! from the twenty simulations … the two dotted lines mark the upper and
//! lower quartiles".
//!
//! The implementation lives in [`obs::stats`] so that the figure harness and
//! the observability `report` CLI share one set of exact sample statistics;
//! this module re-exports it under the historical name.  The algorithm is
//! unchanged, so every figure CSV stays byte-identical.

pub use obs::stats::{summarize, Summary};

#[cfg(test)]
mod tests {
    use super::*;

    // The delegation must preserve the exact interpolation the figures were
    // generated with; spot-check it here (the full suite lives in `obs`).
    #[test]
    fn delegated_summarize_is_linear_interpolated() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
        assert!(summarize(&[]).is_none());
    }
}

//! The repair-side counterpart of Section VI's parameter exploration:
//! "Similar remarks apply to the functions of D1 and D2 in the repair
//! timer algorithm."
//!
//! Fixing the request parameters, we sweep the repair interval width `D2`
//! on a sparse tree scenario where several members hold the data near the
//! congested link (the duplicate-repair regime of Fig 4) and measure the
//! number of repairs and the repair delay — the same tradeoff the request
//! sweep shows, on the other timer.

use crate::par::parallel_map;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::{SrmConfig, TimerParams};

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Repair interval width.
    pub d2: f64,
    /// Mean repairs per loss.
    pub repairs: f64,
    /// Mean last-member recovery delay over RTT (includes the repair wait).
    pub delay: f64,
}

/// The D2 sweep values.
pub fn d2_values(opts: &RunOpts) -> Vec<f64> {
    if opts.quick {
        vec![0.0, 2.0, 10.0, 40.0]
    } else {
        vec![0.0, 1.0, 2.0, 4.0, 7.0, 10.0, 15.0, 20.0, 40.0, 70.0, 100.0]
    }
}

/// Run the sweep.
pub fn points(opts: &RunOpts) -> Vec<Point> {
    let sims = if opts.quick { 5 } else { 20 };
    let (n, g) = if opts.quick { (300, 30) } else { (1000, 100) };
    parallel_map(d2_values(opts), opts.threads, move |d2| {
        let mut repairs = 0.0;
        let mut delays = Vec::new();
        for rep in 0..sims {
            let spec = ScenarioSpec {
                topo: TopoSpec::BoundedTree { n, degree: 4 },
                group_size: Some(g),
                drop: DropSpec::RandomTreeLink,
                cfg: SrmConfig {
                    timers: TimerParams {
                        c1: 2.0,
                        c2: (g as f64).sqrt(),
                        d1: 1.0,
                        d2,
                    },
                    ..SrmConfig::default()
                },
                seed: 0x0d20_0000 ^ ((d2 as u64) << 8) ^ rep,
                timer_seed: None,
            };
            let mut s = spec.build();
            let r = run_round(&mut s, 200_000.0);
            assert!(r.all_recovered);
            repairs += r.repairs as f64;
            if let Some(d) = r.last_member_delay_over_rtt(&s) {
                delays.push(d);
            }
        }
        Point {
            d2,
            repairs: repairs / sims as f64,
            delay: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
        }
    })
}

/// The table.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut t = Table::new(
        "repair-sweep: duplicate repairs vs delay as D2 varies (sparse tree, D1=1)",
        &["D2", "repairs", "last_delay/RTT"],
    );
    for p in points(opts) {
        t.row(vec![f(p.d2), f(p.repairs), f(p.delay)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_repair_interval_cuts_duplicate_repairs() {
        let opts = RunOpts {
            quick: true,
            threads: 4,
        };
        let pts = points(&opts);
        let narrow = pts.iter().find(|p| p.d2 == 0.0).unwrap();
        let wide = pts.iter().find(|p| p.d2 == 40.0).unwrap();
        assert!(
            wide.repairs < narrow.repairs,
            "suppression works on the repair side too: {} -> {}",
            narrow.repairs,
            wide.repairs
        );
        assert!(
            wide.delay > narrow.delay,
            "and costs delay: {} -> {}",
            narrow.delay,
            wide.delay
        );
    }
}

//! Robustness sweep over the topology variations of Sections V-B and
//! VII-A: "These include topologies where each of the nodes in the
//! underlying network is a router with an adjacent Ethernet with 5
//! workstations, point-to-point topologies where the edges have a range of
//! propagation delays, and topologies where the underlying network is more
//! dense than a tree. None of these variations that we have explored have
//! significantly affected the performance of the loss recovery algorithms"
//! — plus the §VII-A list: 5000-node trees, degree-10 trees, and 1000-node
//! 1500-edge graphs.
//!
//! Expected shape: requests stay ~1 and repairs stay in the same small
//! band across every variation.

use crate::par::parallel_map;
use crate::quartiles::summarize;
use crate::round::run_round;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use crate::table::{f, Table};
use crate::RunOpts;
use srm::SrmConfig;

/// The variations (label, topology).
pub fn variants(opts: &RunOpts) -> Vec<(&'static str, TopoSpec)> {
    if opts.quick {
        vec![
            ("tree-500-deg4", TopoSpec::BoundedTree { n: 500, degree: 4 }),
            ("graph-300-450e", TopoSpec::RandomGraph { n: 300, m: 450 }),
            (
                "ethernets-60x5",
                TopoSpec::EthernetClusters {
                    routers: 60,
                    hosts: 5,
                },
            ),
            ("delay-tree-300", TopoSpec::RandomDelayTree { n: 300 }),
        ]
    } else {
        vec![
            ("tree-1000-deg4", TopoSpec::BoundedTree { n: 1000, degree: 4 }),
            ("tree-5000-deg4", TopoSpec::BoundedTree { n: 5000, degree: 4 }),
            (
                "tree-1000-deg10",
                TopoSpec::BoundedTree {
                    n: 1000,
                    degree: 10,
                },
            ),
            ("graph-1000-1500e", TopoSpec::RandomGraph { n: 1000, m: 1500 }),
            (
                "ethernets-200x5",
                TopoSpec::EthernetClusters {
                    routers: 200,
                    hosts: 5,
                },
            ),
            ("delay-tree-1000", TopoSpec::RandomDelayTree { n: 1000 }),
        ]
    }
}

/// Run the sweep: adaptive timers, G = 50 members, random congested link,
/// measured at round 10 (post-convergence snapshot keeps the table small).
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let sims = if opts.quick { 4 } else { 15 };
    let rounds = if opts.quick { 5 } else { 10 };
    let g = 50usize;
    let inputs: Vec<(&'static str, TopoSpec, u64)> = variants(opts)
        .into_iter()
        .flat_map(|(label, topo)| (0..sims).map(move |rep| (label, topo, rep)))
        .collect();
    // A round that fails to recover becomes a failure row, not a panic: an
    // assert here would kill a worker thread and poison the whole sweep
    // (the other topologies' results would be lost with it).
    let results = parallel_map(inputs, opts.threads, move |(label, topo, rep)| {
        let spec = ScenarioSpec {
            topo,
            group_size: Some(g),
            drop: DropSpec::RandomTreeLink,
            cfg: SrmConfig::adaptive(g),
            seed: 0x0b00_0000 ^ ((rep + 1) << 4),
            timer_seed: Some(rep * 31 + 7),
        };
        let mut s = spec.build();
        let mut last = (0u64, 0u64, 0.0f64);
        for round in 0..rounds {
            let r = run_round(&mut s, 1_000_000.0);
            if !r.all_recovered {
                return (label, Err(format!("round {round} did not recover")));
            }
            last = (
                r.requests,
                r.repairs,
                r.last_member_delay_over_rtt(&s).unwrap_or(0.0),
            );
        }
        (label, Ok(last))
    });

    let mut t = Table::new(
        format!("robustness: adaptive SRM, G={g}, round-{rounds} snapshot across topology variations"),
        &[
            "topology",
            "requests_med",
            "requests_max",
            "repairs_med",
            "repairs_max",
            "delay/RTT_med",
            "failures",
        ],
    );
    for (label, _) in variants(opts) {
        let sel: Vec<&Result<(u64, u64, f64), String>> = results
            .iter()
            .filter(|(l, _)| *l == label)
            .map(|(_, v)| v)
            .collect();
        let failures = sel.iter().filter(|r| r.is_err()).count();
        let ok: Vec<&(u64, u64, f64)> = sel.iter().filter_map(|r| r.as_ref().ok()).collect();
        let req: Vec<f64> = ok.iter().map(|v| v.0 as f64).collect();
        let rep: Vec<f64> = ok.iter().map(|v| v.1 as f64).collect();
        let del: Vec<f64> = ok.iter().map(|v| v.2).collect();
        match (summarize(&req), summarize(&rep), summarize(&del)) {
            (Some(sq), Some(sp), Some(sd)) => t.row(vec![
                label.to_string(),
                f(sq.median),
                f(sq.max),
                f(sp.median),
                f(sp.max),
                f(sd.median),
                failures.to_string(),
            ]),
            _ => t.row(vec![
                label.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                failures.to_string(),
            ]),
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_variation_breaks_the_algorithms() {
        let opts = RunOpts {
            quick: true,
            threads: 8,
        };
        let tables = run(&opts);
        assert_eq!(tables[0].rows.len(), variants(&opts).len());
        for row in &tables[0].rows {
            let failures: usize = row[6].parse().unwrap();
            assert_eq!(failures, 0, "{}: every round recovers", row[0]);
            let med_req: f64 = row[1].parse().unwrap();
            let med_rep: f64 = row[3].parse().unwrap();
            assert!(
                med_req <= 4.0,
                "{}: median requests {med_req} stays small",
                row[0]
            );
            assert!(
                med_rep <= 5.0,
                "{}: median repairs {med_rep} stays small",
                row[0]
            );
        }
    }
}

//! One loss-recovery round, Section V style: "a packet from the source is
//! dropped on the congested link, a second packet from the source is not
//! dropped, and the loss recovery algorithms are run until all members have
//! received the dropped packet."

use crate::scenario::Session;
use netsim::NodeId;

/// Everything measured in one round.
#[derive(Clone, Debug)]
pub struct RoundResult {
    /// Total requests multicast by all members.
    pub requests: u64,
    /// Total repairs multicast by all members (including two-step relays).
    pub repairs: u64,
    /// Per affected member: (node, recovery delay / that member's RTT to
    /// the source).
    pub recovery_over_rtt: Vec<(NodeId, f64)>,
    /// Per affected member: (node, request delay / RTT to source) — the
    /// Section VI metric; `None`-delay members (recovered before any
    /// request fired, possible with reordering) are omitted.
    pub request_delay_over_rtt: Vec<(NodeId, f64)>,
    /// Members that detected the loss this round.
    pub affected: usize,
    /// Whether every affected member recovered.
    pub all_recovered: bool,
}

impl RoundResult {
    /// The figure-3 delay metric: the delay/RTT of the member that took
    /// longest *in absolute time* to recover ("the loss recovery delay for
    /// the last member of the multicast session to receive the repair …
    /// given as a multiple of the RTT from that member to the original
    /// source").
    pub fn last_member_delay_over_rtt(&self, session: &Session) -> Option<f64> {
        // Reconstruct absolute delays: delay_over_rtt × rtt.
        self.recovery_over_rtt
            .iter()
            .map(|&(n, r)| (r * session.rtt_to_source(n), r))
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .map(|(_, r)| r)
    }

    /// The figure-5–8 delay metric: the request delay (over RTT) of the
    /// affected member closest to the source; among members at the minimum
    /// distance, the smallest delay.
    pub fn closest_member_request_delay(&self, session: &Session) -> Option<f64> {
        let min_dist = self
            .request_delay_over_rtt
            .iter()
            .map(|&(n, _)| session.dist_from_source[n.index()])
            .fold(f64::MAX, f64::min);
        let best = self
            .request_delay_over_rtt
            .iter()
            .filter(|&&(n, _)| session.dist_from_source[n.index()] <= min_dist + 1e-9)
            .map(|&(_, d)| d)
            .fold(f64::MAX, f64::min);
        (best < f64::MAX).then_some(best)
    }
}

/// Run one round on `session`: arm the drop, send the doomed packet and the
/// revealing follow-up, run to quiescence, and harvest per-member metrics.
///
/// `settle_limit` bounds the round in simulated seconds.
pub fn run_round(session: &mut Session, settle_limit: f64) -> RoundResult {
    // Snapshot counters.
    let before: Vec<(NodeId, u64, u64)> = session
        .members
        .iter()
        .map(|&m| {
            let a = session.sim.app(m).unwrap();
            (m, a.metrics.requests_sent, a.metrics.repairs_sent)
        })
        .collect();

    session.rearm_drop();
    session.source_sends(); // dropped on the congested link
    session.advance(0.01);
    session.source_sends(); // exposes the gap downstream
    session.settle(settle_limit);
    session.bump_rounds();

    let mut requests = 0;
    let mut repairs = 0;
    let mut recovery_over_rtt = Vec::new();
    let mut request_delay_over_rtt = Vec::new();
    let mut affected = 0;
    let mut all_recovered = true;
    for (m, req0, rep0) in before {
        let a = session.sim.app_mut(m).unwrap();
        requests += a.metrics.requests_sent - req0;
        repairs += a.metrics.repairs_sent - rep0;
        for rec in a.metrics.recoveries.values() {
            affected += 1;
            if let Some(r) = rec.recovery_delay_over_rtt() {
                recovery_over_rtt.push((m, r));
            } else {
                all_recovered = false;
            }
            if let Some(r) = rec.request_delay_over_rtt() {
                request_delay_over_rtt.push((m, r));
            }
        }
        a.metrics.clear_episodes();
    }
    session.drain_deliveries();

    RoundResult {
        requests,
        repairs,
        recovery_over_rtt,
        request_delay_over_rtt,
        affected,
        all_recovered,
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
    use srm::SrmConfig;

    #[test]
    fn chain_round_recovers_everyone() {
        let mut s = ScenarioSpec {
            topo: TopoSpec::Chain { n: 8 },
            group_size: None,
            drop: DropSpec::RandomTreeLink,
            cfg: SrmConfig::fixed(8),
            seed: 11,
            timer_seed: None,
        }
        .build();
        let r = super::run_round(&mut s, 10_000.0);
        assert!(r.all_recovered);
        assert!(r.affected >= 1);
        assert!(r.requests >= 1);
        assert!(r.repairs >= 1);
        assert_eq!(r.recovery_over_rtt.len(), r.affected);
    }

    #[test]
    fn consecutive_rounds_are_independent() {
        let mut s = ScenarioSpec {
            topo: TopoSpec::Star { leaves: 10 },
            group_size: None,
            drop: DropSpec::AdjacentToSource,
            cfg: SrmConfig::fixed(10),
            seed: 2,
            timer_seed: None,
        }
        .build();
        let r1 = super::run_round(&mut s, 10_000.0);
        let r2 = super::run_round(&mut s, 10_000.0);
        assert!(r1.all_recovered && r2.all_recovered);
        // The second round affects the same downstream set.
        assert_eq!(r1.affected, r2.affected);
        assert_eq!(s.rounds_run(), 2);
    }

    #[test]
    fn star_metrics_have_closest_member() {
        let mut s = ScenarioSpec {
            topo: TopoSpec::Star { leaves: 12 },
            group_size: None,
            drop: DropSpec::AdjacentToSource,
            cfg: SrmConfig::fixed(12),
            seed: 4,
            timer_seed: None,
        }
        .build();
        let r = super::run_round(&mut s, 10_000.0);
        assert!(r.closest_member_request_delay(&s).is_some());
        assert!(r.last_member_delay_over_rtt(&s).is_some());
        // In a star with the drop at the source's access link, every other
        // member is affected.
        assert_eq!(r.affected, 11);
    }
}

//! Scenario construction: topology + membership + source + congested link,
//! exactly as Section V describes: "Each simulation constructs either a
//! random tree or a bounded degree tree … N of the nodes are randomly
//! chosen to be session members … a source is randomly chosen from the
//! session members … In each simulation we randomly choose a link on the
//! shortest-path tree from source to the members of the multicast group."

use netsim::generators;
use netsim::loss::OneShotLinkDrop;
use netsim::routing::SpTree;
use netsim::{flow, GroupId, LinkId, NodeId, SimDuration, SimTime, Simulator, Topology};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use srm::{PageId, SourceId, SrmAgent, SrmConfig};

/// The multicast group used by all experiments.
pub const GROUP: GroupId = GroupId(1);

/// Which topology family to construct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoSpec {
    /// A chain of `n` nodes (Fig 1).
    Chain {
        /// Node count.
        n: usize,
    },
    /// A star with `leaves` members and a non-member hub (Fig 2).
    Star {
        /// Leaf count.
        leaves: usize,
    },
    /// A balanced bounded-degree tree (Section V-B).
    BoundedTree {
        /// Node count.
        n: usize,
        /// Interior degree.
        degree: usize,
    },
    /// A uniformly random labeled tree (Section V-A).
    RandomTree {
        /// Node count.
        n: usize,
    },
    /// A connected random graph (Section VII-A).
    RandomGraph {
        /// Node count.
        n: usize,
        /// Edge count.
        m: usize,
    },
    /// Routers with attached 5-workstation Ethernets (Section V-B).
    EthernetClusters {
        /// Backbone router count.
        routers: usize,
        /// Hosts per router.
        hosts: usize,
    },
    /// A random tree with heterogeneous link delays (Section V-B).
    RandomDelayTree {
        /// Node count.
        n: usize,
    },
}

impl TopoSpec {
    /// Build the topology (random families use `rng`).
    pub fn build(self, rng: &mut StdRng) -> Topology {
        match self {
            TopoSpec::Chain { n } => generators::chain(n),
            TopoSpec::Star { leaves } => generators::star(leaves),
            TopoSpec::BoundedTree { n, degree } => generators::bounded_degree_tree(n, degree),
            TopoSpec::RandomTree { n } => generators::random_labeled_tree(n, rng),
            TopoSpec::RandomGraph { n, m } => generators::random_connected_graph(n, m, rng),
            TopoSpec::EthernetClusters { routers, hosts } => {
                generators::router_ethernet_clusters(
                    routers,
                    hosts,
                    SimDuration::from_millis(10),
                    rng,
                )
            }
            TopoSpec::RandomDelayTree { n } => generators::random_delay_tree(
                n,
                SimDuration::from_millis(100),
                SimDuration::from_secs(2),
                rng,
            ),
        }
    }
}

/// Where the per-round packet drop happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropSpec {
    /// A random link of the source's (pruned) shortest-path tree.
    RandomTreeLink,
    /// The link adjacent to the source on its tree.
    AdjacentToSource,
    /// A tree link whose upstream end is exactly `hops` from the source,
    /// chosen at random among candidates with members downstream.
    HopsFromSource(u32),
}

/// A fully instantiated session over a simulator, ready to run
/// loss-recovery rounds.
pub struct Session {
    /// The simulator with installed [`SrmAgent`]s.
    pub sim: Simulator<SrmAgent>,
    /// Session members, ascending.
    pub members: Vec<NodeId>,
    /// The data source for the rounds.
    pub source: NodeId,
    /// The congested link.
    pub congested_link: LinkId,
    /// Members whose path from the source crosses the congested link.
    pub downstream_members: Vec<NodeId>,
    /// True one-way distance (seconds) from the source to each node.
    pub dist_from_source: Vec<f64>,
    page: PageId,
    rounds_run: u64,
}

/// Everything needed to build a [`Session`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Topology family.
    pub topo: TopoSpec,
    /// Number of session members (`None` = all nodes; for stars, all
    /// leaves).
    pub group_size: Option<usize>,
    /// Drop placement.
    pub drop: DropSpec,
    /// SRM configuration for every member.
    pub cfg: SrmConfig,
    /// Master seed: controls topology, membership, source, and link choice.
    pub seed: u64,
    /// Separate seed for the protocol's random timers; `None` derives one
    /// from `seed`. Figs 12/13 run the *same* scenario with fresh timer
    /// seeds per run ("each run uses a new seed for the pseudo-random
    /// number generator to control the timer choices").
    pub timer_seed: Option<u64>,
}

impl ScenarioSpec {
    /// Instantiate the scenario. Distances between members are pre-warmed
    /// to the exact topology values (the paper's simulations assume
    /// converged session-message estimates), and periodic session messages
    /// are disabled so rounds measure only recovery traffic.
    pub fn build(&self) -> Session {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let topo = self.topo.build(&mut rng);

        // Membership.
        let members: Vec<NodeId> = match (self.topo, self.group_size) {
            (TopoSpec::Star { leaves }, None) => (1..=leaves as u32).map(NodeId).collect(),
            (TopoSpec::Star { leaves }, Some(g)) => {
                assert!(g <= leaves);
                (1..=g as u32).map(NodeId).collect()
            }
            (_, None) => topo.nodes().collect(),
            (_, Some(g)) => generators::random_members(&topo, g, &mut rng),
        };
        // Source: random member.
        let source = *members.choose(&mut rng).expect("nonempty membership");

        // Congested link on the source's tree toward the members.
        let spt = SpTree::compute(&topo, source);
        let candidates: Vec<LinkId> = candidate_links(&topo, &spt, &members, self.drop, source);
        assert!(
            !candidates.is_empty(),
            "no drop candidates for {:?}",
            self.drop
        );
        let congested_link = *candidates.choose(&mut rng).expect("candidates nonempty");
        let downstream = spt.downstream_of(congested_link);
        let downstream_members: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|m| downstream.contains(m))
            .collect();

        // Exact pairwise member distances (assumed-converged estimates).
        let sim_seed = self.timer_seed.unwrap_or_else(|| rng.random());
        let mut sim = Simulator::new(topo, sim_seed);
        let page = PageId::new(SourceId(source.0 as u64), 0);
        let trees: Vec<(NodeId, SpTree)> = members
            .iter()
            .map(|&m| (m, SpTree::compute(sim.topology(), m)))
            .collect();
        for &m in &members {
            let mut agent = SrmAgent::new(SourceId(m.0 as u64), GROUP, self.cfg.clone());
            agent.session_enabled = false;
            agent.set_current_page(page);
            for (other, tree) in &trees {
                if *other != m {
                    agent
                        .distances_mut()
                        .set_distance(SourceId(other.0 as u64), tree.distance(m));
                }
            }
            sim.install(m, agent);
            sim.join(m, GROUP);
        }
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(
            congested_link,
            source,
            flow::DATA,
        )));

        let dist_from_source = sim
            .topology()
            .nodes()
            .map(|n| spt.distance(n).as_secs_f64())
            .collect();

        Session {
            sim,
            members,
            source,
            congested_link,
            downstream_members,
            dist_from_source,
            page,
            rounds_run: 0,
        }
    }
}

/// Links eligible to be "the congested link" under a [`DropSpec`]: links of
/// the source's SPT with at least one member downstream.
fn candidate_links(
    topo: &Topology,
    spt: &SpTree,
    members: &[NodeId],
    drop: DropSpec,
    source: NodeId,
) -> Vec<LinkId> {
    // Links on the tree path from the source to some member.
    let mut on_tree: Vec<LinkId> = Vec::new();
    for &m in members {
        for l in spt.path_links(m) {
            if !on_tree.contains(&l) {
                on_tree.push(l);
            }
        }
    }
    on_tree.sort_unstable();
    match drop {
        DropSpec::RandomTreeLink => on_tree,
        DropSpec::AdjacentToSource => on_tree
            .into_iter()
            .filter(|&l| {
                let link = topo.link(l);
                link.a == source || link.b == source
            })
            .collect(),
        DropSpec::HopsFromSource(h) => {
            let at_depth: Vec<LinkId> = on_tree
                .iter()
                .copied()
                .filter(|&l| {
                    let link = topo.link(l);
                    // The downstream end of a tree link is the endpoint
                    // whose parent link is l.
                    let down = if spt.parent(link.a).map(|(_, pl)| pl) == Some(l) {
                        link.a
                    } else {
                        link.b
                    };
                    // "failed edge k hops from the source" = the k-th link
                    // on the path, i.e. its downstream end sits at hop k.
                    spt.hop_count(down) == h
                })
                .collect();
            if at_depth.is_empty() {
                // Fall back to the deepest available depth.
                let max_h = on_tree
                    .iter()
                    .map(|&l| {
                        let link = topo.link(l);
                        spt.hop_count(link.a).max(spt.hop_count(link.b))
                    })
                    .max()
                    .unwrap_or(1);
                on_tree
                    .into_iter()
                    .filter(|&l| {
                        let link = topo.link(l);
                        spt.hop_count(link.a).max(spt.hop_count(link.b)) == max_h.min(h)
                    })
                    .collect()
            } else {
                at_depth
            }
        }
    }
}

impl Session {
    /// Number of members.
    pub fn group_size(&self) -> usize {
        self.members.len()
    }

    /// RTT (seconds) from `member` to the source over the true topology.
    pub fn rtt_to_source(&self, member: NodeId) -> f64 {
        2.0 * self.dist_from_source[member.index()]
    }

    /// The page data is sent on.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// How many loss-recovery rounds have been run.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    pub(crate) fn bump_rounds(&mut self) {
        self.rounds_run += 1;
    }

    /// Re-arm the one-shot drop for the next round.
    pub fn rearm_drop(&mut self) {
        // The loss model is always the OneShotLinkDrop installed by build();
        // re-install a fresh armed one (cheap and avoids downcasting).
        let link = self.congested_link;
        let src = self.source;
        self.sim
            .set_loss_model(Box::new(OneShotLinkDrop::new(link, src, flow::DATA)));
    }

    /// Let the source multicast one data packet now.
    pub fn source_sends(&mut self) {
        let page = self.page;
        self.sim.exec(self.source, |a, ctx| {
            a.send_data(ctx, page, bytes::Bytes::from_static(b"adu"));
        });
    }

    /// Advance the simulated clock by `secs` (processing events).
    pub fn advance(&mut self, secs: f64) {
        let t = self.sim.now() + SimDuration::from_secs_f64(secs);
        self.sim.run_until(t);
    }

    /// Run to quiescence; panics if the session does not settle within
    /// `limit_secs` (which would indicate a protocol bug).
    pub fn settle(&mut self, limit_secs: f64) {
        let limit = self.sim.now() + SimDuration::from_secs_f64(limit_secs);
        assert!(
            self.sim.run_until_idle(limit),
            "session did not quiesce within {limit_secs}s"
        );
    }

    /// Drain delivered payloads on all members (keeps memory flat across
    /// many rounds).
    pub fn drain_deliveries(&mut self) {
        for &m in &self.members.clone() {
            let _ = self.sim.app_mut(m).unwrap().take_delivered();
        }
    }
}

/// Convenience: timestamp used by drivers when they need "a moment later".
pub fn at(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_scenario_builds() {
        let spec = ScenarioSpec {
            topo: TopoSpec::Chain { n: 10 },
            group_size: None,
            drop: DropSpec::RandomTreeLink,
            cfg: SrmConfig::fixed(10),
            seed: 1,
            timer_seed: None,
        };
        let s = spec.build();
        assert_eq!(s.group_size(), 10);
        assert!(!s.downstream_members.is_empty());
    }

    #[test]
    fn star_scenario_drop_adjacent_to_source() {
        let spec = ScenarioSpec {
            topo: TopoSpec::Star { leaves: 20 },
            group_size: None,
            drop: DropSpec::AdjacentToSource,
            cfg: SrmConfig::fixed(20),
            seed: 3,
            timer_seed: None,
        };
        let s = spec.build();
        let link = s.sim.topology().link(s.congested_link);
        assert!(link.a == s.source || link.b == s.source);
        // Everyone except the source is downstream.
        assert_eq!(s.downstream_members.len(), 19);
    }

    #[test]
    fn sparse_tree_scenario() {
        let spec = ScenarioSpec {
            topo: TopoSpec::BoundedTree { n: 200, degree: 4 },
            group_size: Some(20),
            drop: DropSpec::RandomTreeLink,
            cfg: SrmConfig::fixed(20),
            seed: 7,
            timer_seed: None,
        };
        let s = spec.build();
        assert_eq!(s.group_size(), 20);
        assert!(s.members.contains(&s.source));
        assert!(!s.downstream_members.is_empty());
        // Distances were warmed: the farthest member has a positive RTT.
        let far = *s.members.iter().max_by(|a, b| {
            s.rtt_to_source(**a)
                .partial_cmp(&s.rtt_to_source(**b))
                .unwrap()
        }).unwrap();
        assert!(s.rtt_to_source(far) > 0.0);
    }

    #[test]
    fn hops_from_source_selects_depth() {
        let spec = ScenarioSpec {
            topo: TopoSpec::Chain { n: 12 },
            group_size: None,
            drop: DropSpec::HopsFromSource(3),
            cfg: SrmConfig::fixed(12),
            seed: 5,
            timer_seed: None,
        };
        let s = spec.build();
        let link = s.sim.topology().link(s.congested_link);
        let d = s.dist_from_source[link.a.index()].max(s.dist_from_source[link.b.index()]);
        assert_eq!(d, 3.0, "downstream end is 3 hops from the source");
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = ScenarioSpec {
            topo: TopoSpec::RandomTree { n: 50 },
            group_size: Some(10),
            drop: DropSpec::RandomTreeLink,
            cfg: SrmConfig::fixed(10),
            seed: 42,
            timer_seed: None,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.members, b.members);
        assert_eq!(a.source, b.source);
        assert_eq!(a.congested_link, b.congested_link);
    }
}

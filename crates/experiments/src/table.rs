//! Plain-text and CSV rendering of figure results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table with a title, mirroring one paper figure.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title printed above the table (e.g. "Fig 3 (a): requests").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write as CSV to `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{name}.csv")), s)
    }
}

/// Format a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(vec!["1".into(), "10.5".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, 2 rows, title.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("srm_table_test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec![f(1.0), f(2.5)]);
        t.write_csv(&dir, "demo").unwrap();
        let got = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(got, "a,b\n1.000,2.500\n");
    }
}

//! Traced scenarios behind the `trace` / `report` CLI subcommands.
//!
//! Each named scenario is one small deterministic run executed with
//! recovery-episode tracing enabled, harvested into an [`obs::Timeline`]
//! (for `trace`) and an [`obs::RunSummary`] (for `report`).  Two scenarios
//! exercise the classic single-drop topologies of Figs 5–6 and three reuse
//! the fault-injection runs of [`faults`], so a fault window
//! frames the recovery spans it caused.
//!
//! Determinism matters here: the same scenario name must always produce the
//! same JSONL bytes (the golden-trace test pins this), so every seed is
//! fixed and the timer RNG seed is pinned explicitly.

use crate::faults;
use crate::scenario::{DropSpec, ScenarioSpec, TopoSpec};
use srm::SrmConfig;

/// Scenario names accepted by `trace --scenario` / `report --scenario`.
pub const TRACE_SCENARIOS: &[&str] = &[
    "chain-drop",
    "star-drop",
    "partition-heal",
    "source-crash",
    "flaky-link",
];

/// Everything harvested from one traced scenario run.
pub struct TracedRun {
    /// Merged per-member event timeline (plus fault windows, if any).
    pub timeline: obs::Timeline,
    /// Per-member counters and run-level histograms.
    pub summary: obs::RunSummary,
}

/// Run the named scenario with tracing enabled; `None` for unknown names.
pub fn run_traced(name: &str) -> Option<TracedRun> {
    match name {
        // An 8-node chain (Fig 6's shape): one data packet is dropped four
        // hops from the source, the far members detect the gap on the next
        // packet, the nearest one requests, the others back off, and an
        // upstream member repairs.
        "chain-drop" => Some(drop_scenario(
            TopoSpec::Chain { n: 8 },
            DropSpec::HopsFromSource(4),
            8,
            0x0B5_0001,
        )),
        // A 12-leaf star (Fig 5's shape): the drop sits adjacent to the
        // source, so every other leaf misses the packet and the request
        // timers race — maximal suppression pressure.
        "star-drop" => Some(drop_scenario(
            TopoSpec::Star { leaves: 12 },
            DropSpec::AdjacentToSource,
            12,
            0x0B5_0002,
        )),
        "partition-heal" => Some(harvest(faults::partition_heal_run(0xFA17_0001, true))),
        "source-crash" => Some(harvest(faults::source_crash_run(0xFA17_0002, true))),
        "flaky-link" => Some(harvest(faults::flaky_link_run(0xFA17_0003, true))),
        _ => None,
    }
}

/// Drain a finished fault run into its timeline + summary.
fn harvest(mut run: faults::FaultRun) -> TracedRun {
    let summary = run.summary();
    let timeline = run.timeline();
    TracedRun { timeline, summary }
}

/// One warmed-distance session, one dropped packet, one exposing packet,
/// run to quiescence.
fn drop_scenario(topo: TopoSpec, drop: DropSpec, group: usize, seed: u64) -> TracedRun {
    let spec = ScenarioSpec {
        topo,
        group_size: None,
        drop,
        cfg: SrmConfig::fixed(group),
        seed,
        timer_seed: Some(seed.rotate_left(17)),
    };
    let mut s = spec.build();
    srm::enable_tracing(&mut s.sim);
    s.source_sends(); // dropped on the congested link
    s.advance(1.0);
    s.source_sends(); // exposes the gap downstream
    s.settle(300.0);
    let summary = srm::harvest_summary(&s.sim);
    let timeline = srm::harvest_timeline(&mut s.sim, Vec::new());
    TracedRun { timeline, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_traced("no-such-scenario").is_none());
        for name in TRACE_SCENARIOS {
            // Names are distinct and lowercase-kebab.
            assert_eq!(*name, name.to_lowercase());
        }
    }

    /// The issue's acceptance criterion: the chain-drop trace reconstructs
    /// at least one *complete* request→suppression→repair chain with
    /// ordered timestamps.
    #[test]
    fn chain_drop_yields_a_complete_chain() {
        let run = run_traced("chain-drop").expect("known scenario");
        let chains = run.timeline.chains();
        assert!(!chains.is_empty(), "no recovery chain reconstructed");
        let complete = chains.iter().find(|c| c.is_complete());
        assert!(
            complete.is_some(),
            "no complete chain among: {:?}",
            chains.iter().map(|c| c.render()).collect::<Vec<_>>()
        );
        let c = complete.unwrap();
        assert!(c.detected_at <= c.request_at);
        assert!(c.request_at <= c.repair_at.unwrap());
        assert!(c.repair_at.unwrap() <= c.recovered_at.unwrap());
    }

    #[test]
    fn star_drop_suppresses_most_requesters() {
        let run = run_traced("star-drop").expect("known scenario");
        let chains = run.timeline.chains();
        assert_eq!(chains.len(), 1, "one lost ADU");
        let c = &chains[0];
        // 11 leaves missed the packet; all but the winning requester were
        // suppressed or backed off.
        assert!(c.suppressed.len() >= 8, "suppressed: {:?}", c.suppressed);
        assert!(c.is_complete());
    }

    #[test]
    fn traced_scenarios_are_deterministic() {
        let a = run_traced("chain-drop").unwrap().timeline.to_jsonl();
        let b = run_traced("chain-drop").unwrap().timeline.to_jsonl();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fault_scenarios_nest_recovery_in_fault_windows() {
        let run = run_traced("source-crash").expect("known scenario");
        assert_eq!(run.timeline.faults().len(), 1);
        assert_eq!(run.timeline.faults()[0].label, "crash");
        // The crash leaves at least one loss whose repair happened inside
        // the (open-ended) fault window.
        let inside = run.timeline.filter(None, None, Some("crash"));
        assert!(!inside.is_empty(), "no recovery events after the crash");
        // Summary side: peers answered with at least one repair.
        let totals = run.summary.totals();
        assert!(totals.repairs_sent >= 1);
    }
}

//! Channel effects beyond loss: duplication and reordering jitter.
//!
//! SRM "requires only the basic IP delivery model — best-effort with
//! possible duplication and reordering of packets" (Section I). These
//! models let tests and experiments exercise exactly that: a packet
//! crossing a link may be duplicated, and its delivery may be jittered so
//! that packets overtake one another.

use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-hop channel effects applied after the loss decision.
pub trait ChannelEffects {
    /// How many copies of the packet cross the link (1 = normal). 0 is not
    /// produced here — dropping is the loss model's job.
    fn copies(&mut self, now: SimTime, link: LinkId, from: NodeId, to: NodeId, pkt: &Packet)
        -> u32;

    /// Extra delay added to one copy's delivery (enables reordering when it
    /// varies per copy/packet).
    fn jitter(&mut self, now: SimTime, link: LinkId, from: NodeId, to: NodeId, pkt: &Packet)
        -> SimDuration;

    /// True iff this model always yields one copy with zero jitter *and*
    /// consumes no randomness, so the simulator may skip both calls per
    /// crossing without perturbing any RNG stream. Only models for which
    /// both properties hold by construction (e.g. [`Ideal`]) may return
    /// `true`.
    fn is_ideal(&self) -> bool {
        false
    }
}

/// The default: one copy, no jitter.
#[derive(Clone, Debug, Default)]
pub struct Ideal;

impl ChannelEffects for Ideal {
    fn copies(&mut self, _: SimTime, _: LinkId, _: NodeId, _: NodeId, _: &Packet) -> u32 {
        1
    }
    fn jitter(&mut self, _: SimTime, _: LinkId, _: NodeId, _: NodeId, _: &Packet) -> SimDuration {
        SimDuration::ZERO
    }
    fn is_ideal(&self) -> bool {
        true
    }
}

/// Independent per-hop duplication with probability `p`, and uniform jitter
/// in `[0, max_jitter]` per delivered copy.
#[derive(Clone, Debug)]
pub struct RandomEffects {
    /// Probability a crossing is duplicated (two copies instead of one).
    pub dup_p: f64,
    /// Maximum uniform jitter added per copy.
    pub max_jitter: SimDuration,
    rng: StdRng,
}

impl RandomEffects {
    /// Duplication probability `dup_p`, jitter up to `max_jitter`.
    pub fn new(dup_p: f64, max_jitter: SimDuration, seed: u64) -> Self {
        RandomEffects {
            dup_p,
            max_jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ChannelEffects for RandomEffects {
    fn copies(&mut self, _: SimTime, _: LinkId, _: NodeId, _: NodeId, _: &Packet) -> u32 {
        if self.dup_p > 0.0 && self.rng.random_bool(self.dup_p) {
            2
        } else {
            1
        }
    }

    fn jitter(&mut self, _: SimTime, _: LinkId, _: NodeId, _: NodeId, _: &Packet) -> SimDuration {
        if self.max_jitter.is_zero() {
            SimDuration::ZERO
        } else {
            let f: f64 = self.rng.random_range(0.0..1.0);
            self.max_jitter.mul_f64(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{flow, GroupId, PacketBody, PacketId};
    use bytes::Bytes;

    fn pkt() -> Packet {
        Packet::new(
            10,
            PacketBody {
                id: PacketId(0),
                src: NodeId(0),
                group: GroupId(0),
                dest: None,
                initial_ttl: 10,
                admin_scoped: false,
                flow: flow::DATA,
                size: 1,
                payload: Bytes::new(),
            },
        )
    }

    #[test]
    fn ideal_is_transparent() {
        let mut e = Ideal;
        assert_eq!(
            e.copies(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &pkt()),
            1
        );
        assert!(e
            .jitter(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &pkt())
            .is_zero());
        assert!(e.is_ideal());
        assert!(!RandomEffects::new(0.1, SimDuration::ZERO, 1).is_ideal());
    }

    #[test]
    fn duplication_rate_is_roughly_p() {
        let mut e = RandomEffects::new(0.25, SimDuration::ZERO, 42);
        let mut dups = 0;
        for _ in 0..10_000 {
            if e.copies(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &pkt()) == 2 {
                dups += 1;
            }
        }
        let rate = dups as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn jitter_bounded() {
        let mut e = RandomEffects::new(0.0, SimDuration::from_millis(500), 7);
        for _ in 0..1000 {
            let j = e.jitter(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &pkt());
            assert!(j <= SimDuration::from_millis(500));
        }
        // And it actually varies.
        let a = e.jitter(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &pkt());
        let b = e.jitter(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &pkt());
        assert!(a != b || !a.is_zero());
    }
}

//! The deterministic event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`: events scheduled for the
//! same instant fire in the order they were scheduled, so a simulation is a
//! pure function of its inputs and seed.

use crate::packet::Packet;
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle for a scheduled timer, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A packet arrives at `node` (having crossed `via`, or `None` when the
    /// packet originates locally, i.e. loopback of a just-sent packet into
    /// the forwarding engine).
    Hop {
        /// Receiving node.
        node: NodeId,
        /// Link just crossed, if any.
        via: Option<LinkId>,
        /// The packet.
        pkt: Packet,
    },
    /// A timer set by the application on `node` fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Cancellation handle.
        id: TimerId,
        /// Application-interpreted token.
        token: u64,
    },
    /// A scripted fault from the installed [`crate::FaultPlan`] takes
    /// effect (`index` into the plan's event list).
    Fault {
        /// Position in the fault plan.
        index: usize,
    },
}

#[derive(Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

// Order by (time, seq) only; EventKind does not participate.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Time-ordered, insertion-stable event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, kind }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.kind))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            id: TimerId(token),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), timer(0, 3));
        q.schedule(SimTime::from_secs(1), timer(0, 1));
        q.schedule(SimTime::from_secs(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(5), timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_secs(9), timer(0, 0));
        q.schedule(SimTime::from_secs(4), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }
}

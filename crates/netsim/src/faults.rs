//! Scripted fault injection: link failures, partitions, node crashes and
//! restarts, loss bursts, and clock faults.
//!
//! The SRM paper argues the framework "is robust to host failures and
//! network partition" because consistency is driven by receiver-initiated
//! recovery and periodic session messages, not by sender state. A
//! [`FaultPlan`] lets experiments script exactly those situations against
//! the deterministic simulator: every fault fires at a fixed simulated
//! instant through the ordinary event queue, so a faulted run is still a
//! pure function of its inputs and seed.
//!
//! Semantics:
//!
//! - **Link faults** ([`FaultEvent::LinkDown`] / [`FaultEvent::LinkUp`])
//!   remove a link from the forwarding substrate. Routing recomputes
//!   shortest-path trees over the surviving links (packets already in
//!   flight on the link still arrive — the fault takes effect for
//!   subsequent crossings).
//! - **Partitions** ([`FaultEvent::Partition`] / [`FaultEvent::Heal`]) down
//!   a whole cut set at once and restore exactly that set on heal. Use
//!   [`partition_cut`] to compute the cut separating a node set from the
//!   rest of a topology.
//! - **Node crashes** ([`FaultEvent::NodeCrash`]) kill the *application* on
//!   a node with full state loss: pending timers are invalidated, packets
//!   are no longer delivered, and the node leaves all groups. The node's
//!   router keeps forwarding — hosts die, the network does not.
//!   [`FaultEvent::NodeRestart`] brings the application back through
//!   [`crate::Application::on_restart`], where a protocol can rejoin as a
//!   late joiner.
//! - **Loss bursts** ([`FaultEvent::LossBurst`]) overlay a time-windowed
//!   Bernoulli drop process (its own seeded RNG) on top of the installed
//!   loss model — a flaky link episode.
//! - **Clock faults** ([`FaultEvent::ClockSkew`] / [`FaultEvent::ClockDrift`])
//!   perturb a node's *local* clock as observed through
//!   [`crate::Ctx::local_now`]; the simulator's true clock (event ordering,
//!   timers) is unaffected.

use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, Topology};
use std::fmt;

/// One scripted fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Take a link out of service.
    LinkDown(LinkId),
    /// Return a link to service.
    LinkUp(LinkId),
    /// Down every link in `cut` at once (remembered for [`FaultEvent::Heal`]).
    Partition {
        /// The links severed by the partition.
        cut: Vec<LinkId>,
    },
    /// Restore the links downed by the most recent partition.
    Heal,
    /// Crash the application on a node (full state loss; router survives).
    NodeCrash(NodeId),
    /// Restart a crashed node's application
    /// (fires [`crate::Application::on_restart`]).
    NodeRestart(NodeId),
    /// A Bernoulli-loss episode: drop probability `p` on `link`
    /// (`None` = every link) for `duration` from the event time.
    LossBurst {
        /// Affected link; `None` applies the burst everywhere.
        link: Option<LinkId>,
        /// Per-crossing drop probability.
        p: f64,
        /// How long the episode lasts.
        duration: SimDuration,
    },
    /// Set a node's local-clock offset (seconds, may be negative).
    ClockSkew {
        /// The node whose clock is skewed.
        node: NodeId,
        /// Offset added to the true time, in seconds.
        offset_secs: f64,
    },
    /// Set a node's local-clock drift rate in parts per million
    /// (accumulates from the event time; previously accumulated drift is
    /// folded into the offset so local time stays continuous).
    ClockDrift {
        /// The node whose clock drifts.
        node: NodeId,
        /// Drift rate in parts per million (may be negative).
        ppm: f64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::LinkDown(l) => write!(f, "link-down {l}"),
            FaultEvent::LinkUp(l) => write!(f, "link-up {l}"),
            FaultEvent::Partition { cut } => write!(f, "partition cut={cut:?}"),
            FaultEvent::Heal => write!(f, "heal"),
            FaultEvent::NodeCrash(n) => write!(f, "crash {n}"),
            FaultEvent::NodeRestart(n) => write!(f, "restart {n}"),
            FaultEvent::LossBurst { link, p, duration } => match link {
                Some(l) => write!(f, "loss-burst {l} p={p} for {duration}s"),
                None => write!(f, "loss-burst all p={p} for {duration}s"),
            },
            FaultEvent::ClockSkew { node, offset_secs } => {
                write!(f, "clock-skew {node} {offset_secs:+}s")
            }
            FaultEvent::ClockDrift { node, ppm } => write!(f, "clock-drift {node} {ppm:+}ppm"),
        }
    }
}

/// A time-ordered script of [`FaultEvent`]s.
///
/// Events are applied through the simulator's event queue; events given at
/// the same instant apply in the order they were added. Install a plan with
/// [`crate::Simulator::set_fault_plan`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scripted `(time, fault)` pairs, in insertion order.
    pub events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `event` at `at`. Returns `self` for chaining.
    pub fn at(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }

    /// Schedule a link failure.
    pub fn link_down(self, at: SimTime, link: LinkId) -> Self {
        self.at(at, FaultEvent::LinkDown(link))
    }

    /// Schedule a link repair.
    pub fn link_up(self, at: SimTime, link: LinkId) -> Self {
        self.at(at, FaultEvent::LinkUp(link))
    }

    /// Schedule a partition severing `cut`.
    pub fn partition(self, at: SimTime, cut: Vec<LinkId>) -> Self {
        self.at(at, FaultEvent::Partition { cut })
    }

    /// Schedule the heal of the most recent partition.
    pub fn heal(self, at: SimTime) -> Self {
        self.at(at, FaultEvent::Heal)
    }

    /// Schedule an application crash on `node`.
    pub fn crash(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, FaultEvent::NodeCrash(node))
    }

    /// Schedule the restart of `node`'s application.
    pub fn restart(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, FaultEvent::NodeRestart(node))
    }

    /// Schedule a Bernoulli loss episode.
    pub fn loss_burst(
        self,
        at: SimTime,
        link: Option<LinkId>,
        p: f64,
        duration: SimDuration,
    ) -> Self {
        self.at(at, FaultEvent::LossBurst { link, p, duration })
    }

    /// Schedule a clock-offset change on `node`.
    pub fn clock_skew(self, at: SimTime, node: NodeId, offset_secs: f64) -> Self {
        self.at(at, FaultEvent::ClockSkew { node, offset_secs })
    }

    /// Schedule a clock-drift change on `node`.
    pub fn clock_drift(self, at: SimTime, node: NodeId, ppm: f64) -> Self {
        self.at(at, FaultEvent::ClockDrift { node, ppm })
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The cut set separating `side` from the rest of `topo`: every link with
/// exactly one endpoint in `side`. Downing this set with
/// [`FaultEvent::Partition`] partitions the network (assuming `side` and
/// its complement are each internally connected).
pub fn partition_cut(topo: &Topology, side: &[NodeId]) -> Vec<LinkId> {
    let mut in_side = vec![false; topo.num_nodes()];
    for n in side {
        in_side[n.index()] = true;
    }
    topo.links()
        .filter(|(_, l)| in_side[l.a.index()] != in_side[l.b.index()])
        .map(|(id, _)| id)
        .collect()
}

/// A node's local-clock transform: `local = true + offset + drift`.
///
/// The identity transform (no skew, no drift) is exact: `local_time`
/// returns the true instant unchanged, so unfaulted simulations are
/// bit-for-bit identical with or without the fault subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeClock {
    /// Fixed offset in seconds (may be negative).
    pub offset_secs: f64,
    /// Drift rate in parts per million.
    pub drift_ppm: f64,
    /// When the current drift rate started applying.
    pub drift_since: SimTime,
}

impl NodeClock {
    /// The node's local reading of true instant `now` (clamped at zero).
    pub fn local_time(&self, now: SimTime) -> SimTime {
        if self.offset_secs == 0.0 && self.drift_ppm == 0.0 {
            return now;
        }
        let drifted = self.drift_ppm * 1e-6 * now.since(self.drift_since).as_secs_f64();
        let secs = now.as_secs_f64() + self.offset_secs + drifted;
        SimTime::from_secs_f64(secs) // negative clamps to zero
    }

    /// Replace the offset.
    pub fn set_offset(&mut self, offset_secs: f64) {
        self.offset_secs = offset_secs;
    }

    /// Replace the drift rate at true time `now`, folding the drift
    /// accumulated so far into the offset (local time stays continuous).
    pub fn set_drift(&mut self, ppm: f64, now: SimTime) {
        self.offset_secs += self.drift_ppm * 1e-6 * now.since(self.drift_since).as_secs_f64();
        self.drift_ppm = ppm;
        self.drift_since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chain;

    #[test]
    fn plan_builder_orders_by_insertion() {
        let plan = FaultPlan::new()
            .link_down(SimTime::from_secs(5), LinkId(0))
            .heal(SimTime::from_secs(5))
            .crash(SimTime::from_secs(9), NodeId(2));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.events[0].1, FaultEvent::LinkDown(LinkId(0)));
        assert_eq!(plan.events[1].1, FaultEvent::Heal);
    }

    #[test]
    fn partition_cut_finds_boundary_links() {
        let topo = chain(6); // 0-1-2-3-4-5
        let cut = partition_cut(&topo, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(cut.len(), 1);
        let l = topo.link(cut[0]);
        assert_eq!((l.a, l.b), (NodeId(2), NodeId(3)));
    }

    #[test]
    fn partition_cut_of_interior_set() {
        let topo = chain(5);
        // {2} alone is severed from both sides: two boundary links.
        let cut = partition_cut(&topo, &[NodeId(2)]);
        assert_eq!(cut.len(), 2);
    }

    #[test]
    fn identity_clock_is_exact() {
        let c = NodeClock::default();
        let t = SimTime::from_secs_f64(123.456789);
        assert_eq!(c.local_time(t), t);
    }

    #[test]
    fn skewed_clock_offsets() {
        let mut c = NodeClock::default();
        c.set_offset(-2.5);
        let t = SimTime::from_secs(10);
        assert!((c.local_time(t).as_secs_f64() - 7.5).abs() < 1e-9);
        c.set_offset(3.0);
        assert!((c.local_time(t).as_secs_f64() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn drift_accumulates_and_rebases_continuously() {
        let mut c = NodeClock::default();
        c.set_drift(1000.0, SimTime::from_secs(100)); // 1 ms/s fast
        let at200 = c.local_time(SimTime::from_secs(200));
        assert!((at200.as_secs_f64() - 200.1).abs() < 1e-6);
        // Changing the rate folds accumulated drift into the offset.
        c.set_drift(0.0, SimTime::from_secs(200));
        let at300 = c.local_time(SimTime::from_secs(300));
        assert!((at300.as_secs_f64() - 300.1).abs() < 1e-6);
    }

    #[test]
    fn negative_local_time_clamps_to_zero() {
        let mut c = NodeClock::default();
        c.set_offset(-100.0);
        assert_eq!(c.local_time(SimTime::from_secs(5)), SimTime::ZERO);
    }
}

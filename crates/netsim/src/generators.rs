//! Topology generators used by the paper's evaluation.
//!
//! - chains (Fig. 1) and stars (Fig. 2) for the analytic Section IV;
//! - balanced bounded-degree trees (Sections V-B, VII) — "interior nodes
//!   have degree 4", 1000 or 5000 nodes;
//! - random labeled trees built from uniform Prüfer sequences, the
//!   construction the paper cites from Palmer, *Graphical Evolution*, p. 99
//!   (Section V-A);
//! - connected random graphs denser than trees ("1000 nodes and 1500
//!   edges", Section VII-A);
//! - router-plus-Ethernet clusters ("each node … is a router with an
//!   adjacent Ethernet with 5 workstations", Section V-B).

use crate::time::SimDuration;
use crate::topology::{NodeId, Topology, TopologyBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// A chain of `n` nodes: `0 — 1 — … — n−1` (paper Fig. 1).
///
/// All links have unit delay and threshold 1.
pub fn chain(n: usize) -> Topology {
    assert!(n >= 1);
    let mut b = TopologyBuilder::new(n);
    for i in 1..n {
        b.link(NodeId(i as u32 - 1), NodeId(i as u32));
    }
    b.build()
}

/// A star with a non-member hub (paper Fig. 2).
///
/// Node 0 is the hub; nodes `1..=leaves` are the spokes. The paper's star
/// has the center "not a member of the multicast group" — membership is a
/// session-level concept, so callers simply do not give node 0 an agent.
pub fn star(leaves: usize) -> Topology {
    assert!(leaves >= 1);
    let mut b = TopologyBuilder::new(leaves + 1);
    for i in 1..=leaves {
        b.link(NodeId(0), NodeId(i as u32));
    }
    b.build()
}

/// A balanced tree on exactly `n` nodes in which interior nodes have total
/// degree `degree` (so the root has `degree` children and every other
/// interior node has `degree − 1` children).
///
/// This is the "bounded-degree tree … interior nodes have degree 4" of
/// Section V-B, filled breadth-first so the tree is as balanced as `n`
/// allows.
pub fn bounded_degree_tree(n: usize, degree: usize) -> Topology {
    assert!(n >= 1);
    assert!(degree >= 2, "interior degree must be at least 2");
    let mut b = TopologyBuilder::new(n);
    // Breadth-first attachment: the root may take `degree` children, every
    // later node `degree − 1` (one edge goes to its parent).
    let mut next_child = 1usize;
    let mut frontier = std::collections::VecDeque::new();
    frontier.push_back((NodeId(0), degree));
    while let Some((parent, capacity)) = frontier.pop_front() {
        for _ in 0..capacity {
            if next_child >= n {
                return b.build();
            }
            let c = NodeId(next_child as u32);
            next_child += 1;
            b.link(parent, c);
            frontier.push_back((c, degree - 1));
        }
    }
    b.build()
}

/// A uniformly random labeled tree on `n` nodes via a random Prüfer
/// sequence (Palmer, *Graphical Evolution*, p. 99 — the construction cited
/// in Section V-A).
///
/// Every labeled tree on `n` nodes is produced with equal probability.
pub fn random_labeled_tree<R: Rng>(n: usize, rng: &mut R) -> Topology {
    assert!(n >= 1);
    let mut b = TopologyBuilder::new(n);
    if n == 1 {
        return b.build();
    }
    if n == 2 {
        b.link(NodeId(0), NodeId(1));
        return b.build();
    }
    // Random Prüfer sequence of length n − 2 over labels 0..n.
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    for (a, bnode) in prufer_decode(n, &prufer) {
        b.link(NodeId(a as u32), NodeId(bnode as u32));
    }
    b.build()
}

/// Decode a Prüfer sequence into the n−1 edges of the corresponding tree.
///
/// Exposed for testing the bijection property.
pub fn prufer_decode(n: usize, prufer: &[usize]) -> Vec<(usize, usize)> {
    assert_eq!(prufer.len(), n.saturating_sub(2));
    let mut degree = vec![1usize; n];
    for &p in prufer {
        assert!(p < n, "Prüfer label out of range");
        degree[p] += 1;
    }
    // Min-heap of current leaves.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut leaves: BinaryHeap<Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(Reverse)
        .collect();
    let mut edges = Vec::with_capacity(n - 1);
    for &p in prufer {
        let Reverse(leaf) = leaves.pop().expect("ran out of leaves");
        edges.push((leaf, p));
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(Reverse(p));
        }
    }
    let Reverse(u) = leaves.pop().unwrap();
    let Reverse(v) = leaves.pop().unwrap();
    edges.push((u, v));
    edges
}

/// A connected random graph with `n` nodes and `m ≥ n − 1` edges: a uniform
/// random labeled tree plus `m − (n−1)` distinct extra edges chosen uniformly
/// among absent pairs.
///
/// This is the "connected graphs that are more dense than trees, with 1000
/// nodes and 1500 edges" of Section VII-A.
pub fn random_connected_graph<R: Rng>(n: usize, m: usize, rng: &mut R) -> Topology {
    assert!(n >= 1);
    assert!(m >= n.saturating_sub(1), "need at least n-1 edges");
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "too many edges for a simple graph");
    let tree = random_labeled_tree(n, rng);
    let mut present: std::collections::HashSet<(u32, u32)> = tree
        .links()
        .map(|(_, l)| ordered_pair(l.a, l.b))
        .collect();
    let mut b = TopologyBuilder::new(n);
    for (_, l) in tree.links() {
        b.link(l.a, l.b);
    }
    let mut extra = m - (n - 1);
    while extra > 0 {
        let a = rng.random_range(0..n as u32);
        let c = rng.random_range(0..n as u32);
        if a == c {
            continue;
        }
        let key = ordered_pair(NodeId(a), NodeId(c));
        if present.insert(key) {
            b.link(NodeId(a), NodeId(c));
            extra -= 1;
        }
    }
    b.build()
}

fn ordered_pair(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// A backbone tree of routers where every router has an attached "Ethernet"
/// of `hosts_per_router` workstation nodes (Section V-B: "each of the nodes
/// in the underlying network is a router with an adjacent Ethernet with 5
/// workstations").
///
/// Router ids are `0..routers`; the hosts of router `r` are
/// `routers + r*hosts_per_router ..`. Host links get delay `lan_delay`.
pub fn router_ethernet_clusters<R: Rng>(
    routers: usize,
    hosts_per_router: usize,
    lan_delay: SimDuration,
    rng: &mut R,
) -> Topology {
    let backbone = random_labeled_tree(routers, rng);
    let n = routers + routers * hosts_per_router;
    let mut b = TopologyBuilder::new(n);
    for (_, l) in backbone.links() {
        b.link(l.a, l.b);
    }
    for r in 0..routers {
        for h in 0..hosts_per_router {
            let host = NodeId((routers + r * hosts_per_router + h) as u32);
            b.link_with(NodeId(r as u32), host, lan_delay, 1);
        }
    }
    b.build()
}

/// A uniformly random labeled tree whose links carry propagation delays
/// drawn uniformly from `[min_delay, max_delay]` — the "point-to-point
/// topologies where the edges have a range of propagation delays" of
/// Section V-B.
pub fn random_delay_tree<R: Rng>(
    n: usize,
    min_delay: SimDuration,
    max_delay: SimDuration,
    rng: &mut R,
) -> Topology {
    let base = random_labeled_tree(n, rng);
    let mut b = TopologyBuilder::new(n);
    let lo = min_delay.as_secs_f64();
    let hi = max_delay.as_secs_f64();
    for (_, l) in base.links() {
        let d = if hi > lo { rng.random_range(lo..hi) } else { lo };
        b.link_with(l.a, l.b, SimDuration::from_secs_f64(d), 1);
    }
    b.build()
}

/// A dumbbell: two stars joined by a single bottleneck link of delay
/// `bottleneck_delay`. Left hub is node 0, right hub is node `left + 1`.
///
/// Useful for local-recovery scenarios (losses confined to one side).
pub fn dumbbell(left: usize, right: usize, bottleneck_delay: SimDuration) -> Topology {
    let mut b = TopologyBuilder::new(left + right + 2);
    let lh = NodeId(0);
    let rh = NodeId(left as u32 + 1);
    for i in 0..left {
        b.link(lh, NodeId(1 + i as u32));
    }
    for i in 0..right {
        b.link(rh, NodeId(left as u32 + 2 + i as u32));
    }
    b.link_with(lh, rh, bottleneck_delay, 1);
    b.build()
}

/// Choose `k` distinct session members uniformly from the nodes of `topo`.
///
/// The paper's Section V: "N of the nodes are randomly chosen to be session
/// members; these session members are not necessarily leaf nodes".
pub fn random_members<R: Rng>(topo: &Topology, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = topo.nodes().collect();
    all.shuffle(rng);
    all.truncate(k);
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let t = chain(5);
        assert!(t.is_tree());
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert_eq!(t.degree(NodeId(4)), 1);
    }

    #[test]
    fn star_shape() {
        let t = star(6);
        assert!(t.is_tree());
        assert_eq!(t.degree(NodeId(0)), 6);
        for i in 1..=6 {
            assert_eq!(t.degree(NodeId(i)), 1);
        }
    }

    #[test]
    fn bounded_degree_tree_respects_degree() {
        for &(n, d) in &[(1usize, 4usize), (5, 4), (100, 4), (1000, 4), (50, 10), (7, 3)] {
            let t = bounded_degree_tree(n, d);
            assert!(t.is_tree(), "n={n} d={d}");
            for v in t.nodes() {
                assert!(t.degree(v) <= d, "n={n} d={d} node {v:?}");
            }
        }
    }

    #[test]
    fn bounded_degree_tree_is_balanced_bfs() {
        // With degree 4 the root has 4 children, so a 5-node tree is a star.
        let t = bounded_degree_tree(5, 4);
        assert_eq!(t.degree(NodeId(0)), 4);
    }

    #[test]
    fn prufer_known_decoding() {
        // Classic example: sequence [3,3,3,4] on 6 nodes.
        let edges = prufer_decode(6, &[3, 3, 3, 4]);
        assert_eq!(edges.len(), 5);
        let mut degree = vec![0usize; 6];
        for &(a, b) in &edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        // Node 3 appears 3 times in the sequence => degree 4.
        assert_eq!(degree[3], 4);
        assert_eq!(degree[4], 2);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 100, 500] {
            let t = random_labeled_tree(n, &mut rng);
            assert!(t.is_tree(), "n={n}");
        }
    }

    #[test]
    fn random_tree_degree_statistics() {
        // Palmer: P(deg ≤ 4) → ~0.98 for large n. Check loosely.
        let mut rng = StdRng::seed_from_u64(42);
        let t = random_labeled_tree(2000, &mut rng);
        let small = t.nodes().filter(|&v| t.degree(v) <= 4).count();
        assert!(small as f64 / 2000.0 > 0.95);
    }

    #[test]
    fn random_connected_graph_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_connected_graph(100, 150, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_links(), 150);
        assert!(g.is_connected());
    }

    #[test]
    fn ethernet_clusters_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = router_ethernet_clusters(10, 5, SimDuration::from_millis(10), &mut rng);
        assert_eq!(t.num_nodes(), 10 + 50);
        assert!(t.is_tree());
        // Host 0 of router 0 hangs off node 0.
        assert!(t.link_between(NodeId(0), NodeId(10)).is_some());
    }

    #[test]
    fn random_delay_tree_delays_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = random_delay_tree(
            60,
            SimDuration::from_millis(100),
            SimDuration::from_secs(2),
            &mut rng,
        );
        assert!(t.is_tree());
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for (_, l) in t.links() {
            let d = l.delay.as_secs_f64();
            assert!((0.1..=2.0).contains(&d));
            min = min.min(d);
            max = max.max(d);
        }
        assert!(max - min > 0.5, "delays actually vary: [{min}, {max}]");
    }

    #[test]
    fn dumbbell_shape() {
        let t = dumbbell(3, 4, SimDuration::from_secs(2));
        assert!(t.is_tree());
        assert_eq!(t.degree(NodeId(0)), 4); // 3 leaves + bottleneck
        assert_eq!(t.degree(NodeId(4)), 5); // 4 leaves + bottleneck
    }

    #[test]
    fn random_members_distinct_sorted() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = chain(50);
        let m = random_members(&t, 10, &mut rng);
        assert_eq!(m.len(), 10);
        for w in m.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

//! # netsim — a deterministic multicast network simulator
//!
//! This crate is the substrate for the SRM reproduction: a discrete-event
//! simulator of an IP-multicast-capable internetwork, in the style of the
//! (non-public) LBNL simulator the paper used and of its successor ns-2.
//!
//! Highlights:
//!
//! - **Deterministic**: integer-nanosecond clock, insertion-stable event
//!   queue, one seeded RNG — a run is a pure function of its inputs.
//! - **Group delivery model** (Deering): senders multicast to a group
//!   address with no knowledge of membership; receivers join and leave
//!   independently; forwarding follows per-source shortest-path trees,
//!   pruned to member subtrees.
//! - **Hop-by-hop semantics**: per-link delays, loss models, Mbone-style
//!   TTL thresholds, and administrative scope boundaries all apply at each
//!   hop, which the SRM local-recovery machinery depends on.
//! - **Topology generators** for every family in the paper's evaluation:
//!   chains, stars, bounded-degree trees, uniformly random labeled trees
//!   (Prüfer), dense random graphs, and router+Ethernet clusters.
//!
//! ## Quick example
//!
//! ```
//! use netsim::{Simulator, Application, Ctx, Packet, GroupId, NodeId, SendOptions};
//! use netsim::generators::star;
//! use netsim::time::SimTime;
//! use bytes::Bytes;
//!
//! struct Counter(u32);
//! impl Application for Counter {
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: &Packet) { self.0 += 1; }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
//! }
//!
//! let mut sim = Simulator::new(star(3), 42);
//! let g = GroupId(0);
//! for i in 1..=3 {
//!     sim.install(NodeId(i), Counter(0));
//!     sim.join(NodeId(i), g);
//! }
//! sim.send_from(NodeId(1), g, Bytes::from_static(b"hi"), SendOptions::default());
//! sim.run_until_idle(SimTime::from_secs(10));
//! assert_eq!(sim.app(NodeId(2)).unwrap().0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod effects;
pub mod event;
pub mod faults;
pub mod generators;
pub mod loss;
pub mod packet;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

pub use effects::{ChannelEffects, Ideal, RandomEffects};
pub use event::TimerId;
pub use faults::{partition_cut, FaultEvent, FaultPlan, NodeClock};
pub use packet::{flow, GroupId, Packet, PacketBody, PacketId, SendOptions, TTL_GLOBAL};
pub use routing::SpTree;
pub use sim::{Application, Ctx, Simulator};
pub use stats::{Stats, Trace, TraceEvent};
pub use time::{SimDuration, SimTime};
pub use topology::{Link, LinkId, NodeId, Topology, TopologyBuilder};

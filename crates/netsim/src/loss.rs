//! Loss models: where and when packets are dropped.
//!
//! The paper's evaluation drops exactly one data packet per loss-recovery
//! round on a chosen "congested link" ([`OneShotLinkDrop`], reset each
//! round). For robustness testing we also provide per-link Bernoulli loss
//! and fully scripted drops.

use crate::packet::Packet;
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decides the fate of each packet crossing each link.
pub trait LossModel {
    /// Return `true` to drop the packet on this hop. `from` → `to` gives the
    /// traversal direction across `link`.
    fn should_drop(
        &mut self,
        now: SimTime,
        link: LinkId,
        from: NodeId,
        to: NodeId,
        pkt: &Packet,
    ) -> bool;

    /// True iff this model never drops anything *and* consumes no
    /// randomness, so the simulator may skip [`LossModel::should_drop`]
    /// entirely without perturbing any RNG stream. Only models for which
    /// both properties hold by construction (e.g. [`NoLoss`]) may return
    /// `true`.
    fn is_transparent(&self) -> bool {
        false
    }
}

/// Never drops anything.
#[derive(Clone, Debug, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn should_drop(&mut self, _: SimTime, _: LinkId, _: NodeId, _: NodeId, _: &Packet) -> bool {
        false
    }

    fn is_transparent(&self) -> bool {
        true
    }
}

/// Drops the next packet of a given flow class from a given source that
/// traverses the configured link, then lets everything through until
/// re-armed.
///
/// This is the paper's per-round drop: "the first packet from source S is
/// dropped by link L" (Section V). Re-arm with [`OneShotLinkDrop::arm`]
/// at the start of each loss-recovery round.
#[derive(Clone, Debug)]
pub struct OneShotLinkDrop {
    /// The congested link.
    pub link: LinkId,
    /// Only packets originated by this node are candidates.
    pub src: NodeId,
    /// Only packets of this flow class are candidates.
    pub flow: u32,
    armed: bool,
    /// Count of packets dropped so far (across all armings).
    pub drops: u64,
}

impl OneShotLinkDrop {
    /// Create armed.
    pub fn new(link: LinkId, src: NodeId, flow: u32) -> Self {
        OneShotLinkDrop {
            link,
            src,
            flow,
            armed: true,
            drops: 0,
        }
    }

    /// Re-arm for the next round.
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Whether the drop is still pending.
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

impl LossModel for OneShotLinkDrop {
    fn should_drop(
        &mut self,
        _now: SimTime,
        link: LinkId,
        _from: NodeId,
        _to: NodeId,
        pkt: &Packet,
    ) -> bool {
        if self.armed && link == self.link && pkt.src == self.src && pkt.flow == self.flow {
            self.armed = false;
            self.drops += 1;
            true
        } else {
            false
        }
    }
}

/// Independent Bernoulli loss on selected links (or all links), with its own
/// seeded RNG so simulations stay deterministic.
#[derive(Clone, Debug)]
pub struct BernoulliLoss {
    /// Per-link drop probability applied when `links` is `None` or contains
    /// the link.
    pub p: f64,
    /// Restrict to these links; `None` = every link.
    pub links: Option<Vec<LinkId>>,
    /// Exempt flows (e.g. keep session messages lossless in a test).
    pub exempt_flows: Vec<u32>,
    rng: StdRng,
}

impl BernoulliLoss {
    /// Loss with probability `p` on every link.
    pub fn everywhere(p: f64, seed: u64) -> Self {
        BernoulliLoss {
            p,
            links: None,
            exempt_flows: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Loss with probability `p` on the given links only.
    pub fn on_links(p: f64, links: Vec<LinkId>, seed: u64) -> Self {
        BernoulliLoss {
            p,
            links: Some(links),
            exempt_flows: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl LossModel for BernoulliLoss {
    fn should_drop(
        &mut self,
        _now: SimTime,
        link: LinkId,
        _from: NodeId,
        _to: NodeId,
        pkt: &Packet,
    ) -> bool {
        if self.exempt_flows.contains(&pkt.flow) {
            return false;
        }
        if let Some(links) = &self.links {
            if !links.contains(&link) {
                return false;
            }
        }
        self.rng.random_bool(self.p)
    }
}

/// Drops the n-th, m-th, … packet (1-based, counted per link) crossing
/// configured links. Fully scripted and deterministic.
#[derive(Clone, Debug, Default)]
pub struct ScriptedDrop {
    /// (link, 1-based packet ordinal on that link) pairs to drop.
    pub script: Vec<(LinkId, u64)>,
    counts: std::collections::HashMap<LinkId, u64>,
}

impl ScriptedDrop {
    /// Drop the `ordinals` (1-based) packets crossing `link`.
    pub fn new(script: Vec<(LinkId, u64)>) -> Self {
        ScriptedDrop {
            script,
            counts: Default::default(),
        }
    }
}

impl LossModel for ScriptedDrop {
    fn should_drop(
        &mut self,
        _now: SimTime,
        link: LinkId,
        _from: NodeId,
        _to: NodeId,
        _pkt: &Packet,
    ) -> bool {
        let c = self.counts.entry(link).or_insert(0);
        *c += 1;
        let ordinal = *c;
        self.script.iter().any(|&(l, o)| l == link && o == ordinal)
    }
}

/// Combine several loss models; a packet is dropped if any model drops it.
pub struct Composite(pub Vec<Box<dyn LossModel>>);

impl LossModel for Composite {
    fn should_drop(
        &mut self,
        now: SimTime,
        link: LinkId,
        from: NodeId,
        to: NodeId,
        pkt: &Packet,
    ) -> bool {
        // Evaluate all models so scripted counters stay in sync.
        let mut drop = false;
        for m in &mut self.0 {
            drop |= m.should_drop(now, link, from, to, pkt);
        }
        drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{flow, GroupId, PacketBody, PacketId};
    use bytes::Bytes;

    fn pkt(src: u32, fl: u32) -> Packet {
        Packet::new(
            255,
            PacketBody {
                id: PacketId(0),
                src: NodeId(src),
                group: GroupId(0),
                dest: None,
                initial_ttl: 255,
                admin_scoped: false,
                flow: fl,
                size: 10,
                payload: Bytes::new(),
            },
        )
    }

    #[test]
    fn only_no_loss_is_transparent() {
        assert!(NoLoss.is_transparent());
        assert!(!OneShotLinkDrop::new(LinkId(0), NodeId(0), flow::DATA).is_transparent());
        assert!(!BernoulliLoss::everywhere(0.1, 1).is_transparent());
        assert!(!ScriptedDrop::default().is_transparent());
        assert!(!Composite(vec![Box::new(NoLoss)]).is_transparent());
    }

    #[test]
    fn one_shot_drops_exactly_once() {
        let mut m = OneShotLinkDrop::new(LinkId(3), NodeId(1), flow::DATA);
        let p = pkt(1, flow::DATA);
        assert!(!m.should_drop(SimTime::ZERO, LinkId(2), NodeId(0), NodeId(1), &p));
        assert!(m.should_drop(SimTime::ZERO, LinkId(3), NodeId(0), NodeId(1), &p));
        assert!(!m.should_drop(SimTime::ZERO, LinkId(3), NodeId(0), NodeId(1), &p));
        m.arm();
        assert!(m.should_drop(SimTime::ZERO, LinkId(3), NodeId(0), NodeId(1), &p));
        assert_eq!(m.drops, 2);
    }

    #[test]
    fn one_shot_ignores_other_flows_and_sources() {
        let mut m = OneShotLinkDrop::new(LinkId(3), NodeId(1), flow::DATA);
        let other_src = pkt(2, flow::DATA);
        let other_flow = pkt(1, flow::SESSION);
        assert!(!m.should_drop(SimTime::ZERO, LinkId(3), NodeId(0), NodeId(1), &other_src));
        assert!(!m.should_drop(SimTime::ZERO, LinkId(3), NodeId(0), NodeId(1), &other_flow));
        assert!(m.is_armed());
    }

    #[test]
    fn bernoulli_rates_reasonable() {
        let mut m = BernoulliLoss::everywhere(0.3, 42);
        let p = pkt(0, flow::DATA);
        let mut drops = 0;
        for _ in 0..10_000 {
            if m.should_drop(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &p) {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn bernoulli_exemptions() {
        let mut m = BernoulliLoss::everywhere(1.0, 1);
        m.exempt_flows.push(flow::SESSION);
        assert!(!m.should_drop(
            SimTime::ZERO,
            LinkId(0),
            NodeId(0),
            NodeId(1),
            &pkt(0, flow::SESSION)
        ));
        assert!(m.should_drop(
            SimTime::ZERO,
            LinkId(0),
            NodeId(0),
            NodeId(1),
            &pkt(0, flow::DATA)
        ));
    }

    #[test]
    fn scripted_drop_hits_exact_ordinals() {
        let mut m = ScriptedDrop::new(vec![(LinkId(0), 2)]);
        let p = pkt(0, flow::DATA);
        assert!(!m.should_drop(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &p));
        assert!(m.should_drop(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &p));
        assert!(!m.should_drop(SimTime::ZERO, LinkId(0), NodeId(0), NodeId(1), &p));
        // other link unaffected
        assert!(!m.should_drop(SimTime::ZERO, LinkId(1), NodeId(0), NodeId(1), &p));
    }
}

//! Packets: the unit of transmission.
//!
//! The simulator treats payloads as opaque [`bytes::Bytes`] — the protocol
//! above (SRM) defines its own wire format, in keeping with the ALF
//! principle that framing belongs to the application. The header carries
//! exactly what an IP multicast datagram would: source, destination group,
//! TTL (plus the paper's "initial TTL in a separate packet field" extension
//! from Section VII-B3), an administrative-scope flag, and a size used for
//! bandwidth accounting. A `flow` label distinguishes traffic classes for
//! loss models and statistics without peeking into the payload.

use crate::topology::NodeId;
use bytes::Bytes;
use std::ops::Deref;
use std::rc::Rc;

/// Multicast group address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// Application-assigned traffic class, used by loss models and statistics.
///
/// These are conventions, not enforced by the simulator.
pub mod flow {
    /// Original application data.
    pub const DATA: u32 = 0;
    /// Repair-request control traffic.
    pub const REQUEST: u32 = 1;
    /// Retransmitted data (repairs).
    pub const REPAIR: u32 = 2;
    /// Periodic session messages.
    pub const SESSION: u32 = 3;
    /// Proactive FEC parity packets.
    pub const PARITY: u32 = 4;
}

/// Unique id assigned to every transmission, for tracing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u64);

/// Unlimited scope / default TTL for a global multicast.
pub const TTL_GLOBAL: u8 = 255;

/// The immutable part of a packet, shared by every in-flight copy.
///
/// Fan-out duplicates a packet once per tree hop and once per receiver;
/// everything except the TTL is identical across those copies, so it lives
/// here behind one [`Rc`] and duplication clones only the handle. `Rc`
/// (not `Arc`) is deliberate: packets never cross threads — the simulator
/// is single-threaded and the wall-clock transport constructs and consumes
/// its packets inside one reactor thread.
#[derive(Debug)]
pub struct PacketBody {
    /// Unique transmission id.
    pub id: PacketId,
    /// The node that transmitted this packet (root of its distribution tree).
    pub src: NodeId,
    /// Destination multicast group.
    pub group: GroupId,
    /// Unicast destination; `None` for multicast (the normal case). Set by
    /// [`crate::sim::Ctx::unicast`], used by the sender-based baseline
    /// protocols the paper argues against (Section II-A).
    pub dest: Option<NodeId>,
    /// The TTL the packet was originally sent with (carried in the packet so
    /// receivers can compute the hop count, per Section VII-B3).
    pub initial_ttl: u8,
    /// If true, the packet is administratively scoped and is never forwarded
    /// across a zone boundary (Section VII-B1).
    pub admin_scoped: bool,
    /// Traffic class (see [`flow`]).
    pub flow: u32,
    /// Size in bytes, for bandwidth accounting.
    pub size: u32,
    /// Opaque application payload.
    pub payload: Bytes,
}

/// A packet in flight: the per-copy mutable header (just the remaining
/// TTL) plus a shared handle to the immutable [`PacketBody`].
///
/// Derefs to [`PacketBody`], so field reads (`pkt.src`, `pkt.payload`, …)
/// look exactly like they did when `Packet` was one flat struct. Cloning
/// is a reference-count bump plus one byte.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Remaining time-to-live; decremented at every hop.
    pub ttl: u8,
    body: Rc<PacketBody>,
}

impl Deref for Packet {
    type Target = PacketBody;

    #[inline]
    fn deref(&self) -> &PacketBody {
        &self.body
    }
}

impl Packet {
    /// Wrap `body` for transmission with `ttl` hops remaining.
    pub fn new(ttl: u8, body: PacketBody) -> Packet {
        Packet {
            ttl,
            body: Rc::new(body),
        }
    }

    /// The copy placed on the next link: same body, TTL one lower.
    #[inline]
    pub fn forwarded(&self) -> Packet {
        Packet {
            ttl: self.ttl - 1,
            body: Rc::clone(&self.body),
        }
    }

    /// Do two packets share one body allocation? (Diagnostics/tests.)
    pub fn shares_body(&self, other: &Packet) -> bool {
        Rc::ptr_eq(&self.body, &other.body)
    }

    /// Hops traversed so far, derived from the carried initial TTL.
    pub fn hops_traveled(&self) -> u8 {
        self.initial_ttl - self.ttl
    }
}

/// Parameters for a multicast send, passed to
/// [`crate::sim::Ctx::multicast_with`].
#[derive(Clone, Debug)]
pub struct SendOptions {
    /// Initial TTL (default [`TTL_GLOBAL`]).
    pub ttl: u8,
    /// Administrative scoping (default off).
    pub admin_scoped: bool,
    /// Traffic class (default [`flow::DATA`]).
    pub flow: u32,
    /// Size in bytes for accounting; if 0, the payload length is used.
    pub size: u32,
}

impl Default for SendOptions {
    fn default() -> Self {
        SendOptions {
            ttl: TTL_GLOBAL,
            admin_scoped: false,
            flow: flow::DATA,
            size: 0,
        }
    }
}

impl SendOptions {
    /// Options for a traffic class with global scope.
    pub fn for_flow(flow: u32) -> Self {
        SendOptions {
            flow,
            ..Default::default()
        }
    }

    /// Restrict the send to `ttl` hops.
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Mark the send administratively scoped.
    pub fn admin_scoped(mut self) -> Self {
        self.admin_scoped = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> PacketBody {
        PacketBody {
            id: PacketId(1),
            src: NodeId(0),
            group: GroupId(0),
            dest: None,
            initial_ttl: 255,
            admin_scoped: false,
            flow: flow::DATA,
            size: 100,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn hops_traveled() {
        let p = Packet::new(250, body());
        assert_eq!(p.hops_traveled(), 5);
    }

    #[test]
    fn forwarding_shares_the_body_and_decrements_ttl() {
        let p = Packet::new(250, body());
        let f = p.forwarded();
        assert_eq!(f.ttl, 249);
        assert_eq!(f.hops_traveled(), 6);
        assert!(p.shares_body(&f));
        // A separately constructed packet does not share.
        let q = Packet::new(250, body());
        assert!(!p.shares_body(&q));
    }

    #[test]
    fn send_options_builder() {
        let o = SendOptions::for_flow(flow::REQUEST).with_ttl(7).admin_scoped();
        assert_eq!(o.flow, flow::REQUEST);
        assert_eq!(o.ttl, 7);
        assert!(o.admin_scoped);
    }
}

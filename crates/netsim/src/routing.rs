//! Shortest-path routing and per-source multicast distribution trees.
//!
//! The paper assumes "messages are multicast to members of the multicast
//! group along a shortest-path tree from the source of the message"
//! (Section V). We compute, per transmitting node, a shortest-path tree
//! (SPT) over the whole topology with deterministic tie-breaking (smallest
//! parent node id), and forward hop by hop along it so that per-link loss,
//! TTL thresholds, and scope boundaries apply at each hop exactly as they
//! would in a real multicast routing substrate.

use crate::time::SimDuration;
use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The shortest-path tree rooted at one node.
#[derive(Clone, Debug)]
pub struct SpTree {
    /// The root (transmitting node).
    pub root: NodeId,
    /// Shortest-path distance from the root to each node
    /// (`SimDuration::ZERO` for the root; unreachable nodes get `u64::MAX`
    /// nanoseconds, which [`SpTree::reachable`] reports as `false`).
    dist: Vec<SimDuration>,
    /// For each node except the root: (parent node, link to parent).
    parent: Vec<Option<(NodeId, LinkId)>>,
    /// Children of each node in the tree, sorted by child id.
    children: Vec<Vec<(NodeId, LinkId)>>,
    /// Hop count from the root.
    hops: Vec<u32>,
}

const UNREACHABLE: u64 = u64::MAX;

impl SpTree {
    /// Dijkstra from `root` with deterministic tie-breaking: among equal
    /// distances, the path through the smaller parent id wins.
    pub fn compute(topo: &Topology, root: NodeId) -> SpTree {
        SpTree::compute_masked(topo, root, None)
    }

    /// Like [`SpTree::compute`], but skipping any link whose entry in
    /// `link_up` is `false` — routing around failed links. `None` means all
    /// links are up.
    pub fn compute_masked(topo: &Topology, root: NodeId, link_up: Option<&[bool]>) -> SpTree {
        let up = |l: LinkId| link_up.is_none_or(|m| m[l.index()]);
        let n = topo.num_nodes();
        let mut dist = vec![UNREACHABLE; n];
        let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut hops = vec![0u32; n];
        let mut settled = vec![false; n];
        // Heap entries: (dist, node, parent, link, hop). Reverse for min-heap;
        // ties break on smaller node id then smaller parent id, making the
        // tree independent of insertion order.
        type HeapEntry = (u64, u32, u32, u32, u32);
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        heap.push(Reverse((0, root.0, u32::MAX, u32::MAX, 0)));
        while let Some(Reverse((d, v, p, l, h))) = heap.pop() {
            let vi = v as usize;
            if settled[vi] {
                continue;
            }
            settled[vi] = true;
            dist[vi] = d;
            hops[vi] = h;
            if p != u32::MAX {
                parent[vi] = Some((NodeId(p), LinkId(l)));
            }
            for &(w, link) in topo.neighbors(NodeId(v)) {
                if !settled[w.index()] && up(link) {
                    let nd = d + topo.link(link).delay.as_nanos();
                    heap.push(Reverse((nd, w.0, v, link.0, h + 1)));
                }
            }
        }
        let mut children: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); n];
        for (v, entry) in parent.iter().enumerate() {
            if let Some((p, l)) = *entry {
                children[p.index()].push((NodeId(v as u32), l));
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        SpTree {
            root,
            dist: dist
                .into_iter()
                .map(|d| {
                    if d == UNREACHABLE {
                        SimDuration::from_secs(u64::MAX / 2_000_000_000)
                    } else {
                        nanos(d)
                    }
                })
                .collect(),
            parent,
            children,
            hops,
        }
    }

    /// Shortest-path delay from the root to `n`.
    pub fn distance(&self, n: NodeId) -> SimDuration {
        self.dist[n.index()]
    }

    /// Hop count from the root to `n`.
    pub fn hop_count(&self, n: NodeId) -> u32 {
        self.hops[n.index()]
    }

    /// Whether `n` was reached by the search.
    pub fn reachable(&self, n: NodeId) -> bool {
        n == self.root || self.parent[n.index()].is_some()
    }

    /// Children of `n` in the tree (sorted by id).
    pub fn children(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.children[n.index()]
    }

    /// Parent of `n`, or `None` for the root / unreachable nodes.
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, LinkId)> {
        self.parent[n.index()]
    }

    /// The path from the root to `n` as a list of link ids.
    pub fn path_links(&self, n: NodeId) -> Vec<LinkId> {
        let mut out = Vec::new();
        let mut cur = n;
        while let Some((p, l)) = self.parent[cur.index()] {
            out.push(l);
            cur = p;
        }
        out.reverse();
        out
    }

    /// Whether the tree path from the root to `n` traverses `link`.
    pub fn path_uses_link(&self, n: NodeId, link: LinkId) -> bool {
        let mut cur = n;
        while let Some((p, l)) = self.parent[cur.index()] {
            if l == link {
                return true;
            }
            cur = p;
        }
        false
    }

    /// All nodes whose tree path from the root traverses `link` — i.e. the
    /// set "downstream of the congested link" for this source. Sorted.
    pub fn downstream_of(&self, link: LinkId) -> Vec<NodeId> {
        let n = self.dist.len();
        (0..n as u32)
            .map(NodeId)
            .filter(|&v| self.path_uses_link(v, link))
            .collect()
    }

    /// The set of nodes a multicast from the root with initial TTL `ttl`
    /// reaches, honoring per-link thresholds. We follow the mrouted
    /// convention: a packet is forwarded across a link iff its current TTL
    /// is at least the link's threshold (and nonzero), and the TTL is
    /// decremented by the crossing (Section VII-B3). With all thresholds 1,
    /// TTL `k` therefore reaches exactly the nodes within `k` hops.
    pub fn ttl_reach(&self, topo: &Topology, ttl: u8) -> Vec<NodeId> {
        let mut out = vec![self.root];
        let mut stack = vec![(self.root, ttl)];
        while let Some((v, t)) = stack.pop() {
            for &(c, l) in self.children(v) {
                if t >= 1 && t >= topo.link(l).threshold {
                    out.push(c);
                    stack.push((c, t - 1));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The minimum initial TTL needed for a multicast from the root to reach
    /// `target`, or `None` if no TTL suffices (only possible with thresholds
    /// above 255 semantics; with u8 thresholds 255 always suffices on paths
    /// shorter than 255 hops).
    pub fn min_ttl_to_reach(&self, topo: &Topology, target: NodeId) -> Option<u8> {
        if target == self.root {
            return Some(0);
        }
        if !self.reachable(target) {
            return None;
        }
        // Walk the path; crossing the i-th link (1-based from the sender)
        // the packet's TTL is ttl − (i−1), which must be ≥ threshold(l_i)
        // and ≥ 1. So ttl ≥ max_i (max(threshold(l_i), 1) + i − 1).
        let links = self.path_links(target);
        let mut need = 0u32;
        for (i, l) in links.iter().enumerate() {
            need = need.max(topo.link(*l).threshold.max(1) as u32 + i as u32);
        }
        u8::try_from(need).ok()
    }
}

fn nanos(n: u64) -> SimDuration {
    SimDuration::from_secs_f64(n as f64 / 1e9)
}

/// A cache of per-root shortest-path trees, computed lazily.
///
/// Forwarding consults this on every multicast transmission; caching keeps a
/// 100-round adaptive experiment on a 1000-node tree fast.
#[derive(Clone, Debug, Default)]
pub struct SptCache {
    // Indexed directly by root node id — forwarding hits this once per
    // hop, and a Vec probe beats hashing the NodeId every time. The Vec
    // grows to the highest root seen (node ids are dense by construction).
    trees: Vec<Option<std::rc::Rc<SpTree>>>,
}

impl SptCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The SPT rooted at `root`, computing it on first use.
    pub fn get(&mut self, topo: &Topology, root: NodeId) -> std::rc::Rc<SpTree> {
        self.get_masked(topo, root, None)
    }

    /// The SPT rooted at `root` over the currently-up links, computing it on
    /// first use. Callers must [`SptCache::invalidate`] whenever the mask
    /// changes — the cache is keyed by root only.
    pub fn get_masked(
        &mut self,
        topo: &Topology,
        root: NodeId,
        link_up: Option<&[bool]>,
    ) -> std::rc::Rc<SpTree> {
        let i = root.index();
        if i >= self.trees.len() {
            self.trees.resize(i + 1, None);
        }
        self.trees[i]
            .get_or_insert_with(|| std::rc::Rc::new(SpTree::compute_masked(topo, root, link_up)))
            .clone()
    }

    /// Drop all cached trees (call after mutating the topology).
    pub fn invalidate(&mut self) {
        self.trees.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bounded_degree_tree, chain, star};
    use crate::topology::TopologyBuilder;

    #[test]
    fn chain_distances() {
        let t = chain(5);
        let spt = SpTree::compute(&t, NodeId(0));
        for i in 0..5u32 {
            assert_eq!(spt.distance(NodeId(i)), SimDuration::from_secs(i as u64));
            assert_eq!(spt.hop_count(NodeId(i)), i);
        }
    }

    #[test]
    fn star_children() {
        let t = star(4);
        let spt = SpTree::compute(&t, NodeId(1));
        // From a leaf, hub is the only child; other leaves hang off the hub.
        assert_eq!(spt.children(NodeId(1)).len(), 1);
        assert_eq!(spt.children(NodeId(0)).len(), 3);
        assert_eq!(spt.distance(NodeId(3)), SimDuration::from_secs(2));
    }

    #[test]
    fn tie_break_prefers_smaller_parent() {
        // Square: 0-1, 0-2, 1-3, 2-3. From 0, node 3 is at distance 2 via
        // both 1 and 2; the deterministic rule picks parent 1.
        let mut b = TopologyBuilder::new(4);
        b.link(NodeId(0), NodeId(1));
        b.link(NodeId(0), NodeId(2));
        b.link(NodeId(1), NodeId(3));
        b.link(NodeId(2), NodeId(3));
        let t = b.build();
        let spt = SpTree::compute(&t, NodeId(0));
        assert_eq!(spt.parent(NodeId(3)).unwrap().0, NodeId(1));
    }

    #[test]
    fn path_links_and_downstream() {
        let t = chain(6);
        let spt = SpTree::compute(&t, NodeId(0));
        let links = spt.path_links(NodeId(3));
        assert_eq!(links.len(), 3);
        let l23 = t.link_between(NodeId(2), NodeId(3)).unwrap();
        assert!(spt.path_uses_link(NodeId(5), l23));
        assert!(!spt.path_uses_link(NodeId(2), l23));
        assert_eq!(
            spt.downstream_of(l23),
            vec![NodeId(3), NodeId(4), NodeId(5)]
        );
    }

    #[test]
    fn ttl_reach_unit_thresholds() {
        let t = chain(10);
        let spt = SpTree::compute(&t, NodeId(0));
        // TTL k reaches nodes 0..=k with all thresholds 1.
        let reach = spt.ttl_reach(&t, 3);
        assert_eq!(reach, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(spt.min_ttl_to_reach(&t, NodeId(3)), Some(3));
        assert_eq!(spt.min_ttl_to_reach(&t, NodeId(0)), Some(0));
    }

    #[test]
    fn ttl_reach_with_thresholds() {
        let mut t = chain(4);
        let l12 = t.link_between(NodeId(1), NodeId(2)).unwrap();
        t.set_threshold(l12, 16); // an Mbone region boundary
        let spt = SpTree::compute(&t, NodeId(0));
        assert_eq!(spt.ttl_reach(&t, 5), vec![NodeId(0), NodeId(1)]);
        // Crossing the 2nd link (1-2) needs ttl − 1 >= 16 → ttl >= 17.
        assert_eq!(spt.min_ttl_to_reach(&t, NodeId(2)), Some(17));
        assert!(spt.ttl_reach(&t, 17).contains(&NodeId(2)));
        assert!(!spt.ttl_reach(&t, 16).contains(&NodeId(2)));
    }

    #[test]
    fn bounded_tree_spt_matches_bfs() {
        let t = bounded_degree_tree(100, 4);
        let spt = SpTree::compute(&t, NodeId(17));
        // In a tree the SPT is the tree itself: every non-root has a parent.
        for v in t.nodes() {
            assert!(spt.reachable(v));
        }
        // Distances satisfy the triangle property along tree edges.
        for (_, l) in t.links() {
            let da = spt.distance(l.a).as_secs_f64();
            let db = spt.distance(l.b).as_secs_f64();
            assert!((da - db).abs() < 1.0 + 1e-9);
        }
    }

    #[test]
    fn masked_compute_routes_around_down_links() {
        // Square: 0-1, 0-2, 1-3, 2-3. With 1-3 down, node 3 must be reached
        // via 2 instead of the usual smaller-parent tie-break via 1.
        let mut b = TopologyBuilder::new(4);
        b.link(NodeId(0), NodeId(1));
        b.link(NodeId(0), NodeId(2));
        let l13 = b.link(NodeId(1), NodeId(3));
        b.link(NodeId(2), NodeId(3));
        let t = b.build();
        let mut mask = vec![true; t.num_links()];
        mask[l13.index()] = false;
        let spt = SpTree::compute_masked(&t, NodeId(0), Some(&mask));
        assert_eq!(spt.parent(NodeId(3)).unwrap().0, NodeId(2));
        // Masking both of 3's links makes it unreachable.
        mask[t.link_between(NodeId(2), NodeId(3)).unwrap().index()] = false;
        let spt = SpTree::compute_masked(&t, NodeId(0), Some(&mask));
        assert!(!spt.reachable(NodeId(3)));
        assert!(spt.reachable(NodeId(1)));
    }

    #[test]
    fn cache_returns_same_tree() {
        let t = chain(5);
        let mut cache = SptCache::new();
        let a = cache.get(&t, NodeId(2));
        let b = cache.get(&t, NodeId(2));
        assert!(std::rc::Rc::ptr_eq(&a, &b));
        cache.invalidate();
        let c = cache.get(&t, NodeId(2));
        assert!(!std::rc::Rc::ptr_eq(&a, &c));
    }
}

//! The discrete-event simulator.
//!
//! [`Simulator`] owns a [`Topology`], a set of per-node applications (only
//! session members need one — interior routers are pure forwarders), group
//! membership, a [`LossModel`], and the event queue. Packets are forwarded
//! hop by hop along the shortest-path tree rooted at the transmitting node,
//! pruned to subtrees containing group members (DVMRP-style), honoring TTL
//! thresholds and administrative scope boundaries at each hop.
//!
//! Applications interact with the world exclusively through [`Ctx`]: they
//! multicast packets, join/leave groups, and set or cancel timers. All
//! effects are buffered as actions and applied when the handler returns,
//! which keeps handlers simple and the simulation deterministic.

use crate::effects::{ChannelEffects, Ideal};
use crate::event::{EventKind, EventQueue, TimerId};
use crate::loss::{LossModel, NoLoss};
use crate::packet::{GroupId, Packet, PacketId, SendOptions};
use crate::routing::SptCache;
use crate::stats::{Stats, Trace, TraceEvent};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// A protocol agent living on one node.
///
/// Handlers receive a [`Ctx`] through which all side effects flow.
pub trait Application {
    /// Called once when the simulation starts (before any event fires).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to a group this node has joined arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet);

    /// A previously set timer fired. `token` is the value passed to
    /// [`Ctx::set_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);
}

/// Buffered side effect of an application handler.
#[derive(Debug)]
enum Action {
    Multicast {
        group: GroupId,
        payload: Bytes,
        opts: SendOptions,
    },
    Unicast {
        dest: NodeId,
        payload: Bytes,
        opts: SendOptions,
    },
    Join(GroupId),
    Leave(GroupId),
    SetTimer {
        at: SimTime,
        id: TimerId,
        token: u64,
    },
    CancelTimer(TimerId),
}

/// The application's window onto the simulator.
pub struct Ctx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node this handler runs on.
    pub node: NodeId,
    rng: &'a mut StdRng,
    actions: &'a mut Vec<(NodeId, Action)>,
    next_timer: &'a mut u64,
}

impl Ctx<'_> {
    /// Deterministic per-simulation random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Multicast `payload` to `group` with default options (global TTL).
    pub fn multicast(&mut self, group: GroupId, payload: Bytes) {
        self.multicast_with(group, payload, SendOptions::default());
    }

    /// Multicast with explicit TTL / scope / flow options.
    pub fn multicast_with(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.actions.push((
            self.node,
            Action::Multicast {
                group,
                payload,
                opts,
            },
        ));
    }

    /// Send `payload` to a single node along the shortest path (hop by hop,
    /// subject to loss). SRM itself never unicasts — this exists for the
    /// sender-based baseline protocols of Section II-A and the unicast-NACK
    /// comparison of Section VI \[29\].
    pub fn unicast(&mut self, dest: NodeId, payload: Bytes, opts: SendOptions) {
        self.actions
            .push((self.node, Action::Unicast { dest, payload, opts }));
    }

    /// Join a multicast group (takes effect after the handler returns).
    pub fn join(&mut self, group: GroupId) {
        self.actions.push((self.node, Action::Join(group)));
    }

    /// Leave a multicast group.
    pub fn leave(&mut self, group: GroupId) {
        self.actions.push((self.node, Action::Leave(group)));
    }

    /// Arm a one-shot timer `delay` from now; `token` is returned to
    /// [`Application::on_timer`]. The returned [`TimerId`] can cancel it.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push((
            self.node,
            Action::SetTimer {
                at: self.now + delay,
                id,
                token,
            },
        ));
        id
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push((self.node, Action::CancelTimer(id)));
    }
}

/// The discrete-event simulator. Generic over the application type.
pub struct Simulator<A: Application> {
    topo: Topology,
    apps: Vec<Option<A>>,
    groups: BTreeMap<GroupId, BTreeSet<NodeId>>,
    membership_version: u64,
    queue: EventQueue,
    loss: Box<dyn LossModel>,
    effects: Box<dyn ChannelEffects>,
    spt: SptCache,
    prune_cache: HashMap<(u32, u32), (u64, Rc<Vec<bool>>)>,
    rng: StdRng,
    now: SimTime,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    next_packet: u64,
    actions: Vec<(NodeId, Action)>,
    /// Traffic counters.
    pub stats: Stats,
    /// Optional event log (see [`Trace::enable`]).
    pub trace: Trace,
    started: bool,
}

impl<A: Application> Simulator<A> {
    /// Build a simulator over `topo` with the given RNG seed and no loss.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let links = topo.num_links();
        Simulator {
            topo,
            apps: Vec::new(),
            groups: BTreeMap::new(),
            membership_version: 0,
            queue: EventQueue::new(),
            loss: Box::new(NoLoss),
            effects: Box::new(Ideal),
            spt: SptCache::new(),
            prune_cache: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            next_timer: 0,
            cancelled: HashSet::new(),
            next_packet: 0,
            actions: Vec::new(),
            stats: Stats::new(links),
            trace: Trace::default(),
            started: false,
        }
    }

    /// Replace the loss model.
    pub fn set_loss_model(&mut self, m: Box<dyn LossModel>) {
        self.loss = m;
    }

    /// Replace the channel-effects model (duplication / reordering jitter).
    pub fn set_channel_effects(&mut self, e: Box<dyn ChannelEffects>) {
        self.effects = e;
    }

    /// Mutable access to the loss model (e.g. to re-arm a one-shot drop).
    ///
    /// The concrete type must be known to the caller.
    pub fn loss_model_mut(&mut self) -> &mut dyn LossModel {
        self.loss.as_mut()
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Install an application on `node`. Replaces any existing one.
    pub fn install(&mut self, node: NodeId, app: A) {
        if self.apps.len() <= node.index() {
            self.apps.resize_with(self.topo.num_nodes(), || None);
        }
        self.apps[node.index()] = Some(app);
    }

    /// Shared access to the application on `node`, if any.
    pub fn app(&self, node: NodeId) -> Option<&A> {
        self.apps.get(node.index()).and_then(|a| a.as_ref())
    }

    /// Mutable access to the application on `node`, if any.
    ///
    /// Use [`Simulator::exec`] instead when the application needs a [`Ctx`].
    pub fn app_mut(&mut self, node: NodeId) -> Option<&mut A> {
        self.apps.get_mut(node.index()).and_then(|a| a.as_mut())
    }

    /// Nodes with an installed application, ascending.
    pub fn app_nodes(&self) -> Vec<NodeId> {
        self.apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|_| NodeId(i as u32)))
            .collect()
    }

    /// Subscribe `node` to `group` (simulator-level; apps can also join via
    /// [`Ctx::join`]).
    pub fn join(&mut self, node: NodeId, group: GroupId) {
        if self.groups.entry(group).or_default().insert(node) {
            self.membership_version += 1;
        }
    }

    /// Unsubscribe `node` from `group`.
    pub fn leave(&mut self, node: NodeId, group: GroupId) {
        if let Some(set) = self.groups.get_mut(&group) {
            if set.remove(&node) {
                self.membership_version += 1;
            }
        }
    }

    /// Current members of `group`, ascending.
    pub fn members(&self, group: GroupId) -> Vec<NodeId> {
        self.groups
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Run `f` on the application at `node` with a live [`Ctx`], applying
    /// any actions it takes. This is how experiment drivers inject work
    /// ("the source now multicasts packet k").
    ///
    /// # Panics
    /// Panics if `node` has no application.
    pub fn exec<R>(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_>) -> R) -> R {
        self.ensure_started();
        let mut app = self.apps[node.index()]
            .take()
            .unwrap_or_else(|| panic!("no application installed on {node:?}"));
        let r = {
            let mut ctx = Ctx {
                now: self.now,
                node,
                rng: &mut self.rng,
                actions: &mut self.actions,
                next_timer: &mut self.next_timer,
            };
            f(&mut app, &mut ctx)
        };
        self.apps[node.index()] = Some(app);
        self.apply_actions();
        r
    }

    /// Inject a multicast transmission from `node` without going through an
    /// application handler.
    pub fn send_from(&mut self, node: NodeId, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.originate(node, None, group, payload, opts);
    }

    /// Inject a unicast transmission from `node` to `dest`.
    pub fn send_unicast_from(
        &mut self,
        node: NodeId,
        dest: NodeId,
        payload: Bytes,
        opts: SendOptions,
    ) {
        self.originate(node, Some(dest), GroupId(u32::MAX), payload, opts);
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events += 1;
        match kind {
            EventKind::Hop { node, via, pkt } => self.process_hop(node, via, pkt),
            EventKind::Timer { node, id, token } => {
                if self.cancelled.remove(&id) {
                    return true;
                }
                if self.apps.get(node.index()).map_or(false, |a| a.is_some()) {
                    self.dispatch(node, |app, ctx| app.on_timer(ctx, token));
                }
            }
        }
        true
    }

    /// Run until the queue is empty or the next event is after `limit`.
    /// Advances `now` to `limit` if the queue drains first... no: `now`
    /// ends at the time of the last processed event (or `limit` if events
    /// remain beyond it).
    pub fn run_until(&mut self, limit: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > limit {
                break;
            }
            self.step();
        }
        if self.now < limit {
            self.now = limit;
        }
    }

    /// Run until the queue is empty, bailing out after `limit`.
    ///
    /// Returns `true` if the queue drained, `false` if the limit was hit.
    pub fn run_until_idle(&mut self, limit: SimTime) -> bool {
        self.ensure_started();
        loop {
            match self.queue.peek_time() {
                None => return true,
                Some(t) if t > limit => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Pending event count (for tests and debugging).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if self.apps.len() < self.topo.num_nodes() {
            self.apps.resize_with(self.topo.num_nodes(), || None);
        }
        for i in 0..self.apps.len() {
            if self.apps[i].is_some() {
                self.dispatch(NodeId(i as u32), |app, ctx| app.on_start(ctx));
            }
        }
    }

    /// Call an app handler and then apply its actions.
    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_>)) {
        let Some(mut app) = self.apps[node.index()].take() else {
            return;
        };
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                rng: &mut self.rng,
                actions: &mut self.actions,
                next_timer: &mut self.next_timer,
            };
            f(&mut app, &mut ctx);
        }
        self.apps[node.index()] = Some(app);
        self.apply_actions();
    }

    fn apply_actions(&mut self) {
        let actions = std::mem::take(&mut self.actions);
        for (node, a) in actions {
            match a {
                Action::Multicast {
                    group,
                    payload,
                    opts,
                } => self.originate(node, None, group, payload, opts),
                Action::Unicast { dest, payload, opts } => {
                    self.originate(node, Some(dest), GroupId(u32::MAX), payload, opts)
                }
                Action::Join(g) => self.join(node, g),
                Action::Leave(g) => self.leave(node, g),
                Action::SetTimer { at, id, token } => {
                    self.queue.schedule(at, EventKind::Timer { node, id, token });
                }
                Action::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn originate(
        &mut self,
        node: NodeId,
        dest: Option<NodeId>,
        group: GroupId,
        payload: Bytes,
        opts: SendOptions,
    ) {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let size = if opts.size == 0 {
            payload.len() as u32
        } else {
            opts.size
        };
        let pkt = Packet {
            id,
            src: node,
            group,
            dest,
            ttl: opts.ttl,
            initial_ttl: opts.ttl,
            admin_scoped: opts.admin_scoped,
            flow: opts.flow,
            size,
            payload,
        };
        self.stats.record_send(opts.flow);
        self.trace.push(TraceEvent::Send {
            at: self.now,
            node,
            pkt: id,
            flow: opts.flow,
        });
        // Enter the forwarding engine at the origin node "now".
        self.queue.schedule(
            self.now,
            EventKind::Hop {
                node,
                via: None,
                pkt,
            },
        );
    }

    fn process_hop(&mut self, node: NodeId, _via: Option<crate::topology::LinkId>, pkt: Packet) {
        if let Some(dest) = pkt.dest {
            self.process_unicast_hop(node, dest, pkt);
            return;
        }
        // Deliver to the local application if this node is a member of the
        // group (the origin does not loop its own packets back up).
        if node != pkt.src {
            let is_member = self
                .groups
                .get(&pkt.group)
                .map_or(false, |s| s.contains(&node));
            if is_member && self.apps.get(node.index()).map_or(false, |a| a.is_some()) {
                self.deliver(node, &pkt);
            }
        }
        // Forward along the source-rooted shortest-path tree, pruned to
        // subtrees containing members.
        let tree = self.spt.get(&self.topo, pkt.src);
        let mask = self.forward_mask(pkt.src, pkt.group);
        if pkt.ttl == 0 {
            return;
        }
        for &(child, link) in tree.children(node) {
            if !mask[child.index()] {
                continue; // pruned: no members in that subtree
            }
            self.cross_link(node, child, link, &pkt);
        }
    }

    /// Forward a unicast packet one hop toward `dest` (or deliver it).
    fn process_unicast_hop(&mut self, node: NodeId, dest: NodeId, pkt: Packet) {
        if node == dest {
            if self.apps.get(node.index()).map_or(false, |a| a.is_some()) {
                self.deliver(node, &pkt);
            }
            return;
        }
        if pkt.ttl == 0 {
            return;
        }
        // The next hop toward `dest` is this node's parent in the SPT
        // rooted at `dest` (links are symmetric).
        let tree = self.spt.get(&self.topo, dest);
        let Some((next, link)) = tree.parent(node) else {
            return; // unreachable destination
        };
        self.cross_link(node, next, link, &pkt);
    }

    fn deliver(&mut self, node: NodeId, pkt: &Packet) {
        self.stats.record_delivery(pkt.flow);
        self.trace.push(TraceEvent::Deliver {
            at: self.now,
            node,
            pkt: pkt.id,
            flow: pkt.flow,
        });
        let p = pkt.clone();
        self.dispatch(node, |app, ctx| app.on_packet(ctx, &p));
    }

    /// Apply TTL/scope/loss/effects and schedule the packet's arrival(s) at
    /// the far end of `link`.
    fn cross_link(&mut self, node: NodeId, next: NodeId, link: crate::topology::LinkId, pkt: &Packet) {
        let l = self.topo.link(link);
        // mrouted convention: forward iff the current TTL clears the link
        // threshold; the crossing decrements it (Section VII-B3).
        if pkt.ttl < l.threshold || pkt.ttl == 0 {
            return;
        }
        if pkt.admin_scoped && self.topo.zone(node) != self.topo.zone(next) {
            return; // administrative scope boundary (Section VII-B1)
        }
        if self.loss.should_drop(self.now, link, node, next, pkt) {
            self.stats.record_drop(link);
            self.trace.push(TraceEvent::Drop {
                at: self.now,
                link,
                pkt: pkt.id,
            });
            return;
        }
        let delay = l.delay;
        let copies = self.effects.copies(self.now, link, node, next, pkt).max(1);
        for _ in 0..copies {
            let jitter = self.effects.jitter(self.now, link, node, next, pkt);
            let at = self.now + delay + jitter;
            self.stats.record_hop(link, pkt.flow, pkt.size);
            self.trace.push(TraceEvent::Forward {
                at,
                link,
                from: node,
                to: next,
                pkt: pkt.id,
            });
            let mut fwd = pkt.clone();
            fwd.ttl = pkt.ttl - 1;
            self.queue.schedule(
                at,
                EventKind::Hop {
                    node: next,
                    via: Some(link),
                    pkt: fwd,
                },
            );
        }
    }

    /// `mask[v]` is true iff the subtree of the SPT rooted at `v` contains a
    /// member of `group` — i.e. packets must be forwarded toward `v`.
    fn forward_mask(&mut self, root: NodeId, group: GroupId) -> Rc<Vec<bool>> {
        let key = (root.0, group.0);
        if let Some((ver, mask)) = self.prune_cache.get(&key) {
            if *ver == self.membership_version {
                return mask.clone();
            }
        }
        let tree = self.spt.get(&self.topo, root);
        let mut mask = vec![false; self.topo.num_nodes()];
        if let Some(members) = self.groups.get(&group) {
            for &m in members {
                let mut cur = m;
                while !mask[cur.index()] {
                    mask[cur.index()] = true;
                    match tree.parent(cur) {
                        Some((p, _)) => cur = p,
                        None => break,
                    }
                }
            }
        }
        let mask = Rc::new(mask);
        self.prune_cache
            .insert(key, (self.membership_version, mask.clone()));
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chain, star};
    use crate::loss::OneShotLinkDrop;
    use crate::packet::flow;

    /// A trivial app that records everything it receives and can echo.
    #[derive(Default)]
    struct Recorder {
        got: Vec<(SimTime, u64)>, // (time, first payload byte widened)
        timers: Vec<u64>,
    }

    impl Application for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
            let tag = pkt.payload.first().copied().unwrap_or(0) as u64;
            self.got.push((ctx.now, tag));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            let _ = ctx;
            self.timers.push(token);
        }
    }

    const G: GroupId = GroupId(1);

    fn setup_chain(n: usize) -> Simulator<Recorder> {
        let topo = chain(n);
        let mut sim = Simulator::new(topo, 1);
        for i in 0..n {
            sim.install(NodeId(i as u32), Recorder::default());
            sim.join(NodeId(i as u32), G);
        }
        sim
    }

    #[test]
    fn multicast_reaches_all_members_with_link_delay() {
        let mut sim = setup_chain(5);
        sim.send_from(NodeId(0), G, Bytes::from_static(&[7]), SendOptions::default());
        assert!(sim.run_until_idle(SimTime::from_secs(100)));
        for i in 1..5u32 {
            let app = sim.app(NodeId(i)).unwrap();
            assert_eq!(app.got.len(), 1, "node {i}");
            assert_eq!(app.got[0].0, SimTime::from_secs(i as u64));
        }
        // The origin does not hear its own packet.
        assert!(sim.app(NodeId(0)).unwrap().got.is_empty());
    }

    #[test]
    fn one_copy_per_link() {
        let mut sim = setup_chain(5);
        sim.send_from(NodeId(2), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        for l in sim.stats.links.iter() {
            assert_eq!(l.packets, 1);
        }
    }

    #[test]
    fn pruning_skips_memberless_subtrees() {
        let topo = star(4);
        let mut sim: Simulator<Recorder> = Simulator::new(topo, 1);
        // Only leaves 1 and 2 are members; 3 and 4 are not.
        for i in [1u32, 2] {
            sim.install(NodeId(i), Recorder::default());
            sim.join(NodeId(i), G);
        }
        sim.send_from(NodeId(1), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        // Links to 3 and 4 never carry the packet: exactly 2 link crossings
        // (1→hub, hub→2).
        assert_eq!(sim.stats.total_hops(), 2);
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
    }

    #[test]
    fn one_shot_drop_partitions_downstream() {
        let mut sim = setup_chain(5);
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l23, NodeId(0), flow::DATA)));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().got.len(), 0);
        assert_eq!(sim.app(NodeId(4)).unwrap().got.len(), 0);
        // Second packet passes (one-shot).
        sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(4)).unwrap().got.len(), 1);
    }

    #[test]
    fn ttl_limits_reach() {
        let mut sim = setup_chain(6);
        sim.send_from(
            NodeId(0),
            G,
            Bytes::from_static(&[1]),
            SendOptions::default().with_ttl(2),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().got.len(), 0);
    }

    #[test]
    fn admin_scope_blocks_zone_boundary() {
        let mut topo = chain(4);
        topo.set_zone(NodeId(2), 1);
        topo.set_zone(NodeId(3), 1);
        let mut sim: Simulator<Recorder> = Simulator::new(topo, 1);
        for i in 0..4u32 {
            sim.install(NodeId(i), Recorder::default());
            sim.join(NodeId(i), G);
        }
        sim.send_from(
            NodeId(0),
            G,
            Bytes::from_static(&[1]),
            SendOptions::default().admin_scoped(),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(1)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 0);
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim = setup_chain(2);
        let id = sim.exec(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(5), 42)
        });
        sim.exec(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(1), 7);
        });
        sim.exec(NodeId(0), |_, ctx| ctx.cancel_timer(id));
        sim.run_until_idle(SimTime::from_secs(100));
        let app = sim.app(NodeId(0)).unwrap();
        assert_eq!(app.timers, vec![7]);
    }

    #[test]
    fn membership_change_invalidates_prune_cache() {
        let topo = star(3);
        let mut sim: Simulator<Recorder> = Simulator::new(topo, 1);
        for i in 1..=3u32 {
            sim.install(NodeId(i), Recorder::default());
        }
        sim.join(NodeId(1), G);
        sim.send_from(NodeId(1), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 0);
        sim.join(NodeId(2), G);
        sim.send_from(NodeId(1), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
    }

    #[test]
    fn run_until_advances_clock() {
        let mut sim = setup_chain(2);
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn unicast_follows_shortest_path() {
        let mut sim = setup_chain(6);
        sim.send_unicast_from(
            NodeId(1),
            NodeId(4),
            Bytes::from_static(&[9]),
            SendOptions::default(),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        // Only the destination hears it, after 3 link delays.
        let a4 = sim.app(NodeId(4)).unwrap();
        assert_eq!(a4.got, vec![(SimTime::from_secs(3), 9)]);
        for i in [0u32, 2, 3, 5] {
            assert!(sim.app(NodeId(i)).unwrap().got.is_empty(), "node {i}");
        }
        // Exactly 3 link crossings.
        assert_eq!(sim.stats.total_hops(), 3);
    }

    #[test]
    fn unicast_subject_to_loss() {
        let mut sim = setup_chain(4);
        let l12 = sim.topology().link_between(NodeId(1), NodeId(2)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l12, NodeId(0), flow::DATA)));
        sim.send_unicast_from(
            NodeId(0),
            NodeId(3),
            Bytes::from_static(&[1]),
            SendOptions::default(),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        assert!(sim.app(NodeId(3)).unwrap().got.is_empty());
    }

    #[test]
    fn duplication_effects_deliver_twice() {
        let mut sim = setup_chain(2);
        sim.set_channel_effects(Box::new(crate::effects::RandomEffects::new(
            1.0, // always duplicate
            SimDuration::ZERO,
            1,
        )));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[5]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(1)).unwrap().got.len(), 2);
    }

    #[test]
    fn jitter_can_reorder_packets() {
        // Two packets sent back to back with large jitter: over many seeds
        // at least one run reorders. Use a fixed seed known to reorder by
        // checking relative order of payload tags.
        let mut reordered = false;
        for seed in 0..20u64 {
            let mut sim = setup_chain(2);
            sim.set_channel_effects(Box::new(crate::effects::RandomEffects::new(
                0.0,
                SimDuration::from_secs(5),
                seed,
            )));
            sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
            sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
            sim.run_until_idle(SimTime::from_secs(100));
            let tags: Vec<u64> = sim.app(NodeId(1)).unwrap().got.iter().map(|&(_, t)| t).collect();
            if tags == vec![2, 1] {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "jitter produced a reordering in 20 seeds");
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim = setup_chain(3);
        sim.trace.enable();
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        let sends = sim.trace.count(|e| matches!(e, TraceEvent::Send { .. }));
        let fwds = sim.trace.count(|e| matches!(e, TraceEvent::Forward { .. }));
        let dels = sim.trace.count(|e| matches!(e, TraceEvent::Deliver { .. }));
        assert_eq!(sends, 1);
        assert_eq!(fwds, 2);
        assert_eq!(dels, 2);
    }
}

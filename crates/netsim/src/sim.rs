//! The discrete-event simulator.
//!
//! [`Simulator`] owns a [`Topology`], a set of per-node applications (only
//! session members need one — interior routers are pure forwarders), group
//! membership, a [`LossModel`], and the event queue. Packets are forwarded
//! hop by hop along the shortest-path tree rooted at the transmitting node,
//! pruned to subtrees containing group members (DVMRP-style), honoring TTL
//! thresholds and administrative scope boundaries at each hop.
//!
//! Applications interact with the world exclusively through [`Ctx`]: they
//! multicast packets, join/leave groups, and set or cancel timers. All
//! effects are buffered as actions and applied when the handler returns,
//! which keeps handlers simple and the simulation deterministic.

use crate::effects::{ChannelEffects, Ideal};
use crate::event::{EventKind, EventQueue, TimerId};
use crate::faults::{FaultEvent, FaultPlan, NodeClock};
use crate::loss::{LossModel, NoLoss};
use crate::packet::{GroupId, Packet, PacketBody, PacketId, SendOptions};
use crate::routing::SptCache;
use crate::stats::{Stats, Trace, TraceEvent};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, Topology};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// A protocol agent living on one node.
///
/// Handlers receive a [`Ctx`] through which all side effects flow.
pub trait Application {
    /// Called once when the simulation starts (before any event fires).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to a group this node has joined arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet);

    /// A previously set timer fired. `token` is the value passed to
    /// [`Ctx::set_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// The node's host crashed ([`crate::FaultEvent::NodeCrash`]): all
    /// protocol state is lost. Implementations should reset themselves to
    /// their just-constructed state (no [`Ctx`] — a dead host takes no
    /// actions). Pending timers and group memberships are discarded by the
    /// simulator itself.
    fn on_crash(&mut self) {}

    /// The node's host came back up ([`crate::FaultEvent::NodeRestart`]).
    /// Defaults to running [`Application::on_start`] again — protocols can
    /// override to rejoin as a late joiner.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.on_start(ctx);
    }
}

/// Buffered side effect of an application handler.
#[derive(Debug)]
enum Action {
    Multicast {
        group: GroupId,
        payload: Bytes,
        opts: SendOptions,
    },
    Unicast {
        dest: NodeId,
        payload: Bytes,
        opts: SendOptions,
    },
    Join(GroupId),
    Leave(GroupId),
    SetTimer {
        at: SimTime,
        id: TimerId,
        token: u64,
    },
    CancelTimer(TimerId),
}

/// The application's window onto the simulator.
pub struct Ctx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node this handler runs on.
    pub node: NodeId,
    local_now: SimTime,
    rng: &'a mut StdRng,
    actions: &'a mut Vec<(NodeId, Action)>,
    next_timer: &'a mut u64,
}

impl Ctx<'_> {
    /// Deterministic per-simulation random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// This node's *local* reading of the current time. Identical to
    /// [`Ctx::now`] unless a clock fault ([`crate::FaultEvent::ClockSkew`] /
    /// [`crate::FaultEvent::ClockDrift`]) is in effect on this node.
    /// Protocols should stamp outgoing timestamps with this, so clock faults
    /// are visible to their peers the way NTP error would be.
    pub fn local_now(&self) -> SimTime {
        self.local_now
    }

    /// Multicast `payload` to `group` with default options (global TTL).
    pub fn multicast(&mut self, group: GroupId, payload: Bytes) {
        self.multicast_with(group, payload, SendOptions::default());
    }

    /// Multicast with explicit TTL / scope / flow options.
    pub fn multicast_with(&mut self, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.actions.push((
            self.node,
            Action::Multicast {
                group,
                payload,
                opts,
            },
        ));
    }

    /// Send `payload` to a single node along the shortest path (hop by hop,
    /// subject to loss). SRM itself never unicasts — this exists for the
    /// sender-based baseline protocols of Section II-A and the unicast-NACK
    /// comparison of Section VI \[29\].
    pub fn unicast(&mut self, dest: NodeId, payload: Bytes, opts: SendOptions) {
        self.actions
            .push((self.node, Action::Unicast { dest, payload, opts }));
    }

    /// Join a multicast group (takes effect after the handler returns).
    pub fn join(&mut self, group: GroupId) {
        self.actions.push((self.node, Action::Join(group)));
    }

    /// Leave a multicast group.
    pub fn leave(&mut self, group: GroupId) {
        self.actions.push((self.node, Action::Leave(group)));
    }

    /// Arm a one-shot timer `delay` from now; `token` is returned to
    /// [`Application::on_timer`]. The returned [`TimerId`] can cancel it.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push((
            self.node,
            Action::SetTimer {
                at: self.now + delay,
                id,
                token,
            },
        ));
        id
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push((self.node, Action::CancelTimer(id)));
    }
}

/// Per-(source, group) forwarding state, computed once per membership
/// version: `member[v]` says whether node `v` is in the group (the
/// delivery check), `reach[v]` whether the SPT subtree rooted at `v`
/// contains a member (the DVMRP prune check). Combining both in one
/// cached struct gives the hot path two direct `Vec` probes per hop in
/// place of BTree lookups.
pub(crate) struct GroupMasks {
    pub(crate) member: Vec<bool>,
    pub(crate) reach: Vec<bool>,
}

/// Pruned-forwarding masks keyed by (source, group), tagged with the
/// membership version they were computed under.
type PruneCache = HashMap<(u32, u32), (u64, Rc<GroupMasks>)>;

/// The discrete-event simulator. Generic over the application type.
pub struct Simulator<A: Application> {
    topo: Topology,
    apps: Vec<Option<A>>,
    groups: BTreeMap<GroupId, BTreeSet<NodeId>>,
    membership_version: u64,
    queue: EventQueue,
    loss: Box<dyn LossModel>,
    /// Cached `loss.is_transparent()`: lets `cross_link` skip the virtual
    /// drop call entirely for the default [`NoLoss`] model.
    loss_transparent: bool,
    effects: Box<dyn ChannelEffects>,
    /// Cached `effects.is_ideal()`: the [`Ideal`] channel needs no
    /// copies/jitter calls per crossing.
    effects_ideal: bool,
    spt: SptCache,
    prune_cache: PruneCache,
    /// One-entry memo over `prune_cache`: consecutive hops of one fan-out
    /// all resolve the same (source, group) key, so this skips even the
    /// hash probe on the per-hop path.
    mask_memo: Option<((u32, u32), u64, Rc<GroupMasks>)>,
    rng: StdRng,
    now: SimTime,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    next_packet: u64,
    actions: Vec<(NodeId, Action)>,
    /// Traffic counters.
    pub stats: Stats,
    /// Optional event log (see [`Trace::enable`]).
    pub trace: Trace,
    started: bool,
    // --- fault state (see crate::faults) ---
    seed: u64,
    link_up: Vec<bool>,
    node_up: Vec<bool>,
    node_epoch: Vec<u64>,
    timer_epoch: HashMap<TimerId, u64>,
    clocks: Vec<NodeClock>,
    bursts: Vec<ActiveBurst>,
    /// Earliest `until` among `bursts` (`SimTime::MAX` when empty): expired
    /// bursts are purged only when `now` passes this, not on every packet.
    burst_min_until: SimTime,
    plan: Vec<(SimTime, FaultEvent)>,
    partition_cut: Vec<LinkId>,
}

/// A live [`FaultEvent::LossBurst`] episode with its own RNG stream.
struct ActiveBurst {
    link: Option<LinkId>,
    p: f64,
    until: SimTime,
    rng: StdRng,
}

impl<A: Application> Simulator<A> {
    /// Build a simulator over `topo` with the given RNG seed and no loss.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let links = topo.num_links();
        let nodes = topo.num_nodes();
        Simulator {
            topo,
            apps: Vec::new(),
            groups: BTreeMap::new(),
            membership_version: 0,
            queue: EventQueue::new(),
            loss: Box::new(NoLoss),
            loss_transparent: true,
            effects: Box::new(Ideal),
            effects_ideal: true,
            spt: SptCache::new(),
            prune_cache: HashMap::new(),
            mask_memo: None,
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            next_timer: 0,
            cancelled: HashSet::new(),
            next_packet: 0,
            actions: Vec::new(),
            stats: Stats::new(links),
            trace: Trace::default(),
            started: false,
            seed,
            link_up: vec![true; links],
            node_up: vec![true; nodes],
            node_epoch: vec![0; nodes],
            timer_epoch: HashMap::new(),
            clocks: vec![NodeClock::default(); nodes],
            bursts: Vec::new(),
            burst_min_until: SimTime::MAX,
            plan: Vec::new(),
            partition_cut: Vec::new(),
        }
    }

    /// Install a [`FaultPlan`]: every scripted event is scheduled on the
    /// ordinary event queue, so faulted runs stay deterministic. Call before
    /// (or during) the run; events in the past of `now` fire immediately on
    /// the next step.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let base = self.plan.len();
        for (i, (at, ev)) in plan.events.into_iter().enumerate() {
            self.queue
                .schedule(at.max(self.now), EventKind::Fault { index: base + i });
            self.plan.push((at, ev));
        }
    }

    /// Whether `link` is currently in service.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// Whether `node`'s application host is currently up.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.node_up[node.index()]
    }

    /// `node`'s local reading of instant `at` (see [`Ctx::local_now`]).
    pub fn local_time(&self, node: NodeId, at: SimTime) -> SimTime {
        self.clocks[node.index()].local_time(at)
    }

    /// Replace the loss model.
    pub fn set_loss_model(&mut self, m: Box<dyn LossModel>) {
        self.loss_transparent = m.is_transparent();
        self.loss = m;
    }

    /// Replace the channel-effects model (duplication / reordering jitter).
    pub fn set_channel_effects(&mut self, e: Box<dyn ChannelEffects>) {
        self.effects_ideal = e.is_ideal();
        self.effects = e;
    }

    /// Mutable access to the loss model (e.g. to re-arm a one-shot drop).
    ///
    /// The concrete type must be known to the caller.
    pub fn loss_model_mut(&mut self) -> &mut dyn LossModel {
        self.loss.as_mut()
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Install an application on `node`. Replaces any existing one.
    pub fn install(&mut self, node: NodeId, app: A) {
        if self.apps.len() <= node.index() {
            self.apps.resize_with(self.topo.num_nodes(), || None);
        }
        self.apps[node.index()] = Some(app);
    }

    /// Shared access to the application on `node`, if any.
    pub fn app(&self, node: NodeId) -> Option<&A> {
        self.apps.get(node.index()).and_then(|a| a.as_ref())
    }

    /// Mutable access to the application on `node`, if any.
    ///
    /// Use [`Simulator::exec`] instead when the application needs a [`Ctx`].
    pub fn app_mut(&mut self, node: NodeId) -> Option<&mut A> {
        self.apps.get_mut(node.index()).and_then(|a| a.as_mut())
    }

    /// Nodes with an installed application, ascending.
    pub fn app_nodes(&self) -> Vec<NodeId> {
        self.apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|_| NodeId(i as u32)))
            .collect()
    }

    /// Subscribe `node` to `group` (simulator-level; apps can also join via
    /// [`Ctx::join`]).
    pub fn join(&mut self, node: NodeId, group: GroupId) {
        if self.groups.entry(group).or_default().insert(node) {
            self.membership_version += 1;
        }
    }

    /// Unsubscribe `node` from `group`.
    pub fn leave(&mut self, node: NodeId, group: GroupId) {
        if let Some(set) = self.groups.get_mut(&group) {
            if set.remove(&node) {
                self.membership_version += 1;
            }
        }
    }

    /// Current members of `group`, ascending.
    pub fn members(&self, group: GroupId) -> Vec<NodeId> {
        self.groups
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Run `f` on the application at `node` with a live [`Ctx`], applying
    /// any actions it takes. This is how experiment drivers inject work
    /// ("the source now multicasts packet k").
    ///
    /// # Panics
    /// Panics if `node` has no application.
    pub fn exec<R>(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_>) -> R) -> R {
        self.ensure_started();
        assert!(
            self.node_up[node.index()],
            "exec on crashed node {node:?} (restart it first)"
        );
        let mut app = self.apps[node.index()]
            .take()
            .unwrap_or_else(|| panic!("no application installed on {node:?}"));
        let r = {
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_now: self.clocks[node.index()].local_time(self.now),
                rng: &mut self.rng,
                actions: &mut self.actions,
                next_timer: &mut self.next_timer,
            };
            f(&mut app, &mut ctx)
        };
        self.apps[node.index()] = Some(app);
        self.apply_actions();
        r
    }

    /// Inject a multicast transmission from `node` without going through an
    /// application handler.
    pub fn send_from(&mut self, node: NodeId, group: GroupId, payload: Bytes, opts: SendOptions) {
        self.originate(node, None, group, payload, opts);
    }

    /// Inject a unicast transmission from `node` to `dest`.
    pub fn send_unicast_from(
        &mut self,
        node: NodeId,
        dest: NodeId,
        payload: Bytes,
        opts: SendOptions,
    ) {
        self.originate(node, Some(dest), GroupId(u32::MAX), payload, opts);
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events += 1;
        match kind {
            EventKind::Hop { node, via, pkt } => self.process_hop(node, via, pkt),
            EventKind::Timer { node, id, token } => {
                let epoch = self.timer_epoch.remove(&id);
                if self.cancelled.remove(&id) {
                    return true;
                }
                // A timer armed before a crash must not fire after the
                // restart: its epoch no longer matches the node's.
                if epoch.is_some_and(|e| e != self.node_epoch[node.index()]) {
                    return true;
                }
                if !self.node_up[node.index()] {
                    return true;
                }
                if self.apps.get(node.index()).is_some_and(|a| a.is_some()) {
                    self.dispatch(node, |app, ctx| app.on_timer(ctx, token));
                }
            }
            EventKind::Fault { index } => self.apply_fault(index),
        }
        true
    }

    /// Run until the queue is empty or the next event is after `limit`.
    /// Advances `now` to `limit` if the queue drains first... no: `now`
    /// ends at the time of the last processed event (or `limit` if events
    /// remain beyond it).
    pub fn run_until(&mut self, limit: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > limit {
                break;
            }
            self.step();
        }
        if self.now < limit {
            self.now = limit;
        }
    }

    /// Run until the queue is empty, bailing out after `limit`.
    ///
    /// Returns `true` if the queue drained, `false` if the limit was hit.
    pub fn run_until_idle(&mut self, limit: SimTime) -> bool {
        self.ensure_started();
        loop {
            match self.queue.peek_time() {
                None => return true,
                Some(t) if t > limit => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Pending event count (for tests and debugging).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if self.apps.len() < self.topo.num_nodes() {
            self.apps.resize_with(self.topo.num_nodes(), || None);
        }
        for i in 0..self.apps.len() {
            if self.apps[i].is_some() {
                self.dispatch(NodeId(i as u32), |app, ctx| app.on_start(ctx));
            }
        }
    }

    /// Call an app handler and then apply its actions. No-op on a node
    /// whose host is down.
    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_>)) {
        if !self.node_up[node.index()] {
            return;
        }
        let Some(mut app) = self.apps[node.index()].take() else {
            return;
        };
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_now: self.clocks[node.index()].local_time(self.now),
                rng: &mut self.rng,
                actions: &mut self.actions,
                next_timer: &mut self.next_timer,
            };
            f(&mut app, &mut ctx);
        }
        self.apps[node.index()] = Some(app);
        self.apply_actions();
    }

    fn apply_actions(&mut self) {
        let actions = std::mem::take(&mut self.actions);
        for (node, a) in actions {
            match a {
                Action::Multicast {
                    group,
                    payload,
                    opts,
                } => self.originate(node, None, group, payload, opts),
                Action::Unicast { dest, payload, opts } => {
                    self.originate(node, Some(dest), GroupId(u32::MAX), payload, opts)
                }
                Action::Join(g) => self.join(node, g),
                Action::Leave(g) => self.leave(node, g),
                Action::SetTimer { at, id, token } => {
                    // Remember the node's epoch so the timer dies with a
                    // crash (see EventKind::Timer handling in step()).
                    self.timer_epoch.insert(id, self.node_epoch[node.index()]);
                    self.queue.schedule(at, EventKind::Timer { node, id, token });
                }
                Action::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn originate(
        &mut self,
        node: NodeId,
        dest: Option<NodeId>,
        group: GroupId,
        payload: Bytes,
        opts: SendOptions,
    ) {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let size = if opts.size == 0 {
            payload.len() as u32
        } else {
            opts.size
        };
        let pkt = Packet::new(
            opts.ttl,
            PacketBody {
                id,
                src: node,
                group,
                dest,
                initial_ttl: opts.ttl,
                admin_scoped: opts.admin_scoped,
                flow: opts.flow,
                size,
                payload,
            },
        );
        self.stats.record_send(opts.flow);
        if self.trace.is_enabled() {
            self.trace.push(TraceEvent::Send {
                at: self.now,
                node,
                pkt: id,
                flow: opts.flow,
            });
        }
        // Enter the forwarding engine at the origin node "now".
        self.queue.schedule(
            self.now,
            EventKind::Hop {
                node,
                via: None,
                pkt,
            },
        );
    }

    fn process_hop(&mut self, node: NodeId, _via: Option<crate::topology::LinkId>, pkt: Packet) {
        if let Some(dest) = pkt.dest {
            self.process_unicast_hop(node, dest, pkt);
            return;
        }
        // Deliver to the local application if this node is a member of the
        // group (the origin does not loop its own packets back up).
        if node != pkt.src {
            let masks = self.group_masks(pkt.src, pkt.group);
            if masks.member[node.index()]
                && self.apps.get(node.index()).is_some_and(|a| a.is_some())
            {
                self.deliver(node, &pkt);
            }
        }
        // Forward along the source-rooted shortest-path tree over the
        // currently-up links, pruned to subtrees containing members.
        if pkt.ttl == 0 {
            return;
        }
        // Re-resolve after delivery: the handler may have joined or left a
        // group, and forwarding must see the post-delivery membership (as
        // the direct BTree lookups here always did). The memo makes this a
        // version check when nothing changed.
        let masks = self.group_masks(pkt.src, pkt.group);
        let tree = self.spt.get_masked(&self.topo, pkt.src, Some(&self.link_up));
        for &(child, link) in tree.children(node) {
            if !masks.reach[child.index()] {
                continue; // pruned: no members in that subtree
            }
            self.cross_link(node, child, link, &pkt);
        }
    }

    /// Forward a unicast packet one hop toward `dest` (or deliver it).
    fn process_unicast_hop(&mut self, node: NodeId, dest: NodeId, pkt: Packet) {
        if node == dest {
            if self.apps.get(node.index()).is_some_and(|a| a.is_some()) {
                self.deliver(node, &pkt);
            }
            return;
        }
        if pkt.ttl == 0 {
            return;
        }
        // The next hop toward `dest` is this node's parent in the SPT
        // rooted at `dest` (links are symmetric).
        let tree = self.spt.get_masked(&self.topo, dest, Some(&self.link_up));
        let Some((next, link)) = tree.parent(node) else {
            return; // unreachable destination
        };
        self.cross_link(node, next, link, &pkt);
    }

    fn deliver(&mut self, node: NodeId, pkt: &Packet) {
        if !self.node_up[node.index()] {
            return; // crashed host: packet falls on the floor
        }
        self.stats.record_delivery(pkt.flow);
        if self.trace.is_enabled() {
            self.trace.push(TraceEvent::Deliver {
                at: self.now,
                node,
                pkt: pkt.id,
                flow: pkt.flow,
            });
        }
        let p = pkt.clone();
        self.dispatch(node, |app, ctx| app.on_packet(ctx, &p));
    }

    /// Apply TTL/scope/loss/effects and schedule the packet's arrival(s) at
    /// the far end of `link`.
    fn cross_link(&mut self, node: NodeId, next: NodeId, link: crate::topology::LinkId, pkt: &Packet) {
        let l = self.topo.link(link);
        // mrouted convention: forward iff the current TTL clears the link
        // threshold; the crossing decrements it (Section VII-B3).
        if pkt.ttl < l.threshold || pkt.ttl == 0 {
            return;
        }
        if pkt.admin_scoped && self.topo.zone(node) != self.topo.zone(next) {
            return; // administrative scope boundary (Section VII-B1)
        }
        if !self.link_up[link.index()] {
            // A down link drops everything offered to it (the packet was
            // routed here before the failure took effect).
            self.stats.record_drop(link);
            if self.trace.is_enabled() {
                self.trace.push(TraceEvent::Drop {
                    at: self.now,
                    link,
                    pkt: pkt.id,
                });
            }
            return;
        }
        // Evaluate the loss model AND every active burst unconditionally so
        // each RNG stream advances identically regardless of who drops first
        // (same pattern as loss::Composite). Transparent models ([`NoLoss`])
        // consume no randomness, so skipping the virtual call is exact.
        let mut dropped = if self.loss_transparent {
            false
        } else {
            self.loss.should_drop(self.now, link, node, next, pkt)
        };
        if !self.bursts.is_empty() {
            // Expired bursts were never shown to the per-packet loop (the
            // old code retained first), so purge exactly when one *could*
            // have expired — `now` past the earliest deadline — instead of
            // rescanning per packet per hop. RNG draws are unchanged: a
            // burst's stream only ever advances while it is live.
            let now = self.now;
            if now >= self.burst_min_until {
                self.bursts.retain(|b| now < b.until);
                self.burst_min_until = self
                    .bursts
                    .iter()
                    .map(|b| b.until)
                    .min()
                    .unwrap_or(SimTime::MAX);
            }
            for b in &mut self.bursts {
                if (b.link.is_none() || b.link == Some(link)) && b.rng.random_bool(b.p) {
                    dropped = true;
                }
            }
        }
        if dropped {
            self.stats.record_drop(link);
            if self.trace.is_enabled() {
                self.trace.push(TraceEvent::Drop {
                    at: self.now,
                    link,
                    pkt: pkt.id,
                });
            }
            return;
        }
        let delay = l.delay;
        // The ideal channel delivers exactly one copy with zero jitter and
        // draws no randomness — skip both virtual calls on that fast path.
        let copies = if self.effects_ideal {
            1
        } else {
            self.effects.copies(self.now, link, node, next, pkt).max(1)
        };
        for _ in 0..copies {
            let jitter = if self.effects_ideal {
                SimDuration::ZERO
            } else {
                self.effects.jitter(self.now, link, node, next, pkt)
            };
            let at = self.now + delay + jitter;
            self.stats.record_hop(link, pkt.flow, pkt.size);
            if self.trace.is_enabled() {
                self.trace.push(TraceEvent::Forward {
                    at,
                    link,
                    from: node,
                    to: next,
                    pkt: pkt.id,
                });
            }
            self.queue.schedule(
                at,
                EventKind::Hop {
                    node: next,
                    via: Some(link),
                    pkt: pkt.forwarded(),
                },
            );
        }
    }

    /// The [`GroupMasks`] for packets from `root` to `group`, computed on
    /// first use per membership version and memoized for the common case of
    /// many consecutive hops of the same flood.
    fn group_masks(&mut self, root: NodeId, group: GroupId) -> Rc<GroupMasks> {
        let key = (root.0, group.0);
        let ver = self.membership_version;
        if let Some((k, v, m)) = &self.mask_memo {
            if *k == key && *v == ver {
                return m.clone();
            }
        }
        let masks = self.group_masks_slow(key, ver, root, group);
        self.mask_memo = Some((key, ver, masks.clone()));
        masks
    }

    fn group_masks_slow(
        &mut self,
        key: (u32, u32),
        ver: u64,
        root: NodeId,
        group: GroupId,
    ) -> Rc<GroupMasks> {
        if let Some((v, masks)) = self.prune_cache.get(&key) {
            if *v == ver {
                return masks.clone();
            }
        }
        let tree = self.spt.get_masked(&self.topo, root, Some(&self.link_up));
        let n = self.topo.num_nodes();
        let mut member = vec![false; n];
        let mut reach = vec![false; n];
        if let Some(members) = self.groups.get(&group) {
            for &m in members {
                member[m.index()] = true;
                let mut cur = m;
                while !reach[cur.index()] {
                    reach[cur.index()] = true;
                    match tree.parent(cur) {
                        Some((p, _)) => cur = p,
                        None => break,
                    }
                }
            }
        }
        let masks = Rc::new(GroupMasks { member, reach });
        self.prune_cache.insert(key, (ver, masks.clone()));
        masks
    }

    /// Change a link's up/down state, recomputing routing on a real change.
    fn set_link_state(&mut self, link: LinkId, up: bool) {
        if self.link_up[link.index()] == up {
            return;
        }
        self.link_up[link.index()] = up;
        // Routing converges "immediately": cached SPTs and prune masks are
        // recomputed over the surviving links on next use.
        self.spt.invalidate();
        self.prune_cache.clear();
        self.mask_memo = None;
    }

    /// Apply the `index`-th scripted fault (called from [`Simulator::step`]).
    fn apply_fault(&mut self, index: usize) {
        let ev = self.plan[index].1.clone();
        if self.trace.is_enabled() {
            self.trace.push(TraceEvent::Fault {
                at: self.now,
                desc: ev.to_string(),
            });
        }
        match ev {
            FaultEvent::LinkDown(l) => self.set_link_state(l, false),
            FaultEvent::LinkUp(l) => self.set_link_state(l, true),
            FaultEvent::Partition { cut } => {
                for &l in &cut {
                    self.set_link_state(l, false);
                }
                self.partition_cut = cut;
            }
            FaultEvent::Heal => {
                for l in std::mem::take(&mut self.partition_cut) {
                    self.set_link_state(l, true);
                }
            }
            FaultEvent::NodeCrash(n) => {
                if !self.node_up[n.index()] {
                    return;
                }
                self.node_up[n.index()] = false;
                // Invalidate every timer armed before the crash.
                self.node_epoch[n.index()] += 1;
                // The host's IGMP state evaporates with it: leave all
                // groups so routing prunes its branches.
                let gone: Vec<GroupId> = self
                    .groups
                    .iter()
                    .filter(|(_, members)| members.contains(&n))
                    .map(|(g, _)| *g)
                    .collect();
                for g in gone {
                    self.leave(n, g);
                }
                if let Some(app) = self.apps.get_mut(n.index()).and_then(|a| a.as_mut()) {
                    app.on_crash();
                }
            }
            FaultEvent::NodeRestart(n) => {
                if self.node_up[n.index()] {
                    return;
                }
                self.node_up[n.index()] = true;
                self.dispatch(n, |app, ctx| app.on_restart(ctx));
            }
            FaultEvent::LossBurst { link, p, duration } => {
                // Each burst gets its own stream derived from the sim seed
                // and its plan position, independent of other RNG use.
                let burst_seed = self
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1));
                let until = self.now + duration;
                self.burst_min_until = self.burst_min_until.min(until);
                self.bursts.push(ActiveBurst {
                    link,
                    p,
                    until,
                    rng: StdRng::seed_from_u64(burst_seed),
                });
            }
            FaultEvent::ClockSkew { node, offset_secs } => {
                self.clocks[node.index()].set_offset(offset_secs);
            }
            FaultEvent::ClockDrift { node, ppm } => {
                let now = self.now;
                self.clocks[node.index()].set_drift(ppm, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chain, star};
    use crate::loss::OneShotLinkDrop;
    use crate::packet::flow;

    /// A trivial app that records everything it receives and can echo.
    #[derive(Default)]
    struct Recorder {
        got: Vec<(SimTime, u64)>, // (time, first payload byte widened)
        timers: Vec<u64>,
    }

    impl Application for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
            let tag = pkt.payload.first().copied().unwrap_or(0) as u64;
            self.got.push((ctx.now, tag));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            let _ = ctx;
            self.timers.push(token);
        }
    }

    const G: GroupId = GroupId(1);

    fn setup_chain(n: usize) -> Simulator<Recorder> {
        let topo = chain(n);
        let mut sim = Simulator::new(topo, 1);
        for i in 0..n {
            sim.install(NodeId(i as u32), Recorder::default());
            sim.join(NodeId(i as u32), G);
        }
        sim
    }

    #[test]
    fn multicast_reaches_all_members_with_link_delay() {
        let mut sim = setup_chain(5);
        sim.send_from(NodeId(0), G, Bytes::from_static(&[7]), SendOptions::default());
        assert!(sim.run_until_idle(SimTime::from_secs(100)));
        for i in 1..5u32 {
            let app = sim.app(NodeId(i)).unwrap();
            assert_eq!(app.got.len(), 1, "node {i}");
            assert_eq!(app.got[0].0, SimTime::from_secs(i as u64));
        }
        // The origin does not hear its own packet.
        assert!(sim.app(NodeId(0)).unwrap().got.is_empty());
    }

    #[test]
    fn one_copy_per_link() {
        let mut sim = setup_chain(5);
        sim.send_from(NodeId(2), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        for l in sim.stats.links.iter() {
            assert_eq!(l.packets, 1);
        }
    }

    #[test]
    fn pruning_skips_memberless_subtrees() {
        let topo = star(4);
        let mut sim: Simulator<Recorder> = Simulator::new(topo, 1);
        // Only leaves 1 and 2 are members; 3 and 4 are not.
        for i in [1u32, 2] {
            sim.install(NodeId(i), Recorder::default());
            sim.join(NodeId(i), G);
        }
        sim.send_from(NodeId(1), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        // Links to 3 and 4 never carry the packet: exactly 2 link crossings
        // (1→hub, hub→2).
        assert_eq!(sim.stats.total_hops(), 2);
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
    }

    #[test]
    fn one_shot_drop_partitions_downstream() {
        let mut sim = setup_chain(5);
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l23, NodeId(0), flow::DATA)));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().got.len(), 0);
        assert_eq!(sim.app(NodeId(4)).unwrap().got.len(), 0);
        // Second packet passes (one-shot).
        sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(4)).unwrap().got.len(), 1);
    }

    #[test]
    fn ttl_limits_reach() {
        let mut sim = setup_chain(6);
        sim.send_from(
            NodeId(0),
            G,
            Bytes::from_static(&[1]),
            SendOptions::default().with_ttl(2),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().got.len(), 0);
    }

    #[test]
    fn admin_scope_blocks_zone_boundary() {
        let mut topo = chain(4);
        topo.set_zone(NodeId(2), 1);
        topo.set_zone(NodeId(3), 1);
        let mut sim: Simulator<Recorder> = Simulator::new(topo, 1);
        for i in 0..4u32 {
            sim.install(NodeId(i), Recorder::default());
            sim.join(NodeId(i), G);
        }
        sim.send_from(
            NodeId(0),
            G,
            Bytes::from_static(&[1]),
            SendOptions::default().admin_scoped(),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(1)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 0);
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim = setup_chain(2);
        let id = sim.exec(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(5), 42)
        });
        sim.exec(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(1), 7);
        });
        sim.exec(NodeId(0), |_, ctx| ctx.cancel_timer(id));
        sim.run_until_idle(SimTime::from_secs(100));
        let app = sim.app(NodeId(0)).unwrap();
        assert_eq!(app.timers, vec![7]);
    }

    #[test]
    fn membership_change_invalidates_prune_cache() {
        let topo = star(3);
        let mut sim: Simulator<Recorder> = Simulator::new(topo, 1);
        for i in 1..=3u32 {
            sim.install(NodeId(i), Recorder::default());
        }
        sim.join(NodeId(1), G);
        sim.send_from(NodeId(1), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 0);
        sim.join(NodeId(2), G);
        sim.send_from(NodeId(1), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
    }

    #[test]
    fn run_until_advances_clock() {
        let mut sim = setup_chain(2);
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn unicast_follows_shortest_path() {
        let mut sim = setup_chain(6);
        sim.send_unicast_from(
            NodeId(1),
            NodeId(4),
            Bytes::from_static(&[9]),
            SendOptions::default(),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        // Only the destination hears it, after 3 link delays.
        let a4 = sim.app(NodeId(4)).unwrap();
        assert_eq!(a4.got, vec![(SimTime::from_secs(3), 9)]);
        for i in [0u32, 2, 3, 5] {
            assert!(sim.app(NodeId(i)).unwrap().got.is_empty(), "node {i}");
        }
        // Exactly 3 link crossings.
        assert_eq!(sim.stats.total_hops(), 3);
    }

    #[test]
    fn unicast_subject_to_loss() {
        let mut sim = setup_chain(4);
        let l12 = sim.topology().link_between(NodeId(1), NodeId(2)).unwrap();
        sim.set_loss_model(Box::new(OneShotLinkDrop::new(l12, NodeId(0), flow::DATA)));
        sim.send_unicast_from(
            NodeId(0),
            NodeId(3),
            Bytes::from_static(&[1]),
            SendOptions::default(),
        );
        sim.run_until_idle(SimTime::from_secs(100));
        assert!(sim.app(NodeId(3)).unwrap().got.is_empty());
    }

    #[test]
    fn duplication_effects_deliver_twice() {
        let mut sim = setup_chain(2);
        sim.set_channel_effects(Box::new(crate::effects::RandomEffects::new(
            1.0, // always duplicate
            SimDuration::ZERO,
            1,
        )));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[5]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(1)).unwrap().got.len(), 2);
    }

    #[test]
    fn jitter_can_reorder_packets() {
        // Two packets sent back to back with large jitter: over many seeds
        // at least one run reorders. Use a fixed seed known to reorder by
        // checking relative order of payload tags.
        let mut reordered = false;
        for seed in 0..20u64 {
            let mut sim = setup_chain(2);
            sim.set_channel_effects(Box::new(crate::effects::RandomEffects::new(
                0.0,
                SimDuration::from_secs(5),
                seed,
            )));
            sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
            sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
            sim.run_until_idle(SimTime::from_secs(100));
            let tags: Vec<u64> = sim.app(NodeId(1)).unwrap().got.iter().map(|&(_, t)| t).collect();
            if tags == vec![2, 1] {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "jitter produced a reordering in 20 seeds");
    }

    #[test]
    fn link_down_blocks_and_link_up_restores() {
        let mut sim = setup_chain(5);
        let l23 = sim.topology().link_between(NodeId(2), NodeId(3)).unwrap();
        sim.set_fault_plan(
            FaultPlan::new()
                .link_down(SimTime::from_secs(1), l23)
                .link_up(SimTime::from_secs(50), l23),
        );
        sim.run_until(SimTime::from_secs(2));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until(SimTime::from_secs(40));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().got.len(), 0, "beyond down link");
        sim.run_until(SimTime::from_secs(60));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        assert_eq!(sim.app(NodeId(4)).unwrap().got.len(), 1, "after link up");
    }

    #[test]
    fn link_down_reroutes_around_redundant_path() {
        // Square: 0-1, 0-2, 1-3, 2-3. The SPT from 0 uses 1-3 (tie-break);
        // downing it must reroute delivery to 3 via 2.
        let mut b = crate::topology::TopologyBuilder::new(4);
        b.link(NodeId(0), NodeId(1));
        b.link(NodeId(0), NodeId(2));
        let l13 = b.link(NodeId(1), NodeId(3));
        b.link(NodeId(2), NodeId(3));
        let mut sim: Simulator<Recorder> = Simulator::new(b.build(), 1);
        for i in 0..4u32 {
            sim.install(NodeId(i), Recorder::default());
            sim.join(NodeId(i), G);
        }
        sim.set_fault_plan(FaultPlan::new().link_down(SimTime::from_secs(1), l13));
        sim.run_until(SimTime::from_secs(2));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[7]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(50));
        // Node 3 still hears the packet — via 2, at distance 2.
        let a3 = sim.app(NodeId(3)).unwrap();
        assert_eq!(a3.got.len(), 1);
        assert_eq!(a3.got[0].0, SimTime::from_secs(4)); // sent at t=2, 2 hops
    }

    #[test]
    fn partition_and_heal_round_trip() {
        let mut sim = setup_chain(6);
        let cut = crate::faults::partition_cut(
            sim.topology(),
            &[NodeId(0), NodeId(1), NodeId(2)],
        );
        sim.set_fault_plan(
            FaultPlan::new()
                .partition(SimTime::from_secs(1), cut)
                .heal(SimTime::from_secs(10)),
        );
        sim.run_until(SimTime::from_secs(2));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
        assert_eq!(sim.app(NodeId(3)).unwrap().got.len(), 0, "across the cut");
        sim.run_until(SimTime::from_secs(11));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(60));
        assert_eq!(sim.app(NodeId(5)).unwrap().got.len(), 1, "after heal");
    }

    #[test]
    fn crash_silences_node_and_invalidates_timers() {
        let mut sim = setup_chain(3);
        sim.exec(NodeId(1), |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(20), 99);
        });
        sim.set_fault_plan(FaultPlan::new().crash(SimTime::from_secs(5), NodeId(1)));
        sim.run_until(SimTime::from_secs(6));
        assert!(!sim.node_is_up(NodeId(1)));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(100));
        let a1 = sim.app(NodeId(1)).unwrap();
        assert!(a1.got.is_empty(), "crashed host must not receive");
        assert!(a1.timers.is_empty(), "pre-crash timer must not fire");
        // Node 2 still hears it: the router at node 1 keeps forwarding.
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
    }

    #[test]
    fn restart_rejoins_via_on_start_default() {
        let mut sim = setup_chain(3);
        sim.set_fault_plan(
            FaultPlan::new()
                .crash(SimTime::from_secs(5), NodeId(2))
                .restart(SimTime::from_secs(10), NodeId(2)),
        );
        sim.run_until(SimTime::from_secs(7));
        // Crash removed node 2 from the group.
        assert_eq!(sim.members(G), vec![NodeId(0), NodeId(1)]);
        sim.run_until(SimTime::from_secs(11));
        assert!(sim.node_is_up(NodeId(2)));
        // Recorder has no on_start join; re-join at the simulator level the
        // way a restarted host's IGMP would and verify delivery resumes.
        sim.join(NodeId(2), G);
        sim.send_from(NodeId(0), G, Bytes::from_static(&[3]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(50));
        assert_eq!(sim.app(NodeId(2)).unwrap().got.len(), 1);
    }

    #[test]
    fn loss_burst_drops_then_expires() {
        let mut sim = setup_chain(2);
        let l01 = sim.topology().link_between(NodeId(0), NodeId(1)).unwrap();
        sim.set_fault_plan(FaultPlan::new().loss_burst(
            SimTime::from_secs(1),
            Some(l01),
            1.0, // drop everything during the burst
            SimDuration::from_secs(10),
        ));
        sim.run_until(SimTime::from_secs(2));
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until(SimTime::from_secs(20));
        assert_eq!(sim.app(NodeId(1)).unwrap().got.len(), 0, "inside burst");
        assert_eq!(sim.stats.links[l01.index()].drops, 1);
        sim.send_from(NodeId(0), G, Bytes::from_static(&[2]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(40));
        assert_eq!(sim.app(NodeId(1)).unwrap().got.len(), 1, "after burst");
    }

    #[test]
    fn clock_skew_changes_local_now_only() {
        let mut sim = setup_chain(2);
        sim.set_fault_plan(FaultPlan::new().clock_skew(SimTime::from_secs(1), NodeId(1), 5.0));
        sim.run_until(SimTime::from_secs(2));
        let (true_now, local0, local1) = (
            sim.now(),
            sim.local_time(NodeId(0), sim.now()),
            sim.local_time(NodeId(1), sim.now()),
        );
        assert_eq!(local0, true_now, "unskewed node reads true time");
        assert!((local1.as_secs_f64() - true_now.as_secs_f64() - 5.0).abs() < 1e-9);
        let seen = sim.exec(NodeId(1), |_, ctx| ctx.local_now());
        assert_eq!(seen, local1);
    }

    #[test]
    fn fault_events_are_traced() {
        let mut sim = setup_chain(3);
        sim.trace.enable();
        let l01 = sim.topology().link_between(NodeId(0), NodeId(1)).unwrap();
        sim.set_fault_plan(
            FaultPlan::new()
                .link_down(SimTime::from_secs(1), l01)
                .link_up(SimTime::from_secs(2), l01),
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(
            sim.trace.count(|e| matches!(e, TraceEvent::Fault { .. })),
            2
        );
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim = setup_chain(3);
        sim.trace.enable();
        sim.send_from(NodeId(0), G, Bytes::from_static(&[1]), SendOptions::default());
        sim.run_until_idle(SimTime::from_secs(10));
        let sends = sim.trace.count(|e| matches!(e, TraceEvent::Send { .. }));
        let fwds = sim.trace.count(|e| matches!(e, TraceEvent::Forward { .. }));
        let dels = sim.trace.count(|e| matches!(e, TraceEvent::Deliver { .. }));
        assert_eq!(sends, 1);
        assert_eq!(fwds, 2);
        assert_eq!(dels, 2);
    }
}

//! Simulation statistics and event tracing.
//!
//! Section V of the paper mentions "the tools that we used to verify that
//! our simulator is correctly implementing the loss recovery algorithms";
//! the [`Trace`] here plays that role: every send, forward, drop, and
//! delivery can be recorded and asserted on in tests.

use crate::packet::PacketId;
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// Per-link counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets that crossed the link (either direction), excluding drops.
    pub packets: u64,
    /// Bytes that crossed the link.
    pub bytes: u64,
    /// Packets dropped on the link by the loss model.
    pub drops: u64,
}

/// Per-flow counters, incremented on the simulator's per-hop path.
///
/// The conventional flow classes ([`crate::packet::flow`]) are small dense
/// integers, so those live in a fixed array probed with one index; exotic
/// flow ids spill into a map without losing counts.
#[derive(Clone, Debug, Default)]
pub struct FlowCounts {
    low: [u64; Self::LOW],
    high: BTreeMap<u32, u64>,
}

impl FlowCounts {
    const LOW: usize = 8;

    #[inline]
    pub(crate) fn add(&mut self, flow: u32) {
        match self.low.get_mut(flow as usize) {
            Some(c) => *c += 1,
            None => *self.high.entry(flow).or_insert(0) += 1,
        }
    }

    /// Count for one flow.
    pub fn get(&self, flow: u32) -> u64 {
        match self.low.get(flow as usize) {
            Some(c) => *c,
            None => self.high.get(&flow).copied().unwrap_or(0),
        }
    }

    /// Sum over all flows.
    pub fn total(&self) -> u64 {
        self.low.iter().sum::<u64>() + self.high.values().sum::<u64>()
    }
}

/// Aggregate simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Per-link traffic.
    pub links: Vec<LinkStats>,
    /// Per-flow transmitted-packet counts (counted once per origination,
    /// not per hop).
    pub sent_by_flow: FlowCounts,
    /// Per-flow per-hop transmission counts (each link crossing counts).
    pub hops_by_flow: FlowCounts,
    /// Per-flow delivered-to-application counts.
    pub delivered_by_flow: FlowCounts,
    /// Total events processed.
    pub events: u64,
}

impl Stats {
    pub(crate) fn new(num_links: usize) -> Self {
        Stats {
            links: vec![LinkStats::default(); num_links],
            ..Default::default()
        }
    }

    pub(crate) fn record_send(&mut self, flow: u32) {
        self.sent_by_flow.add(flow);
    }

    /// Counter slot for `link`, growing the table on demand.  Fault plans
    /// can mask links out of the routing tables mid-run, and restored or
    /// late-registered links may carry ids past the size the table was
    /// created with; growing (rather than indexing blindly) keeps the
    /// counters panic-free for any `LinkId`.
    fn link_mut(&mut self, link: LinkId) -> &mut LinkStats {
        let i = link.index();
        if i >= self.links.len() {
            self.links.resize(i + 1, LinkStats::default());
        }
        &mut self.links[i]
    }

    /// Counters for `link`; zeroed stats for ids the table has never seen
    /// (e.g. a link that was fault-masked for the whole run).
    pub fn link(&self, link: LinkId) -> LinkStats {
        self.links.get(link.index()).copied().unwrap_or_default()
    }

    pub(crate) fn record_hop(&mut self, link: LinkId, flow: u32, bytes: u32) {
        let l = self.link_mut(link);
        l.packets += 1;
        l.bytes += bytes as u64;
        self.hops_by_flow.add(flow);
    }

    pub(crate) fn record_drop(&mut self, link: LinkId) {
        self.link_mut(link).drops += 1;
    }

    pub(crate) fn record_delivery(&mut self, flow: u32) {
        self.delivered_by_flow.add(flow);
    }

    /// Total packets originated, all flows.
    pub fn total_sent(&self) -> u64 {
        self.sent_by_flow.total()
    }

    /// Total link crossings, all flows — the paper's "bandwidth" proxy.
    pub fn total_hops(&self) -> u64 {
        self.hops_by_flow.total()
    }

    /// Link crossings for one flow.
    pub fn hops_for(&self, flow: u32) -> u64 {
        self.hops_by_flow.get(flow)
    }

    /// Packets originated for one flow.
    pub fn sent_for(&self, flow: u32) -> u64 {
        self.sent_by_flow.get(flow)
    }

    /// Deliveries for one flow.
    pub fn delivered_for(&self, flow: u32) -> u64 {
        self.delivered_by_flow.get(flow)
    }
}

/// One recorded simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node originated a packet.
    Send {
        /// Time of origination.
        at: SimTime,
        /// Originating node.
        node: NodeId,
        /// Packet id.
        pkt: PacketId,
        /// Flow class.
        flow: u32,
    },
    /// A packet crossed a link.
    Forward {
        /// Arrival time at the far end.
        at: SimTime,
        /// Link crossed.
        link: LinkId,
        /// Sending side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
        /// Packet id.
        pkt: PacketId,
    },
    /// The loss model dropped a packet on a link.
    Drop {
        /// Time of the (attempted) transmission.
        at: SimTime,
        /// Link on which the drop occurred.
        link: LinkId,
        /// Packet id.
        pkt: PacketId,
    },
    /// A packet was handed to the application on a member node.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// Receiving member.
        node: NodeId,
        /// Packet id.
        pkt: PacketId,
        /// Flow class.
        flow: u32,
    },
    /// A scripted fault took effect.
    Fault {
        /// Time the fault applied.
        at: SimTime,
        /// Human-readable description (the fault's `Display` form).
        desc: String,
    },
}

/// An in-memory log of [`TraceEvent`]s — the explicit trace *sink*.
///
/// Disabled by default: a disabled trace records nothing and allocates
/// nothing, so long runs stay flat in memory. [`Trace::enable`] records
/// everything (test/debug use); [`Trace::enable_bounded`] keeps only the
/// most recent `cap` events in a ring, for always-on tracing of big runs.
/// The simulator's hot path checks [`Trace::is_enabled`] before even
/// constructing an event.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    /// Ring capacity when bounded; `None` records without limit.
    cap: Option<usize>,
    /// Recorded events in order (oldest first).
    events: VecDeque<TraceEvent>,
    /// Events discarded by a bounded ring since the last [`Trace::clear`].
    dropped: u64,
}

impl Trace {
    /// Start recording without bound (every event is kept).
    pub fn enable(&mut self) {
        self.enabled = true;
        self.cap = None;
    }

    /// Start recording into a ring that keeps only the latest `cap`
    /// events; older ones are discarded (and counted in
    /// [`Trace::dropped_events`]). A `cap` of 0 records nothing.
    pub fn enable_bounded(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = Some(cap);
    }

    /// Stop recording (keeps what was recorded).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Is the sink currently recording? The simulator consults this before
    /// building an event, so a disabled trace costs one branch per
    /// would-be record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drop all recorded events and reset the dropped-event counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.cap {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() >= cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(e);
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded (retained) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Heap slots reserved for events (0 until something is recorded —
    /// asserted by tests that a disabled trace never grows).
    pub fn capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Events a bounded ring has discarded since the last clear.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Count of recorded events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }

    /// Deliveries of a given packet, in order.
    pub fn deliveries_of(&self, pkt: PacketId) -> Vec<(SimTime, NodeId)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Deliver { at, node, pkt: p, .. } if *p == pkt => Some((*at, *node)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new(2);
        s.record_send(0);
        s.record_send(0);
        s.record_send(1);
        s.record_hop(LinkId(0), 0, 100);
        s.record_hop(LinkId(1), 1, 50);
        s.record_drop(LinkId(1));
        s.record_delivery(0);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.sent_for(0), 2);
        assert_eq!(s.total_hops(), 2);
        assert_eq!(s.links[1].drops, 1);
        assert_eq!(s.links[0].bytes, 100);
        assert_eq!(s.delivered_for(0), 1);
        assert_eq!(s.delivered_for(9), 0);
    }

    #[test]
    fn out_of_range_link_ids_do_not_panic() {
        let mut s = Stats::new(1);
        // Reading an id the table has never seen returns zeroed stats.
        let z = s.link(LinkId(9));
        assert_eq!((z.packets, z.bytes, z.drops), (0, 0, 0));
        // Writing grows the table instead of panicking.
        s.record_hop(LinkId(5), 0, 10);
        s.record_drop(LinkId(7));
        assert_eq!(s.link(LinkId(5)).packets, 1);
        assert_eq!(s.link(LinkId(5)).bytes, 10);
        assert_eq!(s.link(LinkId(7)).drops, 1);
        // Untouched slots in between stay zeroed, and in-range behavior is
        // unchanged.
        assert_eq!(s.link(LinkId(6)).packets, 0);
        s.record_hop(LinkId(0), 0, 1);
        assert_eq!(s.link(LinkId(0)).packets, 1);
    }

    fn send(pkt: u64) -> TraceEvent {
        TraceEvent::Send {
            at: SimTime::ZERO,
            node: NodeId(0),
            pkt: PacketId(pkt),
            flow: 0,
        }
    }

    #[test]
    fn trace_respects_enable() {
        let mut t = Trace::default();
        t.push(send(1));
        assert!(t.is_empty());
        t.enable();
        t.push(send(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn disabled_trace_never_allocates() {
        let mut t = Trace::default();
        assert!(!t.is_enabled());
        for i in 0..10_000 {
            t.push(send(i));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), 0, "disabled sink must not grow");
    }

    #[test]
    fn bounded_trace_keeps_only_the_tail() {
        let mut t = Trace::default();
        t.enable_bounded(3);
        for i in 0..10 {
            t.push(send(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped_events(), 7);
        let kept: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Send { pkt, .. } => pkt.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9]);
        // The ring never reserves far past its cap.
        assert!(t.capacity() <= 8, "capacity {} exceeds ring bound", t.capacity());
        t.clear();
        assert_eq!(t.dropped_events(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut t = Trace::default();
        t.enable_bounded(0);
        t.push(send(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped_events(), 1);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn deliveries_of_filters() {
        let mut t = Trace::default();
        t.enable();
        for i in 0..3 {
            t.push(TraceEvent::Deliver {
                at: SimTime::from_secs(i),
                node: NodeId(i as u32),
                pkt: PacketId(if i == 1 { 7 } else { 8 }),
                flow: 0,
            });
        }
        assert_eq!(t.deliveries_of(PacketId(7)).len(), 1);
        assert_eq!(t.deliveries_of(PacketId(8)).len(), 2);
    }
}

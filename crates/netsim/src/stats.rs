//! Simulation statistics and event tracing.
//!
//! Section V of the paper mentions "the tools that we used to verify that
//! our simulator is correctly implementing the loss recovery algorithms";
//! the [`Trace`] here plays that role: every send, forward, drop, and
//! delivery can be recorded and asserted on in tests.

use crate::packet::PacketId;
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use std::collections::BTreeMap;

/// Per-link counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets that crossed the link (either direction), excluding drops.
    pub packets: u64,
    /// Bytes that crossed the link.
    pub bytes: u64,
    /// Packets dropped on the link by the loss model.
    pub drops: u64,
}

/// Aggregate simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Per-link traffic.
    pub links: Vec<LinkStats>,
    /// Per-flow transmitted-packet counts (counted once per origination,
    /// not per hop).
    pub sent_by_flow: BTreeMap<u32, u64>,
    /// Per-flow per-hop transmission counts (each link crossing counts).
    pub hops_by_flow: BTreeMap<u32, u64>,
    /// Per-flow delivered-to-application counts.
    pub delivered_by_flow: BTreeMap<u32, u64>,
    /// Total events processed.
    pub events: u64,
}

impl Stats {
    pub(crate) fn new(num_links: usize) -> Self {
        Stats {
            links: vec![LinkStats::default(); num_links],
            ..Default::default()
        }
    }

    pub(crate) fn record_send(&mut self, flow: u32) {
        *self.sent_by_flow.entry(flow).or_insert(0) += 1;
    }

    /// Counter slot for `link`, growing the table on demand.  Fault plans
    /// can mask links out of the routing tables mid-run, and restored or
    /// late-registered links may carry ids past the size the table was
    /// created with; growing (rather than indexing blindly) keeps the
    /// counters panic-free for any `LinkId`.
    fn link_mut(&mut self, link: LinkId) -> &mut LinkStats {
        let i = link.index();
        if i >= self.links.len() {
            self.links.resize(i + 1, LinkStats::default());
        }
        &mut self.links[i]
    }

    /// Counters for `link`; zeroed stats for ids the table has never seen
    /// (e.g. a link that was fault-masked for the whole run).
    pub fn link(&self, link: LinkId) -> LinkStats {
        self.links.get(link.index()).copied().unwrap_or_default()
    }

    pub(crate) fn record_hop(&mut self, link: LinkId, flow: u32, bytes: u32) {
        let l = self.link_mut(link);
        l.packets += 1;
        l.bytes += bytes as u64;
        *self.hops_by_flow.entry(flow).or_insert(0) += 1;
    }

    pub(crate) fn record_drop(&mut self, link: LinkId) {
        self.link_mut(link).drops += 1;
    }

    pub(crate) fn record_delivery(&mut self, flow: u32) {
        *self.delivered_by_flow.entry(flow).or_insert(0) += 1;
    }

    /// Total packets originated, all flows.
    pub fn total_sent(&self) -> u64 {
        self.sent_by_flow.values().sum()
    }

    /// Total link crossings, all flows — the paper's "bandwidth" proxy.
    pub fn total_hops(&self) -> u64 {
        self.hops_by_flow.values().sum()
    }

    /// Link crossings for one flow.
    pub fn hops_for(&self, flow: u32) -> u64 {
        self.hops_by_flow.get(&flow).copied().unwrap_or(0)
    }

    /// Packets originated for one flow.
    pub fn sent_for(&self, flow: u32) -> u64 {
        self.sent_by_flow.get(&flow).copied().unwrap_or(0)
    }

    /// Deliveries for one flow.
    pub fn delivered_for(&self, flow: u32) -> u64 {
        self.delivered_by_flow.get(&flow).copied().unwrap_or(0)
    }
}

/// One recorded simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node originated a packet.
    Send {
        /// Time of origination.
        at: SimTime,
        /// Originating node.
        node: NodeId,
        /// Packet id.
        pkt: PacketId,
        /// Flow class.
        flow: u32,
    },
    /// A packet crossed a link.
    Forward {
        /// Arrival time at the far end.
        at: SimTime,
        /// Link crossed.
        link: LinkId,
        /// Sending side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
        /// Packet id.
        pkt: PacketId,
    },
    /// The loss model dropped a packet on a link.
    Drop {
        /// Time of the (attempted) transmission.
        at: SimTime,
        /// Link on which the drop occurred.
        link: LinkId,
        /// Packet id.
        pkt: PacketId,
    },
    /// A packet was handed to the application on a member node.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// Receiving member.
        node: NodeId,
        /// Packet id.
        pkt: PacketId,
        /// Flow class.
        flow: u32,
    },
    /// A scripted fault took effect.
    Fault {
        /// Time the fault applied.
        at: SimTime,
        /// Human-readable description (the fault's `Display` form).
        desc: String,
    },
}

/// An in-memory log of [`TraceEvent`]s. Disabled by default.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    /// Recorded events in order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stop recording (keeps what was recorded).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        if self.enabled {
            self.events.push(e);
        }
    }

    /// Count of recorded events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }

    /// Deliveries of a given packet, in order.
    pub fn deliveries_of(&self, pkt: PacketId) -> Vec<(SimTime, NodeId)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Deliver { at, node, pkt: p, .. } if *p == pkt => Some((*at, *node)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new(2);
        s.record_send(0);
        s.record_send(0);
        s.record_send(1);
        s.record_hop(LinkId(0), 0, 100);
        s.record_hop(LinkId(1), 1, 50);
        s.record_drop(LinkId(1));
        s.record_delivery(0);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.sent_for(0), 2);
        assert_eq!(s.total_hops(), 2);
        assert_eq!(s.links[1].drops, 1);
        assert_eq!(s.links[0].bytes, 100);
        assert_eq!(s.delivered_for(0), 1);
        assert_eq!(s.delivered_for(9), 0);
    }

    #[test]
    fn out_of_range_link_ids_do_not_panic() {
        let mut s = Stats::new(1);
        // Reading an id the table has never seen returns zeroed stats.
        let z = s.link(LinkId(9));
        assert_eq!((z.packets, z.bytes, z.drops), (0, 0, 0));
        // Writing grows the table instead of panicking.
        s.record_hop(LinkId(5), 0, 10);
        s.record_drop(LinkId(7));
        assert_eq!(s.link(LinkId(5)).packets, 1);
        assert_eq!(s.link(LinkId(5)).bytes, 10);
        assert_eq!(s.link(LinkId(7)).drops, 1);
        // Untouched slots in between stay zeroed, and in-range behavior is
        // unchanged.
        assert_eq!(s.link(LinkId(6)).packets, 0);
        s.record_hop(LinkId(0), 0, 1);
        assert_eq!(s.link(LinkId(0)).packets, 1);
    }

    #[test]
    fn trace_respects_enable() {
        let mut t = Trace::default();
        t.push(TraceEvent::Send {
            at: SimTime::ZERO,
            node: NodeId(0),
            pkt: PacketId(1),
            flow: 0,
        });
        assert!(t.events.is_empty());
        t.enable();
        t.push(TraceEvent::Send {
            at: SimTime::ZERO,
            node: NodeId(0),
            pkt: PacketId(2),
            flow: 0,
        });
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn deliveries_of_filters() {
        let mut t = Trace::default();
        t.enable();
        for i in 0..3 {
            t.push(TraceEvent::Deliver {
                at: SimTime::from_secs(i),
                node: NodeId(i as u32),
                pkt: PacketId(if i == 1 { 7 } else { 8 }),
                flow: 0,
            });
        }
        assert_eq!(t.deliveries_of(PacketId(7)).len(), 1);
        assert_eq!(t.deliveries_of(PacketId(8)).len(), 2);
    }
}

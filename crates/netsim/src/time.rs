//! Simulation time.
//!
//! Time is tracked as an integer number of nanoseconds since the start of the
//! simulation. Using an integer (rather than `f64`) keeps the event queue
//! totally ordered and the whole simulation bit-for-bit deterministic, which
//! matters because every figure in the SRM paper is a statistical summary over
//! seeded runs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds in one second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulation clock.
///
/// `SimTime::ZERO` is the start of the simulation. Instants are compared and
/// subtracted freely; subtracting a later time from an earlier one panics in
/// debug builds (it is always a logic error in this codebase).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_nanos(s))
    }

    /// Construct from raw nanoseconds since the epoch.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`.
    ///
    /// Saturates at zero if `earlier` is in the future (debug builds assert).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "SimTime::since of a future instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Midpoint between `self` and a later instant `later`.
    ///
    /// Used by the "ignore-backoff" heuristic of Section III-B, which ignores
    /// duplicate requests until halfway to the backed-off timer's expiry.
    pub fn midpoint(self, later: SimTime) -> SimTime {
        debug_assert!(later >= self);
        SimTime(self.0 + (later.0 - self.0) / 2)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_nanos(s))
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Multiply by a non-negative float (used for timer-constant scaling).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scaling");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// True if this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        (s * NANOS_PER_SEC as f64).round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_secs(3);
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(t.since(SimTime::from_secs(2)), SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(3) * 2, SimDuration::from_secs(6));
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(2);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(6);
        assert_eq!(a.midpoint(b), SimTime::from_secs(4));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(1.25);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}

//! Network topology: nodes joined by bidirectional links.
//!
//! The SRM paper's simulations use undirected graphs with unit-delay links
//! (Section IV: "all links have distance of 1"). Each link additionally
//! carries a *multicast threshold* — the minimum TTL a packet needs in order
//! to be forwarded across it (Section VII-B3, TTL-based scoping) — and each
//! node belongs to an *administrative zone* used by admin-scoped delivery
//! (Section VII-B1).

use crate::time::SimDuration;
use std::fmt;

/// Identifier of a node in the topology (index into the node table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an undirected link (index into the link table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A bidirectional link between two nodes.
#[derive(Clone, Debug)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Minimum TTL required to forward a multicast packet across this link
    /// (Mbone-style threshold; default 1).
    pub threshold: u8,
}

impl Link {
    /// The endpoint opposite `n`; panics if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            assert_eq!(n, self.b, "node {n:?} is not on this link");
            self.a
        }
    }
}

/// An immutable network graph.
///
/// Build one with [`TopologyBuilder`] or the constructors in
/// [`crate::generators`].
#[derive(Clone, Debug)]
pub struct Topology {
    links: Vec<Link>,
    /// adjacency: for each node, (neighbor, link) pairs sorted by neighbor id.
    adj: Vec<Vec<(NodeId, LinkId)>>,
    /// administrative zone of each node (0 = global default zone).
    zones: Vec<u32>,
}

impl Topology {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Neighbors of `n` as (neighbor, link) pairs, sorted by neighbor id.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.index()]
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// The administrative zone of node `n`.
    pub fn zone(&self, n: NodeId) -> u32 {
        self.zones[n.index()]
    }

    /// Assign node `n` to administrative zone `z`.
    pub fn set_zone(&mut self, n: NodeId, z: u32) {
        self.zones[n.index()] = z;
    }

    /// Set the multicast threshold on a link.
    pub fn set_threshold(&mut self, l: LinkId, threshold: u8) {
        self.links[l.index()].threshold = threshold;
    }

    /// Find the link joining `a` and `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adj[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|&(_, l)| l)
    }

    /// True if the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// True if the graph is a tree (connected with exactly n−1 edges).
    pub fn is_tree(&self) -> bool {
        self.num_nodes() > 0
            && self.num_links() == self.num_nodes() - 1
            && self.is_connected()
    }

    /// Export as Graphviz DOT (undirected), labeling non-default delays and
    /// thresholds — handy for eyeballing generated topologies.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "graph {name} {{");
        for n in self.nodes() {
            if self.zone(n) != 0 {
                let _ = writeln!(s, "  n{} [label=\"n{} z{}\"];", n.0, n.0, self.zone(n));
            }
        }
        for (_, l) in self.links() {
            let mut attrs = Vec::new();
            let d = l.delay.as_secs_f64();
            if (d - 1.0).abs() > 1e-9 {
                attrs.push(format!("label=\"{d:.3}s\""));
            }
            if l.threshold != 1 {
                attrs.push(format!("style=dashed, taillabel=\"t{}\"", l.threshold));
            }
            let attr = if attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", attrs.join(", "))
            };
            let _ = writeln!(s, "  n{} -- n{}{attr};", l.a.0, l.b.0);
        }
        s.push_str("}\n");
        s
    }
}

/// Incremental construction of a [`Topology`].
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    num_nodes: usize,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Start a builder with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        TopologyBuilder {
            num_nodes: n,
            links: Vec::new(),
        }
    }

    /// Add one more node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes as u32);
        self.num_nodes += 1;
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Add a unit-delay link with threshold 1 between `a` and `b`.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        self.link_with(a, b, SimDuration::from_secs(1), 1)
    }

    /// Add a link with explicit delay and threshold.
    pub fn link_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: SimDuration,
        threshold: u8,
    ) -> LinkId {
        assert!(a.index() < self.num_nodes, "link endpoint {a:?} out of range");
        assert!(b.index() < self.num_nodes, "link endpoint {b:?} out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            delay,
            threshold,
        });
        id
    }

    /// Finalize into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        let mut adj: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); self.num_nodes];
        for (i, l) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            adj[l.a.index()].push((l.b, id));
            adj[l.b.index()].push((l.a, id));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Topology {
            links: self.links,
            adj,
            zones: vec![0; self.num_nodes],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId(0), NodeId(1));
        b.link(NodeId(1), NodeId(2));
        b.link(NodeId(2), NodeId(0));
        b.build()
    }

    #[test]
    fn builder_counts() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.degree(NodeId(1)), 2);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let t = triangle();
        let ns: Vec<NodeId> = t.neighbors(NodeId(2)).iter().map(|&(n, _)| n).collect();
        assert_eq!(ns, vec![NodeId(0), NodeId(1)]);
        let l = t.link_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(t.link_between(NodeId(2), NodeId(0)), Some(l));
    }

    #[test]
    fn link_other_endpoint() {
        let t = triangle();
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(t.link(l).other(NodeId(0)), NodeId(1));
        assert_eq!(t.link(l).other(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        let t = triangle();
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        t.link(l).other(NodeId(2));
    }

    #[test]
    fn connectivity_and_tree_checks() {
        let t = triangle();
        assert!(t.is_connected());
        assert!(!t.is_tree()); // a cycle is not a tree

        let mut b = TopologyBuilder::new(4);
        b.link(NodeId(0), NodeId(1));
        b.link(NodeId(1), NodeId(2));
        let t = b.build();
        assert!(!t.is_connected()); // node 3 isolated
        assert!(!t.is_tree());

        let mut b = TopologyBuilder::new(3);
        b.link(NodeId(0), NodeId(1));
        b.link(NodeId(1), NodeId(2));
        let t = b.build();
        assert!(t.is_tree());
    }

    #[test]
    fn zones_default_and_set() {
        let mut t = triangle();
        assert_eq!(t.zone(NodeId(0)), 0);
        t.set_zone(NodeId(0), 7);
        assert_eq!(t.zone(NodeId(0)), 7);
    }

    #[test]
    fn dot_export_contains_all_edges() {
        let mut t = triangle();
        t.set_zone(NodeId(2), 5);
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        t.set_threshold(l, 16);
        let dot = t.to_dot("tri");
        assert!(dot.starts_with("graph tri {"));
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("z5"));
        assert!(dot.contains("t16"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new(2);
        b.link(NodeId(0), NodeId(0));
    }
}

//! Typed events that make up a recovery-episode span.
//!
//! The protocol crate converts its `AduName` into the dependency-free
//! [`AduKey`] mirror defined here, so `obs` never needs to know about SRM
//! wire types.  Event kinds are the vocabulary of the paper's loss-recovery
//! walk-throughs (Fig 5–8): gap detection, the request timer lifecycle
//! (set / backed-off / suppressed), request and repair transmissions, the
//! hold-down window, and the terminal recovered / gave-up states.

use std::fmt;

use netsim::SimTime;

/// Dependency-free mirror of the protocol's ADU name
/// `(source, page{creator, number}, seq)`.
///
/// Displays identically to the protocol's `AduName` (`s1:s1/p0:5`) so trace
/// output and protocol logs line up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AduKey {
    /// Sender of the ADU (original data source).
    pub source: u64,
    /// Creator of the page namespace the ADU lives in.
    pub page_creator: u64,
    /// Page number within the creator's namespace.
    pub page_number: u32,
    /// Sequence number within the page.
    pub seq: u64,
}

impl fmt::Display for AduKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s{}:s{}/p{}:{}",
            self.source, self.page_creator, self.page_number, self.seq
        )
    }
}

/// How a loss episode ultimately recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryVia {
    /// The original transmission arrived late (e.g. reordering), no repair needed.
    Original,
    /// A multicast repair filled the gap.
    Repair,
    /// Parity/FEC reconstruction filled the gap.
    Fec,
}

impl RecoveryVia {
    /// Stable lowercase label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryVia::Original => "original",
            RecoveryVia::Repair => "repair",
            RecoveryVia::Fec => "fec",
        }
    }
}

/// One typed event inside a recovery-episode span.
///
/// Events carry their payload inline; the owning [`RecordedEvent`] supplies
/// the timestamp and ADU key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A sequence gap was detected; the episode span opens here.
    GapDetected,
    /// The request timer was armed for the first round.
    RequestTimerSet {
        /// Absolute expiry of the timer.
        until: SimTime,
        /// Backoff count at arming time (0 for the first round).
        backoff: u32,
    },
    /// A request for this ADU was multicast by this member.
    RequestSent {
        /// 1-based request round (increments with each retransmitted request).
        round: u32,
    },
    /// Another member's request for this ADU was observed.
    RequestHeard {
        /// Member id of the requester.
        from: u64,
    },
    /// The pending request was re-armed with doubled interval after hearing
    /// another member's request (classic SRM suppression + backoff).
    RequestBackoff {
        /// Absolute expiry of the re-armed timer.
        until: SimTime,
        /// Backoff count after doubling.
        backoff: u32,
    },
    /// A heard request was ignored because it arrived within the
    /// ignore-backoff horizon of our own recent backoff.
    RequestSuppressed,
    /// We hold the data but ignored a request because the ADU is inside its
    /// repair hold-down window.
    RequestHeldDown,
    /// The repair timer was armed (we hold the data and heard a request).
    RepairTimerSet {
        /// Absolute expiry of the timer.
        until: SimTime,
    },
    /// The pending repair timer was cancelled because another member's repair
    /// was heard first.
    RepairTimerCancelled,
    /// A repair for this ADU was multicast by this member.
    RepairSent,
    /// Another member's repair for this ADU was observed.
    RepairHeard {
        /// Member id of the repairer.
        from: u64,
    },
    /// The ADU entered its hold-down window (3·d after a repair).
    HoldDownEntered {
        /// Absolute end of the hold-down window.
        until: SimTime,
    },
    /// The gap was filled; the episode span closes successfully.
    Recovered {
        /// What filled the gap.
        via: RecoveryVia,
    },
    /// The maximum request rounds were exhausted; the episode span closes
    /// unsuccessfully.
    GaveUp,
}

impl EventKind {
    /// Stable snake_case name used in JSONL output and filters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::GapDetected => "gap_detected",
            EventKind::RequestTimerSet { .. } => "request_timer_set",
            EventKind::RequestSent { .. } => "request_sent",
            EventKind::RequestHeard { .. } => "request_heard",
            EventKind::RequestBackoff { .. } => "request_backoff",
            EventKind::RequestSuppressed => "request_suppressed",
            EventKind::RequestHeldDown => "request_held_down",
            EventKind::RepairTimerSet { .. } => "repair_timer_set",
            EventKind::RepairTimerCancelled => "repair_timer_cancelled",
            EventKind::RepairSent => "repair_sent",
            EventKind::RepairHeard { .. } => "repair_heard",
            EventKind::HoldDownEntered { .. } => "hold_down_entered",
            EventKind::Recovered { .. } => "recovered",
            EventKind::GaveUp => "gave_up",
        }
    }
}

/// An event as captured by a [`Recorder`](crate::Recorder): timestamp + ADU
/// key + kind, plus the recorder-local sequence number that keeps merge order
/// stable when several events share a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Simulation time the event occurred.
    pub at: SimTime,
    /// The ADU the episode is keyed on.
    pub adu: AduKey,
    /// What happened.
    pub kind: EventKind,
    /// Recorder-local sequence number (monotone per member).
    pub seq: u64,
}

/// A named fault window (from the netsim fault plan) that recovery spans nest
/// inside — e.g. a partition, a crash, or a loss burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpan {
    /// Human-readable label, e.g. `"partition"` or `"crash"`.
    pub label: String,
    /// When the fault began.
    pub start: SimTime,
    /// When the fault ended; `None` for faults that persist to the end of the
    /// run (e.g. a source crash with no restart).
    pub end: Option<SimTime>,
}

impl FaultSpan {
    /// Does simulation time `t` fall inside this fault window?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && self.end.is_none_or(|e| t <= e)
    }
}

/// Format a [`SimTime`] as exact decimal seconds with nanosecond precision.
///
/// Pure integer formatting of the underlying nanosecond counter, so output is
/// bit-for-bit deterministic across platforms — the property the golden-file
/// trace tests pin.
pub fn fmt_time(t: SimTime) -> String {
    let n = t.as_nanos();
    format!("{}.{:09}", n / 1_000_000_000, n % 1_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adu_key_display_matches_protocol_format() {
        let k = AduKey { source: 1, page_creator: 1, page_number: 0, seq: 5 };
        assert_eq!(k.to_string(), "s1:s1/p0:5");
    }

    #[test]
    fn fmt_time_is_exact_integer_nanos() {
        assert_eq!(fmt_time(SimTime::from_nanos(0)), "0.000000000");
        assert_eq!(fmt_time(SimTime::from_nanos(1_234_567_891)), "1.234567891");
        assert_eq!(fmt_time(SimTime::from_nanos(12_000_000_000)), "12.000000000");
    }

    #[test]
    fn fault_span_contains_open_and_closed() {
        let t = SimTime::from_nanos;
        let closed = FaultSpan { label: "p".into(), start: t(10), end: Some(t(20)) };
        assert!(!closed.contains(t(9)));
        assert!(closed.contains(t(10)));
        assert!(closed.contains(t(20)));
        assert!(!closed.contains(t(21)));
        let open = FaultSpan { label: "c".into(), start: t(10), end: None };
        assert!(open.contains(t(10)));
        assert!(open.contains(t(1_000_000)));
        assert!(!open.contains(t(9)));
    }
}

//! Low-overhead log-scale histograms.
//!
//! Recovery delays, duplicate counts and bandwidth shares span several orders
//! of magnitude (the paper plots delay/RTT from below 1 to tens of RTTs), so
//! a log-scale histogram with a handful of buckets per octave captures the
//! shape with O(1) record cost and a few hundred bytes of state.  Buckets are
//! kept in a `BTreeMap` so iteration — and therefore every rendered report —
//! is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sub-buckets per octave (power of two).  Four gives ~19% bucket width,
/// plenty for report-level summaries.
const SUBDIV: f64 = 4.0;

/// A log-scale histogram over positive `f64` samples.
///
/// Zero (and negative) samples are counted in a dedicated `zeros` bucket so
/// that "no duplicates" — by far the common case for dup-request counts —
/// does not distort the log buckets.  Exact min/max/sum are tracked alongside
/// the buckets, so `mean`, `min` and `max` are exact; quantiles are resolved
/// to the geometric midpoint of their bucket (≤ ~10% relative error).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    buckets: BTreeMap<i32, u64>,
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket index of a positive sample (shared with the atomic histograms in
/// [`metrics`](crate::metrics), so their snapshots merge exactly).
pub(crate) fn bucket_index(v: f64) -> i32 {
    (v.log2() * SUBDIV).floor() as i32
}

/// Geometric midpoint of bucket `i` — the value quantiles resolve to.
pub(crate) fn bucket_mid(i: i32) -> f64 {
    ((i as f64 + 0.5) / SUBDIV).exp2()
}

impl LogHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Assemble a histogram from already-tallied state (the atomic
    /// histograms in [`metrics`](crate::metrics) snapshot through this).
    /// `min`/`max` are only meaningful when `count > 0`; a zero `count`
    /// yields the empty histogram regardless of the other fields.
    pub(crate) fn from_raw(
        buckets: BTreeMap<i32, u64>,
        zeros: u64,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Self {
        if count == 0 {
            return LogHistogram::new();
        }
        LogHistogram { buckets, zeros, count, sum, min, max }
    }

    /// Number of samples that were `<= 0` (the dedicated zeros bucket).
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Iterate the non-empty log buckets as `(bucket_index, count)`, in
    /// ascending index order.  The zeros bucket is not included; see
    /// [`LogHistogram::zeros`].
    pub fn bucket_counts(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &c)| (i, c))
    }

    /// Record one sample.  Non-finite samples are ignored; samples `<= 0`
    /// land in the zeros bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v <= 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the geometric midpoint of
    /// the bucket containing the `q`-th sample.  Zero-bucket samples resolve
    /// to `0.0`.  `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, same "nearest-rank" convention
        // throughout so quantile(0.5) of one sample is that sample's bucket.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank <= self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for (&i, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        Some(self.max)
    }

    /// One-line summary: `n=.. mean=.. p50=.. p90=.. p99=.. max=..`.
    pub fn summary_line(&self) -> String {
        match self.mean() {
            None => "n=0".to_string(),
            Some(mean) => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
                    self.count,
                    mean,
                    self.quantile(0.50).unwrap_or(0.0),
                    self.quantile(0.90).unwrap_or(0.0),
                    self.quantile(0.99).unwrap_or(0.0),
                    self.max,
                );
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary_line(), "n=0");
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean().unwrap() - 3.75).abs() < 1e-12);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(8.0));
    }

    #[test]
    fn quantile_within_bucket_error() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 10.0); // 0.1 .. 100.0
        }
        let p50 = h.quantile(0.5).unwrap();
        // True median is 50.05; a quarter-octave bucket is ~±10%.
        assert!((p50 / 50.05).ln().abs() < 0.25, "p50={p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 / 99.05).ln().abs() < 0.25, "p99={p99}");
    }

    #[test]
    fn zeros_bucket_does_not_distort() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(0.0);
        }
        for _ in 0..10 {
            h.record(3.0);
        }
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert!(h.quantile(0.95).unwrap() > 2.0);
        assert!((h.mean().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [0.5, 1.5, 2.5] {
            a.record(v);
            all.record(v);
        }
        for v in [0.0, 4.0, 16.0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into an empty histogram copies.
        let mut e = LogHistogram::new();
        e.merge(&all);
        assert_eq!(e, all);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn empty_merge_is_identity() {
        let mut h = LogHistogram::new();
        for v in [0.0, 0.5, 8.0] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, before, "merging an empty histogram changes nothing");
        let mut e = LogHistogram::new();
        e.merge(&LogHistogram::new());
        assert_eq!(e, LogHistogram::new(), "empty + empty stays empty");
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = LogHistogram::new();
        h.record(3.0);
        // Every quantile of a one-sample histogram is that sample's bucket.
        let mid = bucket_mid(bucket_index(3.0));
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(mid), "q={q}");
        }
        assert_eq!(h.min(), Some(3.0));
        assert_eq!(h.max(), Some(3.0));
        assert_eq!(h.mean(), Some(3.0));
        // A single zero sample resolves to 0.0 everywhere.
        let mut z = LogHistogram::new();
        z.record(0.0);
        assert_eq!(z.quantile(0.5), Some(0.0));
        assert_eq!(z.zeros(), 1);
    }

    #[test]
    fn extreme_magnitudes_stay_finite() {
        // The BTreeMap representation has no bucket range limit; indices at
        // extreme magnitudes must still record and resolve finitely.
        let mut h = LogHistogram::new();
        h.record(1e-300);
        h.record(1e300);
        assert_eq!(h.count(), 2);
        let p0 = h.quantile(0.0).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p0.is_finite() && p0 > 0.0, "p0={p0}");
        assert!(p100.is_finite(), "p100={p100}");
        assert_eq!(h.max(), Some(1e300));
    }

    #[test]
    fn accessors_expose_raw_state() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(2.0);
        h.record(2.1);
        assert_eq!(h.zeros(), 1);
        assert!((h.sum() - 4.1).abs() < 1e-12);
        let buckets: Vec<(i32, u64)> = h.bucket_counts().collect();
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2, "zeros are not in the log buckets");
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "ascending order");
    }
}

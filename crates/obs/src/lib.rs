//! # obs — unified tracing & metrics for the SRM reproduction
//!
//! This crate is the observability substrate for the workspace.  It turns the
//! simulator from "prints CSVs" into an inspectable system by recording
//! **causal recovery-episode spans**: every ADU loss opens a span keyed by
//! `(member, AduKey)` that accumulates typed events — gap detected, request
//! timer set/backed-off/suppressed, request sent/heard, repair timer
//! set/cancelled, repair sent/heard, hold-down entered, recovered/gave-up —
//! each stamped with the deterministic simulation clock.
//!
//! Layering: `obs` depends only on [`netsim`] (for [`SimTime`]) so that the
//! protocol crate (`srm`), the experiment harness and the CLI can all depend
//! on it without cycles.  The protocol layer holds a [`Recorder`] per agent;
//! recorders are **disabled by default** and the record path is a single
//! branch when off, so instrumentation is zero-cost for every existing figure
//! run (their CSVs stay byte-identical).
//!
//! On top of the raw event stream:
//! * [`Timeline`] merges per-member event streams with [`FaultSpan`]s into a
//!   deterministic, stably-ordered sequence and exports JSONL;
//! * [`LogHistogram`] gives low-overhead log-scale histograms (recovery
//!   delay/RTT, duplicate requests/repairs, session-bandwidth share);
//! * [`RunSummary`] aggregates per-member counters + histograms for the
//!   `report` subcommand;
//! * [`stats`] holds the exact sample statistics (quartiles via linear
//!   interpolation) that the experiment figures have always used — moved
//!   here so figures and reports share one implementation.
//!
//! [`SimTime`]: netsim::SimTime

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod stats;
pub mod summary;
pub mod timeline;
pub mod transport;

pub use event::{AduKey, EventKind, FaultSpan, RecordedEvent, RecoveryVia};
pub use hist::LogHistogram;
pub use metrics::{Counter, Gauge, Histo, MetricsRegistry, MetricsSnapshot};
pub use recorder::Recorder;
pub use stats::{summarize, Summary};
pub use summary::{MemberSummary, RunSummary};
pub use timeline::{Chain, MemberEvent, Timeline};
pub use transport::{TransportEventKind, TransportLog, TransportRecord, TransportSummary};

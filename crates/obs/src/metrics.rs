//! Live metrics: a lock-free registry of counters, gauges and histograms
//! with versioned, delta-able snapshots.
//!
//! The offline pipeline (Recorder → [`Timeline`](crate::Timeline) →
//! `report`) answers "what happened" after a run ends; this module answers
//! "what is happening" while it runs.  A [`MetricsRegistry`] hands out
//! cheap clonable handles — [`Counter`], [`Gauge`], [`Histo`] — that the
//! transport reactor threads update on the hot path with one relaxed
//! atomic operation each.  Registration (name → handle) takes a mutex, but
//! only at startup; steady-state updates never lock.
//!
//! A periodic [`MetricsRegistry::snapshot`] freezes every instrument into
//! a [`MetricsSnapshot`]: a versioned, self-describing value that
//! serializes to one JSONL line ([`MetricsSnapshot::to_json_line`]) or a
//! Prometheus-style text exposition
//! ([`MetricsSnapshot::render_prometheus`]).  Counters are cumulative, so
//! rates are derived *between* snapshots: [`MetricsSnapshot::delta_since`]
//! subtracts an earlier snapshot restart-aware (a counter that went
//! backwards is treated as reset, not negative), and
//! [`MetricsSnapshot::rate`] divides by the elapsed interval.
//!
//! Histograms are [`LogHistogram`]s underneath — the same quarter-octave
//! buckets the report pipeline uses — recorded through a fixed-size array
//! of atomic bucket counters ([`Histo`]), so snapshots of different nodes
//! (or different times) merge exactly like any other `LogHistogram`.
//!
//! The simulator never constructs a registry, so netsim runs — and their
//! golden traces and figure CSVs — are untouched by this module existing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use netsim::SimTime;

use crate::hist::{self, LogHistogram};

/// Schema version stamped into every snapshot (`"v"` in JSONL).  Bump when
/// the snapshot layout changes incompatibly.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Atomic-histogram bucket range: quarter-octave indices covering
/// ~2⁻³² .. 2¹⁶ seconds (sub-nanosecond to ~18 hours).  Samples outside
/// the range saturate into the first/last bucket (the histogram stays
/// correct in count/sum/min/max; only the bucketed quantile degrades at
/// the extremes).
const HIST_MIN_IDX: i32 = -128;
/// One past the highest representable bucket index.
const HIST_MAX_IDX: i32 = 64;
/// Number of atomic bucket slots.
const HIST_SLOTS: usize = (HIST_MAX_IDX - HIST_MIN_IDX) as usize;

/// A monotonically increasing event count.  Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an externally maintained cumulative total (used to
    /// mirror reactor-owned tallies that already count monotonically).
    #[inline]
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, peer count, high-water mark).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise to `v` if it exceeds the current value (high-water marks).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free histogram handle: a fixed array of atomic quarter-octave
/// bucket counters plus atomic count/sum/min/max, snapshotting into an
/// ordinary mergeable [`LogHistogram`].
#[derive(Clone, Debug)]
pub struct Histo(Arc<AtomicHist>);

#[derive(Debug)]
struct AtomicHist {
    buckets: Vec<AtomicU64>,
    zeros: AtomicU64,
    count: AtomicU64,
    /// f64 bits, updated with a CAS loop.
    sum: AtomicU64,
    /// f64 bits; meaningful only when `count > 0`.
    min: AtomicU64,
    /// f64 bits; meaningful only when `count > 0`.
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> Self {
        AtomicHist {
            buckets: (0..HIST_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            zeros: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// CAS-update an f64 stored as bits with a combining function.
fn update_f64(cell: &AtomicU64, v: f64, combine: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = combine(f64::from_bits(cur), v);
        match cell.compare_exchange_weak(
            cur,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histo {
    /// Record one sample.  Non-finite samples are ignored; `v <= 0` counts
    /// in the zeros bucket; out-of-range magnitudes saturate into the
    /// first/last bucket.
    #[inline]
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let h = &*self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&h.sum, v, |a, b| a + b);
        update_f64(&h.min, v, f64::min);
        update_f64(&h.max, v, f64::max);
        if v <= 0.0 {
            h.zeros.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = hist::bucket_index(v).clamp(HIST_MIN_IDX, HIST_MAX_IDX - 1);
            let slot = (idx - HIST_MIN_IDX) as usize;
            h.buckets[slot].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Freeze into a mergeable [`LogHistogram`].
    ///
    /// Concurrent recording keeps the result *consistent enough*: each
    /// field is read once, so a racing `record` may be partially included,
    /// which periodic snapshotting tolerates by design.
    pub fn snapshot(&self) -> LogHistogram {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        if count == 0 {
            return LogHistogram::new();
        }
        let mut buckets = BTreeMap::new();
        for (slot, cell) in h.buckets.iter().enumerate() {
            let c = cell.load(Ordering::Relaxed);
            if c > 0 {
                buckets.insert(slot as i32 + HIST_MIN_IDX, c);
            }
        }
        LogHistogram::from_raw(
            buckets,
            h.zeros.load(Ordering::Relaxed),
            count,
            f64::from_bits(h.sum.load(Ordering::Relaxed)),
            f64::from_bits(h.min.load(Ordering::Relaxed)),
            f64::from_bits(h.max.load(Ordering::Relaxed)),
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, Histo>>,
    snapshot_seq: AtomicU64,
}

/// A shared registry of named instruments.
///
/// Cloning shares the underlying registry (it is an `Arc` inside), so the
/// CLI, the reactor and an emitter thread can all hold it.  Instrument
/// lookup/creation locks briefly; the returned handles never do.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
    start: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.  `elapsed` (and snapshot timestamps) count
    /// from this call.
    pub fn new() -> Self {
        MetricsRegistry { inner: Arc::new(Inner::default()), start: Instant::now() }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("metrics lock");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("metrics lock");
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histo {
        let mut map = self.inner.hists.lock().expect("metrics lock");
        map.entry(name.to_string())
            .or_insert_with(|| Histo(Arc::new(AtomicHist::new())))
            .clone()
    }

    /// Elapsed time since the registry was created, on the [`SimTime`]
    /// axis (the same per-process-origin convention the wall-clock
    /// transport uses).
    pub fn elapsed(&self) -> SimTime {
        SimTime::from_nanos(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Freeze every instrument into a snapshot stamped `at` the registry's
    /// current elapsed time, with a registry-monotone sequence number.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let seq = self.inner.snapshot_seq.fetch_add(1, Ordering::Relaxed);
        let counters = self
            .inner
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .inner
            .hists
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { version: SNAPSHOT_VERSION, seq, at: self.elapsed(), counters, gauges, hists }
    }
}

/// A frozen, versioned view of every instrument in a registry.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Registry-monotone snapshot sequence number (restarts reset it).
    pub seq: u64,
    /// Elapsed time on the emitting process's clock axis.
    pub at: SimTime,
    /// Cumulative counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges, by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms, by name (cumulative since registry creation).
    pub hists: BTreeMap<String, LogHistogram>,
}

/// Restart-aware counter subtraction: a counter that went backwards means
/// the emitting process restarted (or the counter wrapped), so the later
/// value *is* the delta since the reset.
fn counter_delta(later: u64, earlier: u64) -> u64 {
    if later >= earlier {
        later - earlier
    } else {
        later
    }
}

impl MetricsSnapshot {
    /// The interval between two snapshots, in seconds; `None` when `self`
    /// is not later than `prev` (clock restart — rates are undefined).
    pub fn elapsed_since(&self, prev: &MetricsSnapshot) -> Option<f64> {
        (self.at > prev.at).then(|| self.at.since(prev.at).as_secs_f64())
    }

    /// The change in each instrument since `prev`.
    ///
    /// Counters subtract restart-aware (a value that went backwards is a
    /// reset, and the later value is the delta).
    /// Counters present only in `self` (registered after `prev` was taken)
    /// pass through whole.  Gauges and histograms are levels/cumulative
    /// state, not flows: the delta carries `self`'s values unchanged.
    /// `seq`/`at` are `self`'s.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), counter_delta(v, prev.counters.get(k).copied().unwrap_or(0))))
            .collect();
        MetricsSnapshot {
            version: self.version,
            seq: self.seq,
            at: self.at,
            counters,
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }

    /// Per-second rate of counter `name` between `prev` and `self`, or
    /// `None` if the counter is absent or the interval is not positive.
    pub fn rate(&self, prev: &MetricsSnapshot, name: &str) -> Option<f64> {
        let later = *self.counters.get(name)?;
        let earlier = prev.counters.get(name).copied().unwrap_or(0);
        let dt = self.elapsed_since(prev)?;
        Some(counter_delta(later, earlier) as f64 / dt)
    }

    /// One JSONL line (no trailing newline):
    ///
    /// ```json
    /// {"v":1,"seq":0,"at":1.25,"counters":{...},"gauges":{...},
    ///  "hists":{"name":{"count":..,"zeros":..,"sum":..,"min":..,"max":..,
    ///           "buckets":[[idx,count],...]}}}
    /// ```
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"v\":{},\"seq\":{},\"at\":{:.9}",
            self.version,
            self.seq,
            self.at.as_secs_f64()
        );
        s.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", crate::timeline::escape(k), v);
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", crate::timeline::escape(k), v);
        }
        s.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"zeros\":{},\"sum\":{}",
                crate::timeline::escape(k),
                h.count(),
                h.zeros(),
                fmt_f64(h.sum()),
            );
            if let (Some(min), Some(max)) = (h.min(), h.max()) {
                let _ = write!(s, ",\"min\":{},\"max\":{}", fmt_f64(min), fmt_f64(max));
            }
            s.push_str(",\"buckets\":[");
            for (j, (idx, c)) in h.bucket_counts().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{idx},{c}]");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Prometheus-style text exposition.  Every metric name is prefixed
    /// (`srm_` by convention) and sanitized to `[a-zA-Z0-9_]`; histograms
    /// expose `_count`, `_sum` and quantile gauges.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut s = String::with_capacity(512);
        let name = |k: &str| -> String {
            let mut n = String::with_capacity(prefix.len() + k.len());
            n.push_str(prefix);
            for c in k.chars() {
                n.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
            }
            n
        };
        for (k, v) in &self.counters {
            let n = name(k);
            let _ = writeln!(s, "# TYPE {n} counter");
            let _ = writeln!(s, "{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = name(k);
            let _ = writeln!(s, "# TYPE {n} gauge");
            let _ = writeln!(s, "{n} {v}");
        }
        for (k, h) in &self.hists {
            let n = name(k);
            let _ = writeln!(s, "# TYPE {n} summary");
            let _ = writeln!(s, "{n}_count {}", h.count());
            let _ = writeln!(s, "{n}_sum {}", fmt_f64(h.sum()));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(s, "{n}{{quantile=\"{label}\"}} {}", fmt_f64(v));
                }
            }
        }
        s
    }
}

/// JSON-safe float formatting: finite values print plainly, non-finite
/// (which JSON cannot carry) degrade to 0.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    #[test]
    fn counters_and_gauges_share_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("frames");
        let b = reg.counter("frames");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("frames").get(), 3);
        let g = reg.gauge("depth");
        g.set(7);
        g.raise(5); // lower than current: no change
        g.raise(9);
        assert_eq!(reg.gauge("depth").get(), 9);
    }

    #[test]
    fn histo_snapshot_matches_direct_log_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        let mut direct = LogHistogram::new();
        for v in [0.0, 0.001, 0.25, 1.0, 7.5, 1e3] {
            h.record(v);
            direct.record(v);
        }
        h.record(f64::NAN); // ignored
        assert_eq!(h.snapshot(), direct);
    }

    #[test]
    fn histo_saturates_out_of_range_magnitudes() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sat");
        h.record(1e300); // far above the top bucket
        h.record(1e-300); // far below the bottom bucket
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), Some(1e300)); // exact extremes survive
        assert_eq!(snap.min(), Some(1e-300));
        // Both samples landed in (clamped) buckets, not lost.
        let bucketed: u64 = snap.bucket_counts().map(|(_, c)| c).sum();
        assert_eq!(bucketed, 2);
    }

    #[test]
    fn snapshot_carries_everything_and_is_versioned() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        reg.gauge("g").set(2);
        reg.histogram("h").record(1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.seq, 0);
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2);
        assert_eq!(snap.hists["h"].count(), 1);
        assert_eq!(reg.snapshot().seq, 1);
    }

    fn snap_at(secs: f64, counters: &[(&str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            seq: 0,
            at: SimTime::ZERO + SimDuration::from_secs_f64(secs),
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    #[test]
    fn delta_and_rate_between_snapshots() {
        let a = snap_at(1.0, &[("tx", 100)]);
        let b = snap_at(3.0, &[("tx", 150)]);
        let d = b.delta_since(&a);
        assert_eq!(d.counters["tx"], 50);
        assert_eq!(b.rate(&a, "tx"), Some(25.0));
        assert_eq!(b.rate(&a, "nope"), None);
    }

    #[test]
    fn delta_treats_backwards_counters_as_restart() {
        // The emitting process restarted: the counter fell from 1000 to 7.
        let before = snap_at(10.0, &[("tx", 1000)]);
        let after = snap_at(12.0, &[("tx", 7)]);
        let d = after.delta_since(&before);
        assert_eq!(d.counters["tx"], 7, "later value is the delta since reset");
        assert_eq!(after.rate(&before, "tx"), Some(3.5));
        // A counter that appears only in the later snapshot passes whole.
        let grown = snap_at(13.0, &[("tx", 8), ("new", 4)]);
        assert_eq!(grown.delta_since(&after).counters["new"], 4);
    }

    #[test]
    fn rate_is_none_without_forward_time() {
        let a = snap_at(5.0, &[("tx", 1)]);
        let b = snap_at(5.0, &[("tx", 2)]);
        assert_eq!(b.rate(&a, "tx"), None, "no elapsed interval");
        let earlier = snap_at(4.0, &[("tx", 2)]);
        assert_eq!(earlier.rate(&a, "tx"), None, "clock went backwards");
    }

    #[test]
    fn json_line_is_stable_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("rx").add(3);
        reg.gauge("wheel").set(4);
        reg.histogram("lat").record(0.5);
        let line = reg.snapshot().to_json_line();
        assert!(line.starts_with("{\"v\":1,\"seq\":0,\"at\":"));
        assert!(line.contains("\"counters\":{\"rx\":3}"), "{line}");
        assert!(line.contains("\"gauges\":{\"wheel\":4}"), "{line}");
        assert!(line.contains("\"hists\":{\"lat\":{\"count\":1"), "{line}");
        assert!(line.contains("\"buckets\":[[-4,1]]"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        let reg = MetricsRegistry::new();
        reg.counter("tx.frames").add(2);
        reg.gauge("depth").set(1);
        let h = reg.histogram("lat");
        h.record(1.0);
        h.record(2.0);
        let text = reg.snapshot().render_prometheus("srm_");
        assert!(text.contains("# TYPE srm_tx_frames counter"), "{text}");
        assert!(text.contains("srm_tx_frames 2"), "{text}");
        assert!(text.contains("# TYPE srm_depth gauge"), "{text}");
        assert!(text.contains("srm_lat_count 2"), "{text}");
        assert!(text.contains("srm_lat{quantile=\"0.5\"}"), "{text}");
    }

    #[test]
    fn concurrent_updates_are_all_counted() {
        let reg = MetricsRegistry::new();
        let mut threads = Vec::new();
        for _ in 0..4 {
            let c = reg.counter("n");
            let h = reg.histogram("v");
            threads.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.inc();
                    h.record((i % 10) as f64 + 0.5);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("n").get(), 4000);
        assert_eq!(reg.histogram("v").count(), 4000);
        assert_eq!(reg.histogram("v").snapshot().count(), 4000);
    }
}

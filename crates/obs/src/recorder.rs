//! Per-member event recorder.
//!
//! Each protocol agent owns one [`Recorder`].  Recorders start **disabled**:
//! the hot-path [`Recorder::record`] call is then a single predictable branch
//! and allocates nothing, so instrumentation has zero cost for ordinary
//! figure runs.  Enabling a recorder never touches the protocol's RNG or
//! timers, so a traced run takes exactly the same decisions as an untraced
//! one — only the observation differs.
//!
//! Recorders come in two capacities, mirroring the netsim `Trace` sink:
//! [`Recorder::enable`] keeps every event (simulator and golden-trace runs,
//! which need the complete stream), while [`Recorder::enable_bounded`] keeps
//! a ring of the most recent `cap` events and counts what it evicted
//! ([`Recorder::dropped_events`]) — the right mode for long live `srm-node`
//! runs whose memory must stay bounded.

use std::collections::VecDeque;

use netsim::SimTime;

use crate::event::{AduKey, EventKind, RecordedEvent};

/// Captures the typed event stream of one member.
///
/// Events carry a recorder-local sequence number so that a
/// [`Timeline`](crate::Timeline) can merge many members' streams into a
/// total order that is stable even when events share a timestamp.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    enabled: bool,
    /// `None` = unbounded; `Some(cap)` = ring of the most recent `cap`.
    cap: Option<usize>,
    seq: u64,
    events: VecDeque<RecordedEvent>,
    dropped: u64,
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Turn recording on, unbounded.  Safe to call at any point; events
    /// before the call are simply not captured.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.cap = None;
    }

    /// Turn recording on with a ring of the most recent `cap` events.
    /// When full, the oldest event is evicted and counted in
    /// [`Recorder::dropped_events`].  A `cap` of 0 records nothing (every
    /// event counts as dropped).
    pub fn enable_bounded(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = Some(cap);
    }

    /// Is this recorder capturing events?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Number of events evicted from the ring since enabling (always 0 in
    /// unbounded mode).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record one event.  No-op (single branch) when disabled.
    #[inline]
    pub fn record(&mut self, at: SimTime, adu: AduKey, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        if let Some(cap) = self.cap {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(RecordedEvent { at, adu, kind, seq });
    }

    /// Drain the captured events, leaving the recorder enabled-state and
    /// sequence counter intact (a crash/restart cycle keeps numbering
    /// monotone).
    pub fn take_events(&mut self) -> Vec<RecordedEvent> {
        std::mem::take(&mut self.events).into()
    }

    /// Iterate the captured events without draining, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RecordedEvent> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adu() -> AduKey {
        AduKey { source: 0, page_creator: 0, page_number: 0, seq: 1 }
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let mut r = Recorder::new();
        r.record(SimTime::ZERO, adu(), EventKind::GapDetected);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_numbers_events_monotonically() {
        let mut r = Recorder::new();
        r.enable();
        r.record(SimTime::ZERO, adu(), EventKind::GapDetected);
        r.record(SimTime::ZERO, adu(), EventKind::RequestSent { round: 1 });
        let evs = r.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        // Sequence numbering continues across a drain.
        r.record(SimTime::ZERO, adu(), EventKind::GaveUp);
        assert_eq!(r.events().next().unwrap().seq, 2);
    }

    #[test]
    fn bounded_recorder_keeps_most_recent_and_counts_drops() {
        let mut r = Recorder::new();
        r.enable_bounded(2);
        assert_eq!(r.capacity(), Some(2));
        for round in 1..=5 {
            r.record(SimTime::ZERO, adu(), EventKind::RequestSent { round });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped_events(), 3);
        // The survivors are the two most recent, seq numbering untouched.
        let evs = r.take_events();
        assert_eq!((evs[0].seq, evs[1].seq), (3, 4));
        // Numbering still continues after the drain.
        r.record(SimTime::ZERO, adu(), EventKind::GaveUp);
        assert_eq!(r.events().next().unwrap().seq, 5);
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let mut r = Recorder::new();
        r.enable_bounded(0);
        r.record(SimTime::ZERO, adu(), EventKind::GapDetected);
        assert!(r.is_empty());
        assert_eq!(r.dropped_events(), 1);
        assert!(r.is_enabled());
    }
}

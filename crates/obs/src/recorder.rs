//! Per-member event recorder.
//!
//! Each protocol agent owns one [`Recorder`].  Recorders start **disabled**:
//! the hot-path [`Recorder::record`] call is then a single predictable branch
//! and allocates nothing, so instrumentation has zero cost for ordinary
//! figure runs.  Enabling a recorder never touches the protocol's RNG or
//! timers, so a traced run takes exactly the same decisions as an untraced
//! one — only the observation differs.

use netsim::SimTime;

use crate::event::{AduKey, EventKind, RecordedEvent};

/// Captures the typed event stream of one member.
///
/// Events carry a recorder-local sequence number so that a
/// [`Timeline`](crate::Timeline) can merge many members' streams into a
/// total order that is stable even when events share a timestamp.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    enabled: bool,
    seq: u64,
    events: Vec<RecordedEvent>,
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Turn recording on.  Safe to call at any point; events before the call
    /// are simply not captured.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is this recorder capturing events?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record one event.  No-op (single branch) when disabled.
    #[inline]
    pub fn record(&mut self, at: SimTime, adu: AduKey, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push(RecordedEvent { at, adu, kind, seq });
    }

    /// Drain the captured events, leaving the recorder enabled-state and
    /// sequence counter intact (a crash/restart cycle keeps numbering
    /// monotone).
    pub fn take_events(&mut self) -> Vec<RecordedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Borrow the captured events without draining.
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adu() -> AduKey {
        AduKey { source: 0, page_creator: 0, page_number: 0, seq: 1 }
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let mut r = Recorder::new();
        r.record(SimTime::ZERO, adu(), EventKind::GapDetected);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_numbers_events_monotonically() {
        let mut r = Recorder::new();
        r.enable();
        r.record(SimTime::ZERO, adu(), EventKind::GapDetected);
        r.record(SimTime::ZERO, adu(), EventKind::RequestSent { round: 1 });
        let evs = r.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        // Sequence numbering continues across a drain.
        r.record(SimTime::ZERO, adu(), EventKind::GaveUp);
        assert_eq!(r.events()[0].seq, 2);
    }
}

//! Exact sample statistics shared by the experiment figures and the report
//! CLI.
//!
//! Moved here from the experiment harness so that figures and observability
//! reports use one implementation; the algorithm (linear-interpolated
//! percentiles over the sorted sample) is **unchanged**, which keeps every
//! committed figure CSV byte-identical.  The paper's scatter plots draw "the
//! median from the twenty simulations … the two dotted lines mark the upper
//! and lower quartiles".

/// A five-number-ish summary of one batch of simulations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// Summarize a sample. Returns `None` for an empty slice.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in summaries"));
    let n = v.len();
    Some(Summary {
        n,
        min: v[0],
        q1: percentile(&v, 0.25),
        median: percentile(&v, 0.5),
        q3: percentile(&v, 0.75),
        max: v[n - 1],
        mean: v.iter().sum::<f64>() / n as f64,
    })
}

/// Linear-interpolated percentile of a sorted slice, `p ∈ [0, 1]`.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl Summary {
    /// Render as the fixed-width cell used in the text tables.
    pub fn cell(&self) -> String {
        format!("{:6.2} [{:5.2},{:5.2}]", self.median, self.q1, self.q3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = summarize(&[3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 3.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn known_quartiles() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn interpolation_between_ranks() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn cell_format_is_stable() {
        let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.cell(), "  2.00 [ 1.50, 2.50]");
    }
}

//! Per-member and per-run counter/histogram summaries — the data behind the
//! `report` CLI subcommand.

use std::fmt::Write as _;

use crate::hist::LogHistogram;
use crate::transport::TransportSummary;

/// Counters for one member, harvested from the protocol layer's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemberSummary {
    /// Member id.
    pub member: u64,
    /// Original data packets multicast.
    pub data_sent: u64,
    /// Request packets multicast.
    pub requests_sent: u64,
    /// Repair packets multicast.
    pub repairs_sent: u64,
    /// Session (state-exchange) packets multicast.
    pub session_sent: u64,
    /// Loss episodes opened.
    pub losses: u64,
    /// Loss episodes that recovered.
    pub recovered: u64,
    /// Loss episodes abandoned after max request rounds.
    pub gave_up: u64,
    /// Requests ignored because the ADU was inside its hold-down window.
    pub requests_held_down: u64,
    /// Duplicate requests observed across this member's episodes
    /// (requests beyond the first per episode).
    pub dup_requests: u64,
    /// Duplicate repairs observed across this member's episodes.
    pub dup_repairs: u64,
}

impl MemberSummary {
    /// A zeroed summary for `member`.
    pub fn new(member: u64) -> Self {
        MemberSummary { member, ..MemberSummary::default() }
    }

    /// Total packets this member multicast.
    pub fn total_sent(&self) -> u64 {
        self.data_sent + self.requests_sent + self.repairs_sent + self.session_sent
    }
}

/// Run-level aggregation: per-member counter rows plus log-scale histograms
/// of the quantities the paper evaluates.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// One row per member, in harvest order (sorted before rendering).
    pub members: Vec<MemberSummary>,
    /// Recovery delay in units of the member↔source RTT (Fig 4–8 metric).
    pub recovery_delay_rtt: LogHistogram,
    /// First-request delay in RTT units.
    pub request_delay_rtt: LogHistogram,
    /// Duplicate requests per loss episode.
    pub dup_requests_per_loss: LogHistogram,
    /// Duplicate repairs per repaired ADU.
    pub dup_repairs_per_adu: LogHistogram,
    /// Per-member share of multicast packets that are session messages.
    pub session_share: LogHistogram,
    /// Per-node transport rows (chaos/supervision/liveness counters).  Only
    /// populated by the wall-clock runtime; when empty the rendered report is
    /// unchanged, which keeps simulator output byte-identical.
    pub transport: Vec<TransportSummary>,
}

impl RunSummary {
    /// A fresh, empty summary.
    pub fn new() -> Self {
        RunSummary::default()
    }

    /// Add one member's counter row and fold its derived ratios into the
    /// run histograms.
    pub fn add_member(&mut self, m: MemberSummary) {
        let total = m.total_sent();
        if total > 0 {
            self.session_share.record(m.session_sent as f64 / total as f64);
        }
        self.members.push(m);
    }

    /// Column totals across members.
    pub fn totals(&self) -> MemberSummary {
        let mut t = MemberSummary::new(0);
        for m in &self.members {
            t.data_sent += m.data_sent;
            t.requests_sent += m.requests_sent;
            t.repairs_sent += m.repairs_sent;
            t.session_sent += m.session_sent;
            t.losses += m.losses;
            t.recovered += m.recovered;
            t.gave_up += m.gave_up;
            t.requests_held_down += m.requests_held_down;
            t.dup_requests += m.dup_requests;
            t.dup_repairs += m.dup_repairs;
        }
        t
    }

    /// Render the counter table plus histogram summary lines.
    pub fn render(&self, title: &str) -> String {
        const HEADERS: [&str; 11] = [
            "member", "data", "reqs", "repairs", "session", "losses", "recov", "gaveup",
            "helddown", "dupreq", "duprep",
        ];
        let mut members = self.members.clone();
        members.sort_by_key(|m| m.member);
        let mut rows: Vec<[String; 11]> = members
            .iter()
            .map(|m| {
                [
                    format!("m{}", m.member),
                    m.data_sent.to_string(),
                    m.requests_sent.to_string(),
                    m.repairs_sent.to_string(),
                    m.session_sent.to_string(),
                    m.losses.to_string(),
                    m.recovered.to_string(),
                    m.gave_up.to_string(),
                    m.requests_held_down.to_string(),
                    m.dup_requests.to_string(),
                    m.dup_repairs.to_string(),
                ]
            })
            .collect();
        let t = self.totals();
        rows.push([
            "total".to_string(),
            t.data_sent.to_string(),
            t.requests_sent.to_string(),
            t.repairs_sent.to_string(),
            t.session_sent.to_string(),
            t.losses.to_string(),
            t.recovered.to_string(),
            t.gave_up.to_string(),
            t.requests_held_down.to_string(),
            t.dup_requests.to_string(),
            t.dup_repairs.to_string(),
        ]);

        let mut widths: [usize; 11] = [0; 11];
        for (i, h) in HEADERS.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "# {title}");
        let header: Vec<String> = HEADERS
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out.push('\n');
        let _ = writeln!(out, "recovery delay / RTT : {}", self.recovery_delay_rtt.summary_line());
        let _ = writeln!(out, "request delay / RTT  : {}", self.request_delay_rtt.summary_line());
        let _ = writeln!(out, "dup requests / loss  : {}", self.dup_requests_per_loss.summary_line());
        let _ = writeln!(out, "dup repairs / adu    : {}", self.dup_repairs_per_adu.summary_line());
        let _ = writeln!(out, "session pkt share    : {}", self.session_share.summary_line());
        if !self.transport.is_empty() {
            out.push('\n');
            out.push_str(&self.render_transport());
        }
        out
    }

    /// Add one node's transport counter row.
    pub fn add_transport(&mut self, t: TransportSummary) {
        self.transport.push(t);
    }

    /// Render the transport table alone (chaos / supervision / liveness /
    /// queue peaks).
    pub fn render_transport(&self) -> String {
        const HEADERS: [&str; 14] = [
            "member", "chdrop", "chdup", "chdelay", "chcorrupt", "blackhole", "sockerr",
            "respawn", "decerr", "suspect", "dead", "wheelhw", "delayqhw", "diskrep",
        ];
        let mut rows: Vec<[String; 14]> = Vec::new();
        let mut sorted = self.transport.clone();
        sorted.sort_by_key(|t| t.member);
        let mut total = TransportSummary::new(0);
        for t in &sorted {
            total.chaos_dropped += t.chaos_dropped;
            total.chaos_duplicated += t.chaos_duplicated;
            total.chaos_delayed += t.chaos_delayed;
            total.chaos_corrupted += t.chaos_corrupted;
            total.blackholed += t.blackholed;
            total.socket_errors += t.socket_errors;
            total.respawns += t.respawns;
            total.decode_errors += t.decode_errors;
            total.peers_suspected += t.peers_suspected;
            total.peers_died += t.peers_died;
            total.disk_repairs += t.disk_repairs;
            // High-water marks are peaks, not flows: the total row shows the
            // worst node, not a meaningless sum.
            total.wheel_hw = total.wheel_hw.max(t.wheel_hw);
            total.delayq_hw = total.delayq_hw.max(t.delayq_hw);
            rows.push(transport_row(&format!("m{}", t.member), t));
        }
        rows.push(transport_row("total", &total));

        let mut widths: [usize; 14] = [0; 14];
        for (i, h) in HEADERS.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# transport (chaos / supervision / liveness)");
        let header: Vec<String> = HEADERS
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

fn transport_row(label: &str, t: &TransportSummary) -> [String; 14] {
    [
        label.to_string(),
        t.chaos_dropped.to_string(),
        t.chaos_duplicated.to_string(),
        t.chaos_delayed.to_string(),
        t.chaos_corrupted.to_string(),
        t.blackholed.to_string(),
        t.socket_errors.to_string(),
        t.respawns.to_string(),
        t.decode_errors.to_string(),
        t.peers_suspected.to_string(),
        t.peers_died.to_string(),
        t.wheel_hw.to_string(),
        t.delayq_hw.to_string(),
        t.disk_repairs.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_columns() {
        let mut run = RunSummary::new();
        let mut a = MemberSummary::new(1);
        a.data_sent = 10;
        a.session_sent = 10;
        let mut b = MemberSummary::new(2);
        b.requests_sent = 3;
        b.losses = 2;
        b.recovered = 2;
        run.add_member(a);
        run.add_member(b);
        let t = run.totals();
        assert_eq!(t.data_sent, 10);
        assert_eq!(t.requests_sent, 3);
        assert_eq!(t.losses, 2);
        assert_eq!(t.recovered, 2);
        // Session share recorded for both members: 0.5 and 0.0.
        assert_eq!(run.session_share.count(), 2);
    }

    #[test]
    fn render_contains_rows_and_histograms() {
        let mut run = RunSummary::new();
        run.add_member(MemberSummary::new(7));
        run.recovery_delay_rtt.record(2.0);
        let s = run.render("demo");
        assert!(s.contains("# demo"));
        assert!(s.contains("m7"));
        assert!(s.contains("total"));
        assert!(s.contains("recovery delay / RTT : n=1"));
    }
}

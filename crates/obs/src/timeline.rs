//! Deterministic merged event timelines and the JSONL exporter.
//!
//! A [`Timeline`] merges the per-member event streams drained from
//! [`Recorder`](crate::Recorder)s with the run's [`FaultSpan`]s into one
//! totally-ordered sequence.  The order is `(time, lane, member, seq)` where
//! fault-starts sort before member events and fault-ends after them at equal
//! timestamps, so a fault window visually *nests* the recovery spans it
//! caused.  All ordering keys are integers, which makes the JSONL export
//! bit-for-bit deterministic — the property the golden-file tests pin and
//! the reason faulted replays stay byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use netsim::SimTime;

use crate::event::{fmt_time, AduKey, EventKind, FaultSpan, RecordedEvent};
use crate::transport::TransportRecord;

/// A member-attributed event inside a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberEvent {
    /// Simulation time the event occurred.
    pub at: SimTime,
    /// The member that recorded it.
    pub member: u64,
    /// The ADU the episode is keyed on.
    pub adu: AduKey,
    /// What happened.
    pub kind: EventKind,
    /// Recorder-local sequence number (tie-break within a member).
    pub seq: u64,
}

/// A reconstructed request→suppression→repair chain for one ADU, assembled
/// across members — the causal story of Fig 5–8 as data.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The ADU that was lost.
    pub adu: AduKey,
    /// Earliest gap detection and the member that detected it.
    pub detected_at: SimTime,
    /// Member that first detected the gap.
    pub detected_by: u64,
    /// First request transmission.
    pub request_at: SimTime,
    /// Member that sent the first request.
    pub requester: u64,
    /// Members whose own request was suppressed or backed off after hearing
    /// another's (sorted, deduplicated).
    pub suppressed: Vec<u64>,
    /// First repair transmission, if any.
    pub repair_at: Option<SimTime>,
    /// Member that sent the first repair.
    pub repairer: Option<u64>,
    /// Latest successful recovery among members that recovered.
    pub recovered_at: Option<SimTime>,
    /// Number of members that recovered the ADU.
    pub recovered_members: u64,
}

impl Chain {
    /// A chain is *complete* when the full request→suppression→repair story
    /// is present with ordered timestamps: a gap was detected, a request was
    /// sent no earlier, at least one other member was suppressed/backed off,
    /// a repair answered no earlier than the request, and someone recovered
    /// no earlier than the repair.
    pub fn is_complete(&self) -> bool {
        match (self.repair_at, self.recovered_at) {
            (Some(rep), Some(rec)) => {
                self.detected_at <= self.request_at
                    && self.request_at <= rep
                    && rep <= rec
                    && !self.suppressed.is_empty()
                    && self.recovered_members > 0
            }
            _ => false,
        }
    }

    /// One-line human rendering of the chain.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{}: gap@{} by m{} -> request@{} by m{}",
            self.adu,
            fmt_time(self.detected_at),
            self.detected_by,
            fmt_time(self.request_at),
            self.requester,
        );
        if !self.suppressed.is_empty() {
            let ids: Vec<String> = self.suppressed.iter().map(|m| format!("m{m}")).collect();
            let _ = write!(s, " -> suppressed [{}]", ids.join(","));
        }
        if let (Some(rep), Some(by)) = (self.repair_at, self.repairer) {
            let _ = write!(s, " -> repair@{} by m{}", fmt_time(rep), by);
        }
        if let Some(rec) = self.recovered_at {
            let _ = write!(
                s,
                " -> recovered@{} ({} members){}",
                fmt_time(rec),
                self.recovered_members,
                if self.is_complete() { " [complete]" } else { "" }
            );
        }
        s
    }
}

/// Ordering lane: fault starts frame the events they cause, fault ends close
/// behind them.
fn lane(kind_is_fault_start: bool, kind_is_fault_end: bool) -> u8 {
    if kind_is_fault_start {
        0
    } else if kind_is_fault_end {
        2
    } else {
        1
    }
}

enum Line<'a> {
    FaultStart(&'a FaultSpan),
    FaultEnd(&'a FaultSpan),
    Event(&'a MemberEvent),
    Transport(u64, &'a TransportRecord),
}

impl Line<'_> {
    /// `(time, lane, member, seq, sub)` — `sub` puts a member's transport
    /// records just after its same-instant recovery events, so timelines
    /// without transport records keep the exact pre-existing order (the
    /// golden-trace property).
    fn sort_key(&self) -> (u64, u8, u64, u64, u8) {
        match self {
            Line::FaultStart(f) => (f.start.as_nanos(), lane(true, false), 0, 0, 0),
            Line::FaultEnd(f) => (
                f.end.expect("only closed spans emit ends").as_nanos(),
                lane(false, true),
                0,
                0,
                0,
            ),
            Line::Event(e) => (e.at.as_nanos(), lane(false, false), e.member, e.seq, 0),
            Line::Transport(m, r) => (r.at.as_nanos(), lane(false, false), *m, r.seq, 1),
        }
    }
}

/// A merged, filterable, exportable run timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<MemberEvent>,
    faults: Vec<FaultSpan>,
    transport: Vec<(u64, TransportRecord)>,
}

impl Timeline {
    /// A fresh, empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Add one member's drained event stream.
    pub fn add_member(&mut self, member: u64, events: Vec<RecordedEvent>) {
        self.events.extend(events.into_iter().map(|e| MemberEvent {
            at: e.at,
            member,
            adu: e.adu,
            kind: e.kind,
            seq: e.seq,
        }));
    }

    /// Add a fault window.
    pub fn add_fault(&mut self, span: FaultSpan) {
        self.faults.push(span);
    }

    /// Add one member's drained transport event stream (chaos actions,
    /// supervision, liveness transitions).
    pub fn add_transport(&mut self, member: u64, events: Vec<TransportRecord>) {
        self.transport.extend(events.into_iter().map(|r| (member, r)));
    }

    /// All transport records in deterministic `(time, member, seq)` order.
    pub fn transport_events(&self) -> Vec<(u64, TransportRecord)> {
        let mut v = self.transport.clone();
        v.sort_by_key(|(m, r)| (r.at.as_nanos(), *m, r.seq));
        v
    }

    /// All member events in deterministic `(time, member, seq)` order.
    pub fn events(&self) -> Vec<MemberEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| (e.at.as_nanos(), e.member, e.seq));
        v
    }

    /// The fault windows, in insertion order.
    pub fn faults(&self) -> &[FaultSpan] {
        &self.faults
    }

    /// Total number of member events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the timeline holds no member events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Restrict the timeline.  All filters are conjunctive:
    ///
    /// * `member` keeps only that member's events;
    /// * `adu` keeps only events whose ADU renders as exactly that string
    ///   (the `s<src>:s<creator>/p<page>:<seq>` form);
    /// * `fault` keeps only events falling inside a fault window with that
    ///   label (and drops the other windows).
    pub fn filter(
        &self,
        member: Option<u64>,
        adu: Option<&str>,
        fault: Option<&str>,
    ) -> Timeline {
        let windows: Vec<&FaultSpan> = match fault {
            None => self.faults.iter().collect(),
            Some(label) => self.faults.iter().filter(|f| f.label == label).collect(),
        };
        let events = self
            .events
            .iter()
            .filter(|e| member.is_none_or(|m| e.member == m))
            .filter(|e| adu.is_none_or(|a| e.adu.to_string() == a))
            .filter(|e| fault.is_none() || windows.iter().any(|w| w.contains(e.at)))
            .copied()
            .collect();
        let transport = self
            .transport
            .iter()
            .filter(|(m, _)| member.is_none_or(|want| *m == want))
            .filter(|(_, r)| fault.is_none() || windows.iter().any(|w| w.contains(r.at)))
            .filter(|_| adu.is_none()) // transport records are not ADU-keyed
            .cloned()
            .collect();
        Timeline { events, faults: windows.into_iter().cloned().collect(), transport }
    }

    /// Group events into episode spans keyed by `(member, adu)`, each span's
    /// events in time order.
    pub fn episodes(&self) -> BTreeMap<(u64, AduKey), Vec<MemberEvent>> {
        let mut map: BTreeMap<(u64, AduKey), Vec<MemberEvent>> = BTreeMap::new();
        for e in self.events() {
            map.entry((e.member, e.adu)).or_default().push(e);
        }
        map
    }

    /// Reconstruct per-ADU request/suppression/repair chains across members.
    ///
    /// Returns one [`Chain`] per ADU that saw at least a gap detection and a
    /// request, in ADU order.
    pub fn chains(&self) -> Vec<Chain> {
        struct Acc {
            detected: Option<(SimTime, u64)>,
            request: Option<(SimTime, u64)>,
            suppressed: Vec<u64>,
            repair: Option<(SimTime, u64)>,
            recovered_at: Option<SimTime>,
            recovered_members: u64,
        }
        let mut per_adu: BTreeMap<AduKey, Acc> = BTreeMap::new();
        for e in self.events() {
            let acc = per_adu.entry(e.adu).or_insert(Acc {
                detected: None,
                request: None,
                suppressed: Vec::new(),
                repair: None,
                recovered_at: None,
                recovered_members: 0,
            });
            match e.kind {
                EventKind::GapDetected if acc.detected.is_none() => {
                    acc.detected = Some((e.at, e.member));
                }
                EventKind::RequestSent { .. } if acc.request.is_none() => {
                    acc.request = Some((e.at, e.member));
                }
                EventKind::RequestBackoff { .. } | EventKind::RequestSuppressed => {
                    acc.suppressed.push(e.member);
                }
                EventKind::RepairSent if acc.repair.is_none() => {
                    acc.repair = Some((e.at, e.member));
                }
                EventKind::Recovered { .. } => {
                    acc.recovered_members += 1;
                    acc.recovered_at = Some(match acc.recovered_at {
                        Some(t) if t >= e.at => t,
                        _ => e.at,
                    });
                }
                _ => {}
            }
        }
        per_adu
            .into_iter()
            .filter_map(|(adu, mut acc)| {
                let (detected_at, detected_by) = acc.detected?;
                let (request_at, requester) = acc.request?;
                acc.suppressed.sort_unstable();
                acc.suppressed.dedup();
                Some(Chain {
                    adu,
                    detected_at,
                    detected_by,
                    request_at,
                    requester,
                    suppressed: acc.suppressed,
                    repair_at: acc.repair.map(|(t, _)| t),
                    repairer: acc.repair.map(|(_, m)| m),
                    recovered_at: acc.recovered_at,
                    recovered_members: acc.recovered_members,
                })
            })
            .collect()
    }

    /// Export the timeline as JSON Lines: one object per member event plus
    /// `fault_start` / `fault_end` framing lines, in the deterministic merge
    /// order described in the module docs.
    pub fn to_jsonl(&self) -> String {
        let events = self.events();
        let mut lines: Vec<Line<'_>> = Vec::with_capacity(
            events.len() + 2 * self.faults.len() + self.transport.len(),
        );
        for f in &self.faults {
            lines.push(Line::FaultStart(f));
            if f.end.is_some() {
                lines.push(Line::FaultEnd(f));
            }
        }
        for e in &events {
            lines.push(Line::Event(e));
        }
        for (m, r) in &self.transport {
            lines.push(Line::Transport(*m, r));
        }
        lines.sort_by_key(Line::sort_key);

        let mut out = String::new();
        for line in lines {
            match line {
                Line::FaultStart(f) => {
                    let _ = writeln!(
                        out,
                        "{{\"t\":{},\"fault\":\"{}\",\"ev\":\"fault_start\"}}",
                        fmt_time(f.start),
                        escape(&f.label),
                    );
                }
                Line::FaultEnd(f) => {
                    let _ = writeln!(
                        out,
                        "{{\"t\":{},\"fault\":\"{}\",\"ev\":\"fault_end\"}}",
                        fmt_time(f.end.expect("closed span")),
                        escape(&f.label),
                    );
                }
                Line::Event(e) => {
                    let _ = write!(
                        out,
                        "{{\"t\":{},\"member\":{},\"adu\":\"{}\",\"ev\":\"{}\"",
                        fmt_time(e.at),
                        e.member,
                        e.adu,
                        e.kind.name(),
                    );
                    match e.kind {
                        EventKind::RequestTimerSet { until, backoff }
                        | EventKind::RequestBackoff { until, backoff } => {
                            let _ = write!(
                                out,
                                ",\"until\":{},\"backoff\":{}",
                                fmt_time(until),
                                backoff
                            );
                        }
                        EventKind::RequestSent { round } => {
                            let _ = write!(out, ",\"round\":{round}");
                        }
                        EventKind::RequestHeard { from } | EventKind::RepairHeard { from } => {
                            let _ = write!(out, ",\"from\":{from}");
                        }
                        EventKind::RepairTimerSet { until }
                        | EventKind::HoldDownEntered { until } => {
                            let _ = write!(out, ",\"until\":{}", fmt_time(until));
                        }
                        EventKind::Recovered { via } => {
                            let _ = write!(out, ",\"via\":\"{}\"", via.label());
                        }
                        _ => {}
                    }
                    out.push_str("}\n");
                }
                Line::Transport(m, r) => {
                    let _ = write!(
                        out,
                        "{{\"t\":{},\"member\":{},\"ev\":\"{}\"",
                        fmt_time(r.at),
                        m,
                        r.kind.name(),
                    );
                    r.kind.write_json_fields(&mut out);
                    out.push_str("}\n");
                }
            }
        }
        out
    }
}

/// Minimal JSON string escaping (labels are plain ASCII in practice).
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adu(seq: u64) -> AduKey {
        AduKey { source: 0, page_creator: 0, page_number: 0, seq }
    }

    fn ev(at_ns: u64, adu_seq: u64, kind: EventKind, seq: u64) -> RecordedEvent {
        RecordedEvent { at: SimTime::from_nanos(at_ns), adu: adu(adu_seq), kind, seq }
    }

    #[test]
    fn merge_order_is_time_member_seq() {
        let mut tl = Timeline::new();
        tl.add_member(2, vec![ev(10, 0, EventKind::GapDetected, 0)]);
        tl.add_member(
            1,
            vec![
                ev(10, 0, EventKind::GapDetected, 0),
                ev(5, 0, EventKind::RequestSent { round: 1 }, 1),
            ],
        );
        let evs = tl.events();
        assert_eq!(evs[0].at, SimTime::from_nanos(5));
        assert_eq!((evs[1].member, evs[2].member), (1, 2));
    }

    #[test]
    fn fault_lines_frame_events() {
        let mut tl = Timeline::new();
        tl.add_fault(FaultSpan {
            label: "burst".into(),
            start: SimTime::from_nanos(10),
            end: Some(SimTime::from_nanos(10)),
        });
        tl.add_member(1, vec![ev(10, 0, EventKind::GapDetected, 0)]);
        let jsonl = tl.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("fault_start"));
        assert!(lines[1].contains("gap_detected"));
        assert!(lines[2].contains("fault_end"));
    }

    #[test]
    fn filters_are_conjunctive() {
        let mut tl = Timeline::new();
        tl.add_member(1, vec![ev(10, 0, EventKind::GapDetected, 0)]);
        tl.add_member(2, vec![ev(20, 1, EventKind::GapDetected, 0)]);
        tl.add_fault(FaultSpan {
            label: "w".into(),
            start: SimTime::from_nanos(15),
            end: None,
        });
        assert_eq!(tl.filter(Some(1), None, None).len(), 1);
        assert_eq!(tl.filter(None, Some("s0:s0/p0:1"), None).len(), 1);
        assert_eq!(tl.filter(None, None, Some("w")).len(), 1);
        assert_eq!(tl.filter(Some(1), None, Some("w")).len(), 0);
        assert_eq!(tl.filter(None, None, Some("nope")).len(), 0);
    }

    #[test]
    fn chain_reconstruction_end_to_end() {
        let mut tl = Timeline::new();
        // Member 4 detects, requests; member 5 backs off; member 3 repairs;
        // both requesters recover.
        tl.add_member(
            4,
            vec![
                ev(100, 7, EventKind::GapDetected, 0),
                ev(200, 7, EventKind::RequestSent { round: 1 }, 1),
                ev(400, 7, EventKind::Recovered { via: crate::RecoveryVia::Repair }, 2),
            ],
        );
        tl.add_member(
            5,
            vec![
                ev(110, 7, EventKind::GapDetected, 0),
                ev(
                    210,
                    7,
                    EventKind::RequestBackoff {
                        until: SimTime::from_nanos(500),
                        backoff: 1,
                    },
                    1,
                ),
                ev(410, 7, EventKind::Recovered { via: crate::RecoveryVia::Repair }, 2),
            ],
        );
        tl.add_member(3, vec![ev(300, 7, EventKind::RepairSent, 0)]);
        let chains = tl.chains();
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert!(c.is_complete(), "chain: {c:?}");
        assert_eq!(c.detected_by, 4);
        assert_eq!(c.requester, 4);
        assert_eq!(c.suppressed, vec![5]);
        assert_eq!(c.repairer, Some(3));
        assert_eq!(c.recovered_members, 2);
        assert_eq!(c.recovered_at, Some(SimTime::from_nanos(410)));
        assert!(c.render().contains("[complete]"));
    }

    #[test]
    fn transport_lines_merge_after_same_instant_member_events() {
        use crate::transport::{TransportEventKind, TransportRecord};
        let mut tl = Timeline::new();
        tl.add_member(1, vec![ev(10, 0, EventKind::GapDetected, 0)]);
        tl.add_transport(
            1,
            vec![
                TransportRecord {
                    at: SimTime::from_nanos(10),
                    kind: TransportEventKind::ChaosDrop { flow: 0 },
                    seq: 0,
                },
                TransportRecord {
                    at: SimTime::from_nanos(5),
                    kind: TransportEventKind::PeerSuspect { peer: 2 },
                    seq: 1,
                },
            ],
        );
        let jsonl = tl.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ev\":\"peer_suspect\""), "{jsonl}");
        assert!(lines[1].contains("\"ev\":\"gap_detected\""));
        assert!(lines[2].contains("\"ev\":\"chaos_drop\""));
        assert!(lines[2].contains("\"flow\":0"));
        // Member filter applies to transport lines too.
        assert_eq!(tl.filter(Some(2), None, None).transport_events().len(), 0);
        assert_eq!(tl.filter(Some(1), None, None).transport_events().len(), 2);
    }

    #[test]
    fn incomplete_chain_without_suppression() {
        let mut tl = Timeline::new();
        tl.add_member(
            4,
            vec![
                ev(100, 7, EventKind::GapDetected, 0),
                ev(200, 7, EventKind::RequestSent { round: 1 }, 1),
            ],
        );
        let chains = tl.chains();
        assert_eq!(chains.len(), 1);
        assert!(!chains[0].is_complete());
    }
}

//! Typed transport-layer events: chaos actions, socket errors, reactor
//! supervision, and peer-liveness transitions.
//!
//! The recovery [`Recorder`](crate::Recorder) stream is ADU-keyed and pinned
//! by golden-trace files, so transport-level happenings (a frame eaten by the
//! chaos plan, a recv-thread respawn, a peer declared dead) get their own
//! event vocabulary and their own log.  A [`TransportLog`] follows the same
//! rules as the recovery recorder: disabled by default, a single branch when
//! off, and never touching protocol RNG or timers — enabling it cannot change
//! what the run does, only what is observed.
//!
//! [`Timeline`](crate::Timeline) merges transport records into the same
//! deterministic JSONL stream (transport lines sort just after same-instant
//! recovery events of the same member), and [`RunSummary`](crate::RunSummary)
//! renders a per-member transport table — but only when any transport events
//! exist, so simulator reports stay byte-identical.

use std::collections::VecDeque;
use std::fmt::Write as _;

use netsim::{SimDuration, SimTime};

use crate::event::fmt_time;

/// One transport-layer happening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEventKind {
    /// The chaos plan dropped an outgoing frame (Bernoulli or burst loss).
    ChaosDrop {
        /// Flow label of the dropped frame (data/request/repair/session...).
        flow: u32,
    },
    /// The chaos plan sent an extra copy of an outgoing frame.
    ChaosDuplicate {
        /// Flow label of the duplicated frame.
        flow: u32,
    },
    /// The chaos plan held an outgoing frame back in the delay queue.
    ChaosDelay {
        /// Flow label of the delayed frame.
        flow: u32,
        /// How long the frame was held before release.
        by: SimDuration,
    },
    /// The chaos plan flipped bits in an outgoing frame's header.
    ChaosCorrupt {
        /// Flow label of the corrupted frame.
        flow: u32,
    },
    /// A frame towards one destination was swallowed by an active
    /// blackhole/partition window.
    Blackholed {
        /// Flow label of the swallowed frame.
        flow: u32,
    },
    /// The recv loop hit a socket error.
    SocketError {
        /// `io::ErrorKind`-style label, e.g. `"connection reset"`.
        detail: String,
        /// Whether the supervisor classified it transient (retried) or fatal.
        transient: bool,
    },
    /// The supervisor respawned the recv thread after a panic or fatal error.
    RecvRespawn {
        /// 1-based respawn attempt number.
        attempt: u32,
    },
    /// The recv loop exited for good; `reason` explains why.
    RecvExit {
        /// Exit reason, e.g. `"shutdown"` or `"respawn budget exhausted"`.
        reason: String,
    },
    /// Multicast join failed and the node fell back to the unicast mesh.
    ModeFallback {
        /// Number of unicast peers in the fallback mesh.
        peers: u64,
    },
    /// An inbound datagram failed envelope/wire decoding.
    DecodeError {
        /// Decode failure class, e.g. `"truncated"` or `"length_mismatch"`.
        reason: String,
    },
    /// High-water marks of the reactor's queues, recorded once at reactor
    /// shutdown (live depths are registry gauges; this pins the peaks into
    /// the offline stream).
    QueueHighWater {
        /// Peak timer-wheel length over the reactor's lifetime.
        wheel: u64,
        /// Peak chaos DelayQueue length over the reactor's lifetime.
        delayq: u64,
    },
    /// A peer previously suspect/dead was heard from again.
    PeerAlive {
        /// The peer's member id.
        peer: u64,
    },
    /// A peer missed enough session intervals to be suspect.
    PeerSuspect {
        /// The peer's member id.
        peer: u64,
    },
    /// A peer missed enough session intervals to be declared dead.
    PeerDead {
        /// The peer's member id.
        peer: u64,
    },
    /// The durable ADU store was replayed after a restart: the member
    /// rejoined with its page catalog rebuilt from the write-ahead log.
    StoreRehydrate {
        /// ADU records recovered from the log.
        adus: u64,
        /// Log segments replayed.
        segments: u64,
        /// Bytes dropped from the log tail (torn or corrupt final record).
        truncated_bytes: u64,
    },
    /// A repair was served by reading the payload back from the durable
    /// store — the ADU had been evicted from (or never re-entered) RAM.
    StoreDiskRepair,
}

impl TransportEventKind {
    /// Stable snake_case name used in JSONL output and filters.
    pub fn name(&self) -> &'static str {
        match self {
            TransportEventKind::ChaosDrop { .. } => "chaos_drop",
            TransportEventKind::ChaosDuplicate { .. } => "chaos_duplicate",
            TransportEventKind::ChaosDelay { .. } => "chaos_delay",
            TransportEventKind::ChaosCorrupt { .. } => "chaos_corrupt",
            TransportEventKind::Blackholed { .. } => "blackholed",
            TransportEventKind::SocketError { .. } => "socket_error",
            TransportEventKind::RecvRespawn { .. } => "recv_respawn",
            TransportEventKind::RecvExit { .. } => "recv_exit",
            TransportEventKind::ModeFallback { .. } => "mode_fallback",
            TransportEventKind::DecodeError { .. } => "decode_error",
            TransportEventKind::QueueHighWater { .. } => "queue_high_water",
            TransportEventKind::PeerAlive { .. } => "peer_alive",
            TransportEventKind::PeerSuspect { .. } => "peer_suspect",
            TransportEventKind::PeerDead { .. } => "peer_dead",
            TransportEventKind::StoreRehydrate { .. } => "store_rehydrate",
            TransportEventKind::StoreDiskRepair => "store_disk_repair",
        }
    }

    /// Append this kind's detail fields as `,"k":v` JSON fragments.
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        match self {
            TransportEventKind::ChaosDrop { flow }
            | TransportEventKind::ChaosDuplicate { flow }
            | TransportEventKind::ChaosCorrupt { flow }
            | TransportEventKind::Blackholed { flow } => {
                let _ = write!(out, ",\"flow\":{flow}");
            }
            TransportEventKind::ChaosDelay { flow, by } => {
                let _ = write!(out, ",\"flow\":{},\"by\":{}", flow, fmt_time(SimTime::ZERO + *by));
            }
            TransportEventKind::SocketError { detail, transient } => {
                let _ = write!(
                    out,
                    ",\"detail\":\"{}\",\"transient\":{}",
                    crate::timeline::escape(detail),
                    transient
                );
            }
            TransportEventKind::RecvRespawn { attempt } => {
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            TransportEventKind::RecvExit { reason } => {
                let _ = write!(out, ",\"reason\":\"{}\"", crate::timeline::escape(reason));
            }
            TransportEventKind::ModeFallback { peers } => {
                let _ = write!(out, ",\"peers\":{peers}");
            }
            TransportEventKind::DecodeError { reason } => {
                let _ = write!(out, ",\"reason\":\"{}\"", crate::timeline::escape(reason));
            }
            TransportEventKind::QueueHighWater { wheel, delayq } => {
                let _ = write!(out, ",\"wheel\":{wheel},\"delayq\":{delayq}");
            }
            TransportEventKind::PeerAlive { peer }
            | TransportEventKind::PeerSuspect { peer }
            | TransportEventKind::PeerDead { peer } => {
                let _ = write!(out, ",\"peer\":{peer}");
            }
            TransportEventKind::StoreRehydrate { adus, segments, truncated_bytes } => {
                let _ = write!(
                    out,
                    ",\"adus\":{adus},\"segments\":{segments},\"truncated_bytes\":{truncated_bytes}"
                );
            }
            TransportEventKind::StoreDiskRepair => {}
        }
    }
}

/// A captured transport event: timestamp + kind + log-local sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportRecord {
    /// Time on the node's clock axis the event occurred.
    pub at: SimTime,
    /// What happened.
    pub kind: TransportEventKind,
    /// Log-local sequence number (monotone per log).
    pub seq: u64,
}

/// Captures the transport event stream of one node.
///
/// Mirrors [`Recorder`](crate::Recorder): disabled by default, one branch
/// when off, sequence numbering survives drains, and
/// [`TransportLog::enable_bounded`] keeps a ring of the most recent events
/// with a dropped count for long live runs.
#[derive(Debug, Clone, Default)]
pub struct TransportLog {
    enabled: bool,
    /// `None` = unbounded; `Some(cap)` = ring of the most recent `cap`.
    cap: Option<usize>,
    seq: u64,
    events: VecDeque<TransportRecord>,
    dropped: u64,
}

impl TransportLog {
    /// A fresh, disabled log.
    pub fn new() -> Self {
        TransportLog::default()
    }

    /// Turn capture on, unbounded.  Events before the call are simply not
    /// captured.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.cap = None;
    }

    /// Turn capture on with a ring of the most recent `cap` events; evicted
    /// events are counted in [`TransportLog::dropped_events`].  A `cap` of 0
    /// records nothing.
    pub fn enable_bounded(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = Some(cap);
    }

    /// Is this log capturing events?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Number of events evicted from the ring since enabling.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record one event.  No-op (single branch) when disabled.
    #[inline]
    pub fn record(&mut self, at: SimTime, kind: TransportEventKind) {
        if !self.enabled {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        if let Some(cap) = self.cap {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(TransportRecord { at, kind, seq });
    }

    /// Drain the captured events, keeping enabled-state and sequence counter
    /// (crash/restart cycles keep numbering monotone).
    pub fn take_events(&mut self) -> Vec<TransportRecord> {
        std::mem::take(&mut self.events).into()
    }

    /// Iterate the captured events without draining, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TransportRecord> {
        self.events.iter()
    }

    /// Merge another log's drained events into this one, restoring the global
    /// time order and re-stamping sequence numbers.  Used when a node keeps
    /// two capture points (e.g. the reactor and the agent) that must end up
    /// as one per-member stream.  In bounded mode the merged stream is
    /// trimmed back to capacity from the oldest end.
    pub fn absorb(&mut self, mut other: Vec<TransportRecord>) {
        if other.is_empty() {
            return;
        }
        let mut all: Vec<TransportRecord> = std::mem::take(&mut self.events).into();
        all.append(&mut other);
        // Stable by-time sort keeps same-instant events in their original
        // relative order within each source stream.
        all.sort_by_key(|e| e.at.as_nanos());
        if let Some(cap) = self.cap {
            if all.len() > cap {
                let excess = all.len() - cap;
                all.drain(..excess);
                self.dropped += excess as u64;
            }
        }
        for (i, e) in all.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        self.seq = all.len() as u64;
        self.events = all.into();
    }
}

/// Per-node transport counters, aggregated from a drained event stream —
/// one row of the RunSummary transport table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportSummary {
    /// Member id.
    pub member: u64,
    /// Frames dropped by the chaos plan (Bernoulli + burst loss).
    pub chaos_dropped: u64,
    /// Extra frame copies injected by the chaos plan.
    pub chaos_duplicated: u64,
    /// Frames held back in the delay queue.
    pub chaos_delayed: u64,
    /// Frames with chaos-flipped header bits.
    pub chaos_corrupted: u64,
    /// Per-destination frames swallowed by blackhole windows.
    pub blackholed: u64,
    /// Socket errors seen by the recv loop (transient + fatal).
    pub socket_errors: u64,
    /// Recv-thread respawns performed by the supervisor.
    pub respawns: u64,
    /// Inbound datagrams that failed envelope/wire decoding.
    pub decode_errors: u64,
    /// Peer transitions into the suspect state.
    pub peers_suspected: u64,
    /// Peer transitions into the dead state.
    pub peers_died: u64,
    /// Peak timer-wheel length over the reactor's lifetime.
    pub wheel_hw: u64,
    /// Peak chaos DelayQueue length over the reactor's lifetime.
    pub delayq_hw: u64,
    /// Repairs served by reading the durable store instead of RAM.
    pub disk_repairs: u64,
}

impl TransportSummary {
    /// A zeroed summary for `member`.
    pub fn new(member: u64) -> Self {
        TransportSummary { member, ..TransportSummary::default() }
    }

    /// Tally an event stream (borrowed or drained) into a summary row.
    pub fn from_events<'a, I>(member: u64, events: I) -> Self
    where
        I: IntoIterator<Item = &'a TransportRecord>,
    {
        let mut s = TransportSummary::new(member);
        for e in events {
            match &e.kind {
                TransportEventKind::ChaosDrop { .. } => s.chaos_dropped += 1,
                TransportEventKind::ChaosDuplicate { .. } => s.chaos_duplicated += 1,
                TransportEventKind::ChaosDelay { .. } => s.chaos_delayed += 1,
                TransportEventKind::ChaosCorrupt { .. } => s.chaos_corrupted += 1,
                TransportEventKind::Blackholed { .. } => s.blackholed += 1,
                TransportEventKind::SocketError { .. } => s.socket_errors += 1,
                TransportEventKind::RecvRespawn { .. } => s.respawns += 1,
                TransportEventKind::DecodeError { .. } => s.decode_errors += 1,
                TransportEventKind::PeerSuspect { .. } => s.peers_suspected += 1,
                TransportEventKind::PeerDead { .. } => s.peers_died += 1,
                TransportEventKind::QueueHighWater { wheel, delayq } => {
                    s.wheel_hw = s.wheel_hw.max(*wheel);
                    s.delayq_hw = s.delayq_hw.max(*delayq);
                }
                TransportEventKind::StoreDiskRepair => s.disk_repairs += 1,
                TransportEventKind::RecvExit { .. }
                | TransportEventKind::ModeFallback { .. }
                | TransportEventKind::PeerAlive { .. }
                | TransportEventKind::StoreRehydrate { .. } => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_captures_nothing() {
        let mut log = TransportLog::new();
        log.record(SimTime::ZERO, TransportEventKind::ChaosDrop { flow: 0 });
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_numbers_monotonically_across_drains() {
        let mut log = TransportLog::new();
        log.enable();
        log.record(SimTime::ZERO, TransportEventKind::ChaosDrop { flow: 0 });
        log.record(SimTime::ZERO, TransportEventKind::RecvRespawn { attempt: 1 });
        let evs = log.take_events();
        assert_eq!((evs[0].seq, evs[1].seq), (0, 1));
        log.record(SimTime::ZERO, TransportEventKind::PeerDead { peer: 3 });
        assert_eq!(log.events().next().unwrap().seq, 2);
    }

    #[test]
    fn bounded_log_keeps_most_recent_and_counts_drops() {
        let mut log = TransportLog::new();
        log.enable_bounded(2);
        for flow in 0..5 {
            log.record(SimTime::ZERO, TransportEventKind::ChaosDrop { flow });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped_events(), 3);
        let evs = log.take_events();
        assert_eq!((evs[0].seq, evs[1].seq), (3, 4));
    }

    #[test]
    fn bounded_absorb_trims_oldest() {
        let t = SimTime::from_nanos;
        let mut a = TransportLog::new();
        a.enable_bounded(2);
        a.record(t(10), TransportEventKind::ChaosDrop { flow: 0 });
        a.record(t(30), TransportEventKind::ChaosDrop { flow: 1 });
        a.absorb(vec![TransportRecord {
            at: t(20),
            kind: TransportEventKind::Blackholed { flow: 2 },
            seq: 0,
        }]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped_events(), 1, "the t=10 event was trimmed");
        let kinds: Vec<&'static str> = a.events().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, ["blackholed", "chaos_drop"]);
    }

    #[test]
    fn absorb_restores_time_order_and_reseqs() {
        let t = SimTime::from_nanos;
        let mut a = TransportLog::new();
        a.enable();
        a.record(t(10), TransportEventKind::ChaosDrop { flow: 0 });
        a.record(t(30), TransportEventKind::ChaosDrop { flow: 1 });
        let mut b = TransportLog::new();
        b.enable();
        b.record(t(20), TransportEventKind::DecodeError { reason: "truncated".into() });
        a.absorb(b.take_events());
        let evs: Vec<&TransportRecord> = a.events().collect();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[1].kind.name(), "decode_error");
        assert_eq!((evs[0].seq, evs[1].seq, evs[2].seq), (0, 1, 2));
    }

    #[test]
    fn summary_tallies_kinds() {
        let t = SimTime::from_nanos;
        let mut log = TransportLog::new();
        log.enable();
        log.record(t(1), TransportEventKind::ChaosDrop { flow: 0 });
        log.record(t(2), TransportEventKind::ChaosDrop { flow: 3 });
        log.record(t(3), TransportEventKind::Blackholed { flow: 2 });
        log.record(t(4), TransportEventKind::PeerSuspect { peer: 2 });
        log.record(t(5), TransportEventKind::PeerDead { peer: 2 });
        log.record(t(6), TransportEventKind::PeerAlive { peer: 2 });
        let s = TransportSummary::from_events(9, log.events());
        assert_eq!(s.member, 9);
        assert_eq!(s.chaos_dropped, 2);
        assert_eq!(s.blackholed, 1);
        assert_eq!(s.peers_suspected, 1);
        assert_eq!(s.peers_died, 1);
    }

    #[test]
    fn summary_takes_max_of_high_water_events() {
        let t = SimTime::from_nanos;
        let mut log = TransportLog::new();
        log.enable();
        log.record(t(1), TransportEventKind::QueueHighWater { wheel: 10, delayq: 2 });
        log.record(t(2), TransportEventKind::QueueHighWater { wheel: 7, delayq: 5 });
        let s = TransportSummary::from_events(1, log.events());
        assert_eq!(s.wheel_hw, 10);
        assert_eq!(s.delayq_hw, 5);
    }
}

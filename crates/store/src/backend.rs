//! Segment storage backends for the write-ahead log.
//!
//! The WAL logic ([`crate::DurableStore`]) is written against this small
//! trait so that the *same* append / sync / rehydrate code runs over real
//! files ([`DirBackend`], what `srm-node --store` uses) and over a
//! deterministic in-memory disk ([`MemBackend`], what the fault-injected
//! simulator and the test suite use). `MemBackend` models the one property
//! that matters for crash semantics: bytes appended but not yet synced are
//! readable by the live process (page cache) and *gone* after a crash.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Storage for numbered log segments.
pub trait Backend: fmt::Debug + Send {
    /// Ids of existing segments, ascending.
    fn list_segments(&mut self) -> io::Result<Vec<u64>>;
    /// Full contents of segment `id` as the live process sees it
    /// (including bytes not yet synced).
    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>>;
    /// Create an empty segment `id`.
    fn create_segment(&mut self, id: u64) -> io::Result<()>;
    /// Append `data` to segment `id`.
    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()>;
    /// Force segment `id` onto stable storage.
    fn sync(&mut self, id: u64) -> io::Result<()>;
    /// Truncate segment `id` to `len` bytes (torn-tail repair).
    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()>;
    /// Delete segment `id` (compaction).
    fn remove_segment(&mut self, id: u64) -> io::Result<()>;
    /// Model process death: discard volatile state (unsynced bytes,
    /// cached handles). Stable storage is untouched.
    fn drop_volatile(&mut self);
}

/// Real files in a directory: `wal-<id>.log`, one per segment.
///
/// "Crash" for this backend is an actual process kill — the OS drops the
/// page cache's un-fsynced dirty state only on power loss, but the fsync
/// policy still bounds what a `kill -9` plus machine failure could lose,
/// and [`Backend::drop_volatile`] just forgets the cached file handle.
pub struct DirBackend {
    dir: PathBuf,
    /// Cached append handle for the segment being written.
    active: Option<(u64, File)>,
}

impl fmt::Debug for DirBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirBackend").field("dir", &self.dir).finish()
    }
}

impl DirBackend {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirBackend { dir, active: None })
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("wal-{id:06}.log"))
    }

    fn active_file(&mut self, id: u64) -> io::Result<&mut File> {
        if self.active.as_ref().map(|(a, _)| *a) != Some(id) {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(id))?;
            self.active = Some((id, f));
        }
        Ok(&mut self.active.as_mut().expect("just set").1)
    }
}

impl Backend for DirBackend {
    fn list_segments(&mut self) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(self.path(id))?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn create_segment(&mut self, id: u64) -> io::Result<()> {
        let f = File::create(self.path(id))?;
        self.active = Some((id, f));
        Ok(())
    }

    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
        self.active_file(id)?.write_all(data)
    }

    fn sync(&mut self, id: u64) -> io::Result<()> {
        self.active_file(id)?.sync_data()
    }

    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()> {
        if self.active.as_ref().map(|(a, _)| *a) == Some(id) {
            self.active = None; // append handles track their own cursor
        }
        let f = OpenOptions::new().write(true).open(self.path(id))?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn remove_segment(&mut self, id: u64) -> io::Result<()> {
        if self.active.as_ref().map(|(a, _)| *a) == Some(id) {
            self.active = None;
        }
        fs::remove_file(self.path(id))
    }

    fn drop_volatile(&mut self) {
        self.active = None;
    }
}

/// One in-memory segment: the durable image plus the unsynced tail.
#[derive(Debug, Default, Clone)]
struct MemSegment {
    /// Bytes that have survived a sync (what a crash preserves).
    synced: Vec<u8>,
    /// Bytes appended since the last sync (lost on crash).
    unsynced: Vec<u8>,
}

/// Deterministic in-memory disk, shared through an `Arc` so it survives a
/// simulated crash/restart cycle the way a real disk survives a reboot.
///
/// Clones share the same underlying disk; tests keep one clone to inspect
/// or corrupt the "device" while the store owns another.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    disk: Arc<Mutex<BTreeMap<u64, MemSegment>>>,
}

impl MemBackend {
    /// A fresh, empty disk.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Total bytes that would survive a crash right now.
    pub fn synced_bytes(&self) -> u64 {
        let disk = self.disk.lock().expect("mem disk");
        disk.values().map(|s| s.synced.len() as u64).sum()
    }

    /// Fault injection: tear `drop_bytes` off the end of segment `id`'s
    /// durable image — models a write the device acknowledged but only
    /// partially performed (torn write).
    pub fn tear_tail(&self, id: u64, drop_bytes: usize) {
        let mut disk = self.disk.lock().expect("mem disk");
        if let Some(seg) = disk.get_mut(&id) {
            let keep = seg.synced.len().saturating_sub(drop_bytes);
            seg.synced.truncate(keep);
            seg.unsynced.clear();
        }
    }

    /// Fault injection: flip the bits in `mask` at `offset` of segment
    /// `id`'s durable image (models media corruption).
    pub fn corrupt_byte(&self, id: u64, offset: usize, mask: u8) {
        let mut disk = self.disk.lock().expect("mem disk");
        if let Some(seg) = disk.get_mut(&id) {
            if let Some(b) = seg.synced.get_mut(offset) {
                *b ^= mask;
            }
        }
    }

    /// Id of the highest segment present on the disk, if any.
    pub fn last_segment(&self) -> Option<u64> {
        let disk = self.disk.lock().expect("mem disk");
        disk.keys().next_back().copied()
    }
}

impl Backend for MemBackend {
    fn list_segments(&mut self) -> io::Result<Vec<u64>> {
        Ok(self.disk.lock().expect("mem disk").keys().copied().collect())
    }

    fn read_segment(&mut self, id: u64) -> io::Result<Vec<u8>> {
        let disk = self.disk.lock().expect("mem disk");
        let seg = disk
            .get(&id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))?;
        let mut out = seg.synced.clone();
        out.extend_from_slice(&seg.unsynced);
        Ok(out)
    }

    fn create_segment(&mut self, id: u64) -> io::Result<()> {
        self.disk.lock().expect("mem disk").entry(id).or_default();
        Ok(())
    }

    fn append(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
        let mut disk = self.disk.lock().expect("mem disk");
        disk.entry(id).or_default().unsynced.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, id: u64) -> io::Result<()> {
        let mut disk = self.disk.lock().expect("mem disk");
        if let Some(seg) = disk.get_mut(&id) {
            let tail = std::mem::take(&mut seg.unsynced);
            seg.synced.extend_from_slice(&tail);
        }
        Ok(())
    }

    fn truncate_segment(&mut self, id: u64, len: u64) -> io::Result<()> {
        let mut disk = self.disk.lock().expect("mem disk");
        if let Some(seg) = disk.get_mut(&id) {
            seg.unsynced.clear();
            seg.synced.truncate(len as usize);
        }
        Ok(())
    }

    fn remove_segment(&mut self, id: u64) -> io::Result<()> {
        self.disk.lock().expect("mem disk").remove(&id);
        Ok(())
    }

    fn drop_volatile(&mut self) {
        let mut disk = self.disk.lock().expect("mem disk");
        for seg in disk.values_mut() {
            seg.unsynced.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_crash_drops_unsynced_only() {
        let mut b = MemBackend::new();
        b.create_segment(1).unwrap();
        b.append(1, b"durable").unwrap();
        b.sync(1).unwrap();
        b.append(1, b" volatile").unwrap();
        assert_eq!(b.read_segment(1).unwrap(), b"durable volatile");
        b.drop_volatile();
        assert_eq!(b.read_segment(1).unwrap(), b"durable");
    }

    #[test]
    fn mem_backend_fault_hooks() {
        let mut b = MemBackend::new();
        b.create_segment(1).unwrap();
        b.append(1, b"abcdef").unwrap();
        b.sync(1).unwrap();
        b.tear_tail(1, 2);
        assert_eq!(b.read_segment(1).unwrap(), b"abcd");
        b.corrupt_byte(1, 0, 0xFF);
        assert_ne!(b.read_segment(1).unwrap()[0], b'a');
    }

    #[test]
    fn dir_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "srm-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut b = DirBackend::open(&dir).unwrap();
        b.create_segment(3).unwrap();
        b.append(3, b"hello").unwrap();
        b.sync(3).unwrap();
        b.drop_volatile(); // "restart"
        assert_eq!(b.list_segments().unwrap(), vec![3]);
        assert_eq!(b.read_segment(3).unwrap(), b"hello");
        b.truncate_segment(3, 2).unwrap();
        assert_eq!(b.read_segment(3).unwrap(), b"he");
        b.remove_segment(3).unwrap();
        assert!(b.list_segments().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! CRC-32 (IEEE 802.3 polynomial, reflected) for WAL record framing.
//!
//! Hand-rolled table-driven implementation: the workspace builds offline,
//! so no checksum crate is available. The reflected IEEE variant matches
//! zlib's `crc32()`, which keeps the on-disk format externally checkable.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (zlib-compatible).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" and a few anchors.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"hello wal");
        let b = crc32(b"hello wam");
        assert_ne!(a, b);
    }
}
